"""The SLO controller's closed loop: degrade, hold, recover — audited."""

import pytest

from repro.core.videopipe import VideoPipe
from repro.apps.fitness import (
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.slo import SLO, DetectorReading, SLOConfig
from repro.slo.spec import HEALTHY, OVERLOADED, STRAINED

SLO_T = SLO(p99_latency_s=0.25, min_fps=4.0, window_s=2.0)
#: Fast loop for tests: act every 0.5 s at most, restore after 1 s healthy.
CONFIG = SLOConfig(check_interval_s=0.25, hysteresis_s=0.5,
                   recovery_hold_s=1.0, use_optimizer=False,
                   max_extra_replicas=0)


def force_state(controller, state):
    """Pin the detector's classification, keeping everything else real."""
    def fake_reading(pipeline, slo, *, enrolled_at=0.0, paused=False):
        return DetectorReading(
            at=controller.kernel.now, state=state, latency_ratio=0.0,
            fps_ratio=1.0, queue_pressure=0.0, samples=10, paused=paused,
        )
    controller.detector.reading = fake_reading


@pytest.fixture
def home(fitness_recognizer):
    home = VideoPipe.paper_testbed(seed=7)
    install_fitness_services(home, recognizer=fitness_recognizer)
    return home


@pytest.fixture
def enrolled(home):
    home.enable_slo(config=CONFIG)
    pipeline = home.deploy_pipeline(fitness_pipeline_config(fps=10.0),
                                    slo=SLO_T)
    return home, home.slo, pipeline


class TestEnrollment:
    def test_watch_is_idempotent(self, enrolled):
        _, controller, pipeline = enrolled
        first = controller.enrollment("fitness")
        assert controller.watch(pipeline, SLO_T) is first
        assert len(controller.enrollments) == 1

    def test_no_slo_no_default_is_left_alone(self, home):
        home.enable_slo(config=CONFIG)
        pipeline = home.deploy_pipeline(fitness_pipeline_config(fps=10.0))
        assert home.slo.enrollment("fitness") is None
        assert pipeline is not None

    def test_default_slo_enrolls_unlabelled_deploys(self, home):
        home.enable_slo(config=CONFIG, default_slo=SLO_T)
        home.deploy_pipeline(fitness_pipeline_config(fps=10.0))
        enrollment = home.slo.enrollment("fitness")
        assert enrollment is not None
        assert enrollment.slo is SLO_T

    def test_pipelines_deployed_before_enable_are_enrolled(
            self, home):
        home.deploy_pipeline(fitness_pipeline_config(fps=10.0), slo=SLO_T)
        home.enable_slo(config=CONFIG)
        assert home.slo.enrollment("fitness") is not None


class TestDegradeAndRecover:
    def test_sustained_overload_walks_the_ladder_down(self, enrolled):
        home, controller, _ = enrolled
        force_state(controller, OVERLOADED)
        home.run_for(2.0)
        enrollment = controller.enrollment("fitness")
        assert enrollment.depth >= 2
        # without autoscaler/optimizer rungs, resolution goes first
        assert enrollment.applied_steps()[0] == "resolution"
        assert all(a.direction == "degrade" for a in enrollment.actions)

    def test_actions_respect_hysteresis(self, enrolled):
        home, controller, _ = enrolled
        force_state(controller, OVERLOADED)
        home.run_for(3.0)
        times = [a.at for a in controller.actions]
        assert len(times) >= 2
        spacing = [b - a for a, b in zip(times, times[1:])]
        assert min(spacing) >= CONFIG.hysteresis_s - 1e-9

    def test_strained_holds_without_acting(self, enrolled):
        home, controller, _ = enrolled
        force_state(controller, STRAINED)
        home.run_for(3.0)
        assert controller.actions == []
        assert controller.enrollment("fitness").state == STRAINED

    def test_recovery_retraces_in_reverse_order(self, enrolled):
        home, controller, _ = enrolled
        force_state(controller, OVERLOADED)
        home.run_for(2.0)
        enrollment = controller.enrollment("fitness")
        degraded = list(enrollment.applied_steps())
        assert len(degraded) >= 2
        force_state(controller, HEALTHY)
        home.run_for(6.0)
        assert enrollment.depth == 0
        restores = [a.step for a in enrollment.actions
                    if a.direction == "restore"]
        assert restores == degraded[::-1]

    def test_strain_resets_the_recovery_hold(self, enrolled):
        home, controller, _ = enrolled
        force_state(controller, OVERLOADED)
        home.run_for(1.0)
        assert controller.enrollment("fitness").depth >= 1
        # bouncing healthy <-> strained never accumulates recovery_hold_s
        # of continuous health, so nothing is restored
        before = len(controller.actions)
        for _ in range(3):
            force_state(controller, HEALTHY)
            home.run_for(0.5)
            force_state(controller, STRAINED)
            home.run_for(0.5)
        restores = [a for a in controller.actions[before:]
                    if a.direction == "restore"]
        assert restores == []

    def test_full_fidelity_after_recovery(self, enrolled):
        from repro.slo.ladder import find_source

        home, controller, pipeline = enrolled
        source = find_source(pipeline)
        original = (source.camera.width, source.camera.height, source.fps)
        force_state(controller, OVERLOADED)
        home.run_for(4.0)  # deep enough to hit resolution, tier, fps, pause
        enrollment = controller.enrollment("fitness")
        assert enrollment.depth >= 4
        assert enrollment.paused
        force_state(controller, HEALTHY)
        home.run_for(10.0)
        assert enrollment.depth == 0
        assert not source.paused
        assert (source.camera.width, source.camera.height,
                source.fps) == original

    def test_stopped_pipeline_is_skipped(self, enrolled):
        home, controller, pipeline = enrolled
        pipeline.stop()
        force_state(controller, OVERLOADED)
        home.run_for(2.0)
        assert controller.actions == []


class TestStatusAndMetrics:
    def test_status_shape(self, enrolled):
        home, controller, _ = enrolled
        home.run_for(1.0)
        status = home.slo_status()
        entry = status["pipelines"]["fitness"]
        assert entry["state"] in (HEALTHY, STRAINED, OVERLOADED)
        assert entry["slo"] == SLO_T.as_dict()
        assert entry["depth"] == 0
        assert 0.0 <= entry["attainment"] <= 1.0
        assert status["actions_total"] == 0
        assert status["admission"]["requested"] == 1

    def test_slo_status_requires_enable(self, home):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            home.slo_status()

    def test_action_counters(self, enrolled):
        home, controller, _ = enrolled
        force_state(controller, OVERLOADED)
        home.run_for(2.0)
        force_state(controller, HEALTHY)
        home.run_for(6.0)
        counters = controller.metrics.counters()
        assert counters["slo_degrades"] >= 2
        assert counters["slo_restores"] == counters["slo_degrades"]

    def test_monitor_probe_surfaces_the_controller(self, enrolled):
        home, controller, _ = enrolled
        monitor = home.enable_monitoring(period_s=0.5)
        force_state(controller, OVERLOADED)
        home.run_for(2.0)
        assert monitor.latest("slo", "enrolled") == 1
        assert monitor.latest("slo", "ladder_depth") >= 1
        assert monitor.latest("slo", "overloaded") == 1


class TestAuditedInvariants:
    def test_clean_run_has_no_violations(self, home):
        auditor = home.enable_audit()
        home.enable_slo(config=CONFIG)
        home.deploy_pipeline(fitness_pipeline_config(fps=10.0), slo=SLO_T)
        force_state(home.slo, OVERLOADED)
        home.run_for(2.0)
        force_state(home.slo, HEALTHY)
        home.run_for(6.0)
        auditor.check_now()
        assert auditor.violations == []

    def test_flapping_is_a_violation(self, enrolled):
        from repro.audit.auditor import InvariantAuditor
        from repro.slo.ladder import LadderAction

        home, controller, pipeline = enrolled
        # an explicitly constructed auditor (not enable_audit): this test
        # *wants* violations, which the REPRO_AUDIT teardown gate exempts
        # only for non-env auditors
        auditor = InvariantAuditor(home.kernel)
        auditor.watch_slo(controller)
        enrollment = controller.enrollment("fitness")
        step = enrollment.ladder[0]
        # two actions closer than hysteresis_s: the auditor flags pacing
        for at in (1.0, 1.1):
            detail = step.apply() or "noop"
            enrollment.applied.append((0, step))
            controller._record(enrollment, LadderAction(
                at=at, pipeline="fitness", step=step.name,
                direction="degrade", depth_before=enrollment.depth - 1,
                depth_after=enrollment.depth, detail=detail,
            ))
        assert any(v.invariant == "slo-ladder" for v in auditor.violations)
        # undo the hand-applied rungs so the home is left consistent (the
        # REPRO_AUDIT gate cross-checks applied rungs at teardown)
        while enrollment.applied:
            enrollment.applied.pop()
            step.revert()
