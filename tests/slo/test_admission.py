"""Admission control: cost-model gating, queueing, and conservation."""

import pytest

from repro.core.videopipe import VideoPipe
from repro.apps.fitness import (
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.apps.gesture import (
    gesture_pipeline_config,
    install_gesture_services,
)
from repro.errors import AdmissionError
from repro.slo import SLO, AdmissionController, SLOConfig, pipeline_fps
from repro.slo.spec import ADMITTED, QUEUED, REJECTED

SLO_T = SLO(p99_latency_s=0.25, min_fps=4.0)


def guest_config(index, fps=12.0):
    config = gesture_pipeline_config(
        name=f"guest{index}", fps=fps, base_port=6000 + 20 * index,
        source_device="tv",
    )
    for module in config.modules:
        module.name = f"g{index}_{module.name}"
        module.next_modules = [f"g{index}_{n}" for n in module.next_modules]
    config.source = f"g{index}_gesture_video_module"
    return config


@pytest.fixture
def home(fitness_recognizer, gesture_recognizer):
    home = VideoPipe.paper_testbed(seed=7)
    install_fitness_services(home, recognizer=fitness_recognizer)
    install_gesture_services(home, recognizer=gesture_recognizer)
    return home


class TestPipelineFps:
    def test_reads_the_source_fps(self):
        assert pipeline_fps(fitness_pipeline_config(fps=17.0)) == 17.0

    def test_default_when_unset(self):
        config = fitness_pipeline_config(fps=10.0)
        del config.module(config.source_module).params["fps"]
        assert pipeline_fps(config) == 10.0


class TestDecide:
    def test_admits_under_threshold(self, home):
        controller = AdmissionController(home, SLOConfig())
        config = fitness_pipeline_config(fps=10.0)
        decision = controller.decide(config, home.plan(config))
        assert decision.action == ADMITTED
        assert decision.worst_utilization < 1.0
        assert decision.predicted
        assert controller.decisions == [decision]

    def test_rejects_over_threshold(self, home):
        controller = AdmissionController(
            home, SLOConfig(admission_threshold=0.25))
        home.deploy_pipeline(fitness_pipeline_config(fps=10.0))
        home.deploy_pipeline(guest_config(0))
        config = guest_config(1, fps=15.0)
        decision = controller.decide(config, home.plan(config))
        assert decision.action == REJECTED
        assert decision.worst_utilization > decision.threshold
        assert "exceeds threshold" in decision.reason

    def test_on_reject_queued(self, home):
        controller = AdmissionController(
            home, SLOConfig(admission_threshold=0.25))
        home.deploy_pipeline(fitness_pipeline_config(fps=10.0))
        home.deploy_pipeline(guest_config(0))
        config = guest_config(1, fps=15.0)
        decision = controller.decide(config, home.plan(config),
                                     on_reject=QUEUED)
        assert decision.action == QUEUED

    def test_stopped_pipelines_free_capacity(self, home):
        controller = AdmissionController(
            home, SLOConfig(admission_threshold=0.25))
        home.deploy_pipeline(fitness_pipeline_config(fps=10.0))
        occupant = home.deploy_pipeline(guest_config(0))
        config = guest_config(1, fps=15.0)
        assert controller.decide(config, home.plan(config)).action == REJECTED
        occupant.stop()
        assert controller.decide(config, home.plan(config)).action == ADMITTED

    def test_fails_open_when_unpriceable(self, home, monkeypatch):
        controller = AdmissionController(
            home, SLOConfig(admission_threshold=0.25))

        def broken(config, assignments):
            raise RuntimeError("no cost model today")

        monkeypatch.setattr(controller, "_pipeline_load", broken)
        config = fitness_pipeline_config(fps=10.0)
        decision = controller.decide(config, home.plan(config))
        assert decision.action == ADMITTED
        assert "admitted unpriced" in decision.reason


class TestFacadeAdmission:
    def test_check_mode_raises_with_the_decision(self, home):
        home.enable_slo(config=SLOConfig(admission_threshold=0.25))
        home.deploy_pipeline(fitness_pipeline_config(fps=10.0), slo=SLO_T)
        home.deploy_pipeline(guest_config(0))
        with pytest.raises(AdmissionError) as excinfo:
            home.deploy_pipeline(guest_config(1, fps=15.0))
        decision = excinfo.value.decision
        assert decision.action == REJECTED
        assert decision.worst_utilization > 0.25
        status = home.slo_status()["admission"]
        assert status["requested"] == 3
        assert status["rejected"] == 1
        assert status["deployed"] == 2

    def test_bypass_mode_skips_the_gate(self, home):
        home.enable_slo(config=SLOConfig(admission_threshold=0.25))
        home.deploy_pipeline(fitness_pipeline_config(fps=10.0), slo=SLO_T)
        home.deploy_pipeline(guest_config(0))
        pipeline = home.deploy_pipeline(guest_config(1, fps=15.0),
                                        admission="bypass")
        assert pipeline is not None
        assert home.slo_status()["admission"]["rejected"] == 0

    def test_queue_mode_parks_and_drains(self, home):
        home.enable_slo(config=SLOConfig(admission_threshold=0.25))
        home.deploy_pipeline(fitness_pipeline_config(fps=10.0), slo=SLO_T)
        occupant = home.deploy_pipeline(guest_config(0))
        parked = home.deploy_pipeline(guest_config(1, fps=15.0),
                                      admission="queue")
        assert parked is None
        assert [q.name for q in home.slo.queued] == ["guest1"]
        # capacity has not returned: the head stays parked across ticks
        home.run_for(1.5)
        assert [q.name for q in home.slo.queued] == ["guest1"]
        # the occupant leaves; the next tick re-prices and deploys the head
        occupant.stop()
        home.run_for(1.0)
        assert home.slo.queued == []
        names = [p.config.name for p in home.pipelines if not p.stopped]
        assert "guest1" in names
        status = home.slo_status()["admission"]
        assert status["requested"] == 3
        assert status["deployed"] == 3

    def test_withdraw_a_parked_deploy(self, home):
        home.enable_slo(config=SLOConfig(admission_threshold=0.25))
        home.deploy_pipeline(fitness_pipeline_config(fps=10.0), slo=SLO_T)
        home.deploy_pipeline(guest_config(0))
        home.deploy_pipeline(guest_config(1, fps=15.0), admission="queue")
        assert home.slo.withdraw("guest1")
        assert not home.slo.withdraw("guest1")
        status = home.slo_status()["admission"]
        assert status["withdrawn"] == 1
        assert status["queued_now"] == []

    def test_conservation_invariant(self, home):
        home.enable_slo(config=SLOConfig(admission_threshold=0.25))
        home.deploy_pipeline(fitness_pipeline_config(fps=10.0), slo=SLO_T)
        home.deploy_pipeline(guest_config(0))
        with pytest.raises(AdmissionError):
            home.deploy_pipeline(guest_config(1, fps=15.0))
        home.deploy_pipeline(guest_config(2, fps=15.0), admission="queue")
        home.run_for(1.0)
        status = home.slo_status()["admission"]
        assert status["requested"] == (
            status["deployed"] + status["rejected"] + status["withdrawn"]
            + len(status["queued_now"])
        )

    def test_invalid_admission_mode(self, home):
        from repro.errors import ConfigError

        home.enable_slo()
        with pytest.raises(ConfigError):
            home.deploy_pipeline(fitness_pipeline_config(fps=10.0),
                                 admission="maybe")

    def test_no_controller_means_no_gate(self, home):
        pipeline = home.deploy_pipeline(fitness_pipeline_config(fps=10.0))
        assert pipeline is not None
