"""Unit tests for SLO declarations, quantiles, and attainment scoring."""

import pytest

from repro.errors import ConfigError
from repro.slo import SLO, AdmissionDecision, SLOConfig, attainment, quantile
from repro.slo.spec import ADMITTED, REJECTED


class TestSLO:
    def test_defaults_and_as_dict(self):
        slo = SLO()
        assert slo.p99_latency_s == 0.25
        assert slo.min_fps == 1.0
        assert slo.as_dict() == {
            "p99_latency_s": 0.25, "min_fps": 1.0, "window_s": 2.0,
        }

    @pytest.mark.parametrize("kwargs", [
        {"p99_latency_s": 0.0},
        {"p99_latency_s": -1.0},
        {"min_fps": 0.0},
        {"window_s": -0.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            SLO(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SLO().min_fps = 5.0


class TestSLOConfig:
    @pytest.mark.parametrize("kwargs", [
        {"check_interval_s": 0.0},
        {"hysteresis_s": -0.1},
        {"recovery_hold_s": -1.0},
        {"overload_ratio": 0.9},
        {"fps_overload_frac": 0.0},
        {"fps_overload_frac": 1.5},
        {"queue_strain": -1.0},
        {"queue_strain": 3.0, "queue_overload": 2.0},
        {"min_samples": 0},
        {"max_extra_replicas": -1},
        {"resolution_steps": -1},
        {"resolution_factor": 1.0},
        {"fps_factor": 0.0},
        {"tier_factor": 1.5},
        {"admission_threshold": 0.0},
        {"history": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            SLOConfig(**kwargs)

    def test_defaults_are_self_consistent(self):
        config = SLOConfig()
        assert config.queue_strain <= config.queue_overload
        assert config.overload_ratio >= 1.0


class TestQuantile:
    def test_empty_is_zero(self):
        assert quantile([], 0.99) == 0.0

    def test_single_value(self):
        assert quantile([0.3], 0.5) == 0.3
        assert quantile([0.3], 0.99) == 0.3

    def test_nearest_rank_ceiling(self):
        values = [0.1, 0.2, 0.3, 0.4]
        assert quantile(values, 0.5) == 0.2   # ceil(0.5*4) = rank 2
        assert quantile(values, 0.75) == 0.3
        assert quantile(values, 0.99) == 0.4
        assert quantile(values, 0.0) == 0.1   # rank floored at 1

    def test_unsorted_input(self):
        assert quantile([0.4, 0.1, 0.3, 0.2], 0.99) == 0.4

    def test_q_out_of_range(self):
        with pytest.raises(ConfigError):
            quantile([0.1], 1.5)


class TestAttainment:
    SLO_T = SLO(p99_latency_s=0.2, min_fps=2.0, window_s=2.0)

    @staticmethod
    def bucket_events(bucket_start, count, latency):
        step = 1.0 / (count + 1)
        return [(bucket_start + step * (i + 1), latency)
                for i in range(count)]

    def test_empty_range_is_perfect(self):
        assert attainment(self.SLO_T, [], start=5.0, end=5.0) == 1.0
        assert attainment(self.SLO_T, [], start=5.0, end=5.5) == 1.0

    def test_empty_bucket_fails(self):
        # one whole bucket with no completions: a stalled pipeline is not
        # meeting anything
        assert attainment(self.SLO_T, [], start=0.0, end=1.0) == 0.0

    def test_both_targets_must_hold(self):
        good = self.bucket_events(0.0, 4, 0.1)
        slow = self.bucket_events(1.0, 4, 0.5)       # fps fine, tail blown
        starved = self.bucket_events(2.0, 1, 0.1)    # fast but under min_fps
        events = good + slow + starved
        assert attainment(self.SLO_T, events, start=0.0, end=3.0) == (
            pytest.approx(1 / 3)
        )

    def test_only_whole_buckets_count(self):
        events = self.bucket_events(0.0, 4, 0.1)
        # [0, 1.7) holds one whole bucket; the partial 0.7 s tail is ignored
        assert attainment(self.SLO_T, events, start=0.0, end=1.7) == 1.0

    def test_events_outside_range_are_ignored(self):
        events = self.bucket_events(10.0, 50, 0.01)
        assert attainment(self.SLO_T, events, start=0.0, end=1.0) == 0.0

    def test_bucket_s_validation(self):
        with pytest.raises(ConfigError):
            attainment(self.SLO_T, [], start=0.0, end=1.0, bucket_s=0.0)

    def test_boundary_latency_complies(self):
        events = self.bucket_events(0.0, 4, 0.2)  # exactly at target
        assert attainment(self.SLO_T, events, start=0.0, end=1.0) == 1.0


class TestAdmissionDecision:
    def test_admitted_property_and_as_dict(self):
        decision = AdmissionDecision(
            at=1.0, pipeline="p", action=ADMITTED, reason="fits",
            worst_device="desktop", worst_utilization=0.4, threshold=0.8,
            predicted={"desktop": 0.4},
        )
        assert decision.admitted
        payload = decision.as_dict()
        assert payload["action"] == ADMITTED
        assert payload["predicted"] == {"desktop": 0.4}

    def test_rejected_is_not_admitted(self):
        decision = AdmissionDecision(
            at=1.0, pipeline="p", action=REJECTED, reason="over",
            worst_device="desktop", worst_utilization=0.9, threshold=0.8,
        )
        assert not decision.admitted
