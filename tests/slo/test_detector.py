"""Unit tests for overload classification and the live detector."""

import pytest

from repro.core.videopipe import VideoPipe
from repro.apps.fitness import (
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.slo import SLO, SLOConfig, classify_signals
from repro.slo.detector import OverloadDetector
from repro.slo.spec import HEALTHY, OVERLOADED, STRAINED

SLO_T = SLO(p99_latency_s=0.2, min_fps=5.0, window_s=2.0)
CONFIG = SLOConfig()  # overload_ratio 1.25, fps_overload_frac 0.75,
#                       queue_strain 1.0, queue_overload 6.0, min_samples 3


def classify(**kwargs):
    defaults = dict(
        at=1.0, latency_ratio=0.5, fps_ratio=1.5, queue_pressure=0.0,
        samples=10, ever_completed=True, paused=False,
    )
    defaults.update(kwargs)
    return classify_signals(SLO_T, CONFIG, **defaults)


class TestClassifySignals:
    def test_all_targets_met_is_healthy(self):
        assert classify().state == HEALTHY

    def test_latency_overload(self):
        assert classify(latency_ratio=1.30).state == OVERLOADED

    def test_latency_strain_band_holds(self):
        # [1, overload_ratio) is the hold band
        assert classify(latency_ratio=1.10).state == STRAINED
        assert classify(latency_ratio=1.25).state == OVERLOADED

    def test_fps_overload_and_strain(self):
        assert classify(fps_ratio=0.5).state == OVERLOADED
        assert classify(fps_ratio=0.9).state == STRAINED

    def test_queue_pressure_alone(self):
        assert classify(queue_pressure=0.5).state == HEALTHY
        assert classify(queue_pressure=2.0).state == STRAINED
        assert classify(queue_pressure=7.0).state == OVERLOADED

    def test_cold_start_ratios_untrusted(self):
        # too few samples: the latency/fps ratios are noise, not signal
        reading = classify(latency_ratio=5.0, fps_ratio=0.1, samples=2,
                           ever_completed=False)
        assert reading.state == HEALTHY

    def test_stalled_pipeline_is_overloaded(self):
        # completed frames before, none in the whole window: fps 0 is real
        reading = classify(fps_ratio=0.0, samples=0, ever_completed=True)
        assert reading.state == OVERLOADED

    def test_never_completed_is_not_stalled(self):
        reading = classify(fps_ratio=0.0, samples=0, ever_completed=False)
        assert reading.state == HEALTHY

    def test_paused_judged_on_queue_only(self):
        # a paused pipeline emits nothing; fps/latency ratios are moot
        calm = classify(paused=True, fps_ratio=0.0, latency_ratio=0.0,
                        samples=0, queue_pressure=0.0)
        assert calm.state == HEALTHY
        assert calm.paused
        busy = classify(paused=True, fps_ratio=0.0, samples=0,
                        queue_pressure=8.0)
        assert busy.state == OVERLOADED
        held = classify(paused=True, fps_ratio=0.0, samples=0,
                        queue_pressure=2.0)
        assert held.state == STRAINED


class TestOverloadDetector:
    @pytest.fixture
    def home_and_pipeline(self, fitness_recognizer):
        home = VideoPipe.paper_testbed(seed=7)
        install_fitness_services(home, recognizer=fitness_recognizer)
        pipeline = home.deploy_pipeline(fitness_pipeline_config(fps=10.0))
        return home, pipeline

    def test_healthy_pipeline_reads_healthy(self, home_and_pipeline):
        home, pipeline = home_and_pipeline
        detector = OverloadDetector(home)
        home.run_for(4.0)
        reading = detector.reading(pipeline, SLO(p99_latency_s=1.0,
                                                 min_fps=5.0))
        assert reading.state == HEALTHY
        assert reading.samples > 0
        assert reading.at == home.now

    def test_enrollment_scales_the_window(self, home_and_pipeline):
        # a pipeline enrolled a moment ago must not be judged over the full
        # window (it could not have completed window_s * fps frames yet)
        home, pipeline = home_and_pipeline
        detector = OverloadDetector(home)
        home.run_for(0.5)
        reading = detector.reading(
            pipeline, SLO(p99_latency_s=1.0, min_fps=5.0, window_s=2.0),
            enrolled_at=home.now - 0.4,
        )
        assert reading.state == HEALTHY

    def test_queue_pressure_sums_called_services(self, home_and_pipeline):
        home, pipeline = home_and_pipeline
        detector = OverloadDetector(home)
        assert detector.queue_pressure(pipeline) == 0.0

    def test_tight_slo_reads_overloaded(self, home_and_pipeline):
        home, pipeline = home_and_pipeline
        detector = OverloadDetector(home)
        home.run_for(4.0)
        # an SLO no placement can meet: sub-millisecond tail
        reading = detector.reading(pipeline, SLO(p99_latency_s=0.0005,
                                                 min_fps=5.0))
        assert reading.state == OVERLOADED
        assert reading.latency_ratio > CONFIG.overload_ratio
