"""Chaos: the SLO controller under device crashes — degrade, don't flap.

The acceptance scenario for the guardian's robustness: the device hosting
the heavy compute dies mid-run. The failure stack (detection +
self-healing) evacuates the stranded modules while the SLO controller
sheds load down the ladder; the two loops must compose without ladder
flapping, the auditor's pacing/monotonicity invariants must hold
throughout, and the whole story must be deterministic under the seed.
"""

import pytest

from repro.core.videopipe import VideoPipe
from repro.apps.fitness import (
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.pipeline.placement import COLOCATED
from repro.faults import FaultPlan
from repro.services import ActivityClassifierService, PoseDetectorService
from repro.slo import SLO, SLOConfig

# min_fps close to the 10 fps offered rate: the crash-time delivery dip
# (failover + evacuation in flight) must read as overload, not a blip
SLO_T = SLO(p99_latency_s=0.25, min_fps=8.0, window_s=2.0)
CONFIG = SLOConfig(check_interval_s=0.25, hysteresis_s=0.75,
                   recovery_hold_s=1.0, use_optimizer=False)
CRASH_AT, DOWN_FOR, END = 4.0, 6.0, 24.0


def build_crash_scenario(recognizer, seed, audit=False):
    """The hardened fitness home with the desktop crash scheduled."""
    home = VideoPipe.paper_testbed(seed=seed)
    home.add_device("laptop")
    install_fitness_services(home, recognizer=recognizer)
    home.deploy_service(PoseDetectorService(), "laptop")
    home.deploy_service(ActivityClassifierService(recognizer), "laptop")
    if audit:
        home.enable_audit()
    home.enable_autoscaling()
    home.enable_slo(config=CONFIG)
    config = fitness_pipeline_config(fps=10.0)
    config.module("pose_detector_module").device = "desktop"
    config.module("activity_detector_module").device = "desktop"
    config.module("video_streaming_module").params["credit_timeout_s"] = 1.0
    pipeline = home.deploy_pipeline(config, strategy=COLOCATED,
                                    default_device="phone", slo=SLO_T)
    home.enable_failure_detection(home_device="tv", period_s=0.25,
                                  miss_threshold=2)
    home.enable_self_healing(pipeline, cooldown_s=0.5)
    home.enable_fault_injection(
        FaultPlan().device_crash(CRASH_AT, "desktop", down_for=DOWN_FOR))
    return home, pipeline


@pytest.mark.chaos
class TestCrashUnderSLO:
    def test_degrades_without_flapping_and_recovers(self, fitness_recognizer):
        home, pipeline = build_crash_scenario(fitness_recognizer, seed=11,
                                              audit=True)
        home.run(until=END)
        controller = home.slo
        enrollment = controller.enrollment("fitness")

        # the crash drove the pipeline off its SLO; the ladder acted
        degrades = [a for a in controller.actions if a.direction == "degrade"]
        assert degrades, "controller never degraded through the crash"
        assert all(CRASH_AT <= a.at for a in degrades)

        # no flapping: every pair of consecutive actions on the pipeline is
        # spaced at least hysteresis_s apart, whichever direction
        times = [a.at for a in enrollment.actions]
        spacing = [b - a for a, b in zip(times, times[1:])]
        assert all(s >= CONFIG.hysteresis_s - 1e-9 for s in spacing)

        # every action moved depth by exactly one rung (monotone ladder)
        for action in enrollment.actions:
            assert abs(action.depth_after - action.depth_before) == 1

        # after the device returns and load clears, the ladder is unwound
        assert enrollment.depth == 0
        assert pipeline.metrics.counter("frames_completed") > 50

        # the auditor watched every action live: no invariant broke
        home.auditor.check_now()
        assert home.auditor.violations == []

    def test_crash_scenario_is_deterministic(self, fitness_recognizer,
                                             assert_deterministic):
        def scenario(seed):
            home, pipeline = build_crash_scenario(fitness_recognizer, seed)

            def run_fn():
                home.run(until=END)
                controller = home.slo
                return (
                    pipeline.metrics.counter("frames_completed"),
                    [(a.at, a.step, a.direction)
                     for a in controller.actions],
                )

            return home, run_fn

        assert_deterministic(scenario, seed=11, name="slo-crash")
