"""Every example script must run clean — they are part of the deliverable.

Each example is executed in a subprocess (its own interpreter, like a user
would run it) with a timeout, and its output is spot-checked.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXPECTED = {
    "quickstart.py": ["end-to-end frame rate", "TV displayed"],
    "fitness_app.py": ["Table 2", "Fig. 6", "pose_detection"],
    "gesture_control.py": ["IoT command log", "living_room_light"],
    "fall_detection.py": ["falls detected = 1", "falls detected = 0"],
    "custom_pipeline.py": ["placement", "realtime run delivered"],
    "monitoring_autoscaling.py": ["autoscaler decisions", "replicas"],
    "object_tracking.py": ["identities discovered", "live tracks"],
    "chaos_fitness.py": ["device_crash -> desktop", "MTTR", "post-recovery"],
    "canary_upgrade.py": ["auto-promoted", "zero frames lost",
                          "lineage recorded"],
    "multi_camera_scene.py": ["scene graph", "fused world tracks",
                              "fusion accuracy vs ground truth"],
}


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED), (
        "examples on disk and the expectations table diverged"
    )


@pytest.mark.parametrize("script", sorted(EXPECTED))
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in EXPECTED[script]:
        assert needle in result.stdout, (script, needle)
