"""Integration: every example scenario is deterministic under a seed.

Each ``examples/`` script has a shortened twin in
``repro.audit.scenarios``; this suite runs each twin twice per seed and
diffs the complete kernel event streams plus the scenario fingerprints.
A single out-of-order event anywhere in the home — an ``id()``-keyed
dict, set iteration, an unseeded RNG — fails here with the exact record
where the two runs parted ways.
"""

from pathlib import Path

import pytest

from repro.audit.scenarios import EXAMPLE_SCENARIOS

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def test_every_example_has_a_scenario():
    examples = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    missing = examples - set(EXAMPLE_SCENARIOS)
    assert not missing, (
        f"examples without a determinism scenario: {sorted(missing)} — add"
        " one to repro.audit.scenarios.EXAMPLE_SCENARIOS"
    )


@pytest.mark.parametrize("name", sorted(EXAMPLE_SCENARIOS))
def test_example_scenario_is_deterministic(name, assert_deterministic):
    report = assert_deterministic(EXAMPLE_SCENARIOS[name], seed=7, name=name)
    assert report.event_count > 500  # the scenario actually exercised the home


def test_different_seeds_produce_different_streams(assert_deterministic):
    """The tap must be sensitive enough to notice a real difference — two
    seeds should not fingerprint identically (jitter, noise, and motion
    all draw from the seeded RNG)."""
    from repro.audit.determinism import record_scenario

    scenario = EXAMPLE_SCENARIOS["quickstart.py"]
    run_a = record_scenario(scenario, 7)
    run_b = record_scenario(scenario, 8)
    assert run_a.fingerprint != run_b.fingerprint
