"""Integration: per-frame distributed tracing on the fitness pipeline.

The three promises ``docs/TRACING.md`` makes, checked end to end:

1. **No observer effect** — a traced run is bit-for-bit identical to an
   untraced one (tracing reads the simulation; it never schedules events
   or inflates messages).
2. **Faithful decomposition** — every completed frame decomposes exactly:
   the critical-path categories partition the end-to-end latency, and the
   trace-derived stage means agree with ``MetricsCollector`` (the issue's
   acceptance bar is 1%; they are equal to float precision).
3. **Loadable artifact** — the Chrome-trace export is valid JSON with the
   event phases Perfetto expects.
"""

import json

import pytest

from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.core import VideoPipe
from repro.pipeline.config import TraceConfig
from repro.trace import (
    CAT_COMPUTE,
    CAT_QUEUE,
    CAT_SERIALIZE,
    CAT_WIRE,
    critical_path,
    write_chrome_trace,
)

DURATION = 8.0
RUN_UNTIL = 9.0


def run(recognizer, trace=False, architecture="videopipe", seed=11,
        monitor=False):
    home = VideoPipe.paper_testbed(seed=seed)
    tracer = home.enable_tracing() if trace else None
    if monitor:
        home.enable_monitoring(period_s=0.5)
    baseline = architecture == "baseline"
    services = install_fitness_services(home, recognizer=recognizer,
                                        baseline_layout=baseline)
    app = FitnessApp(home, services, architecture=architecture)
    pipeline = app.deploy(fitness_pipeline_config(fps=10.0,
                                                  duration_s=DURATION))
    home.run(until=RUN_UNTIL)
    return home, pipeline, tracer


def fingerprint(pipeline):
    metrics = pipeline.metrics
    return (
        metrics.counter("frames_completed"),
        metrics.counter("frames_entered"),
        tuple(round(v, 12) for v in metrics.total_latencies),
    )


class TestNoObserverEffect:
    @pytest.mark.parametrize("architecture", ["videopipe", "baseline"])
    def test_traced_run_is_bit_for_bit_identical(self, fitness_recognizer,
                                                 architecture):
        _, plain, _ = run(fitness_recognizer, trace=False,
                          architecture=architecture)
        _, traced, tracer = run(fitness_recognizer, trace=True,
                                architecture=architecture)
        assert fingerprint(traced) == fingerprint(plain)
        assert tracer.span_count > 0

    def test_two_traced_runs_are_deterministic(self, fitness_recognizer):
        _, p1, t1 = run(fitness_recognizer, trace=True)
        _, p2, t2 = run(fitness_recognizer, trace=True)
        assert fingerprint(p1) == fingerprint(p2)
        assert t1.span_count == t2.span_count
        assert [(s.name, s.start, s.end) for s in t1.spans] == \
            [(s.name, s.start, s.end) for s in t2.spans]


class TestDecomposition:
    def test_every_completed_frame_decomposes_exactly(self,
                                                      fitness_recognizer):
        _, pipeline, tracer = run(fitness_recognizer, trace=True)
        completed = pipeline.metrics.counter("frames_completed")
        report = critical_path(tracer, pipeline=pipeline.name)
        assert completed > 30
        assert report.frame_count == completed
        assert tracer.open_frame_count == 0
        for frame in report.frames:
            assert sum(frame.by_category.values()) == \
                pytest.approx(frame.total_s, rel=1e-9)

    def test_stage_means_match_collector_within_one_percent(
            self, fitness_recognizer):
        _, pipeline, tracer = run(fitness_recognizer, trace=True)
        report = critical_path(tracer, pipeline=pipeline.name)
        collector_means = pipeline.metrics.stage_means_ms()
        trace_means = report.stage_means_ms()
        assert set(trace_means) == set(collector_means)
        for stage, expected in collector_means.items():
            assert trace_means[stage] == pytest.approx(expected, rel=0.01), \
                stage
        # the root spans agree with the collector's end-to-end latency too
        latencies = pipeline.metrics.total_latencies
        expected_total = sum(latencies) / len(latencies) * 1e3
        assert report.mean_total_ms() == pytest.approx(expected_total,
                                                       rel=1e-9)

    def test_colocated_path_is_queue_and_compute(self, fitness_recognizer):
        _, pipeline, tracer = run(fitness_recognizer, trace=True,
                                  architecture="videopipe")
        means = critical_path(tracer, pipeline=pipeline.name) \
            .category_means_ms()
        assert means.get(CAT_COMPUTE, 0.0) > 0.0
        assert means.get(CAT_QUEUE, 0.0) > 0.0

    def test_baseline_path_crosses_the_wire(self, fitness_recognizer):
        """Fig. 5's architecture pays serialize + wire on every service
        call; the decomposition must surface those categories."""
        _, pipeline, tracer = run(fitness_recognizer, trace=True,
                                  architecture="baseline")
        means = critical_path(tracer, pipeline=pipeline.name) \
            .category_means_ms()
        assert means.get(CAT_WIRE, 0.0) > 0.0
        assert means.get(CAT_SERIALIZE, 0.0) > 0.0


class TestArtifact:
    def test_export_loads_as_chrome_trace_json(self, fitness_recognizer,
                                               tmp_path):
        _, _, tracer = run(fitness_recognizer, trace=True)
        path = write_chrome_trace(tracer, str(tmp_path / "trace.json"))
        doc = json.loads(open(path, encoding="utf-8").read())
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        assert {e["ph"] for e in events} <= {"M", "X", "i"}
        frames = [e for e in events if e["name"] == "frame"]
        assert frames and all(e["ph"] == "X" for e in frames)
        # every event sits in a named lane
        pids = {e["pid"] for e in events if e["name"] == "process_name"}
        assert {e["pid"] for e in events} <= pids


class TestWiring:
    def test_monitor_reports_span_accounting(self, fitness_recognizer):
        home, pipeline, tracer = run(fitness_recognizer, trace=True,
                                     monitor=True)
        monitor = home.monitor
        assert monitor.latest("tracing", "spans") == float(tracer.span_count)
        assert monitor.latest("tracing", "open_frames") == 0.0
        assert monitor.latest("tracing", "frames_finished") == \
            float(pipeline.metrics.counter("frames_completed"))

    def test_enable_tracing_is_idempotent(self, fitness_recognizer):
        home = VideoPipe.paper_testbed(seed=11)
        first = home.enable_tracing()
        second = home.enable_tracing(TraceConfig(max_spans=5))
        assert second is first
        assert first.max_spans != 5  # the second call is a no-op

    def test_max_spans_caps_the_recorder(self, fitness_recognizer):
        home = VideoPipe.paper_testbed(seed=11)
        tracer = home.enable_tracing(TraceConfig(max_spans=50))
        services = install_fitness_services(home,
                                            recognizer=fitness_recognizer)
        app = FitnessApp(home, services)
        app.deploy(fitness_pipeline_config(fps=10.0, duration_s=DURATION))
        home.run(until=RUN_UNTIL)
        assert tracer.span_count == 50
        assert tracer.dropped_spans > 0
