"""Integration: pipelines across unusual device mixes and the rendered
(pixel-carrying) path end to end."""

import pytest

from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.core import VideoPipe
from repro.pipeline import ModuleConfig, PipelineConfig
from repro.services import FunctionService


class TestConstrainedDevices:
    def test_pipeline_spans_watch_fridge_and_laptop(self):
        """The §1 pitch: 'devices without containers can still contribute
        to the pipeline'. Source on a watch, sink on a fridge, compute on
        the only container-capable device."""
        home = VideoPipe(seed=9)
        home.add_device("watch")
        home.add_device("fridge")
        home.add_device("laptop")
        home.deploy_service(
            FunctionService("analyze", lambda p, c: {"n": p["n"] * 2},
                            reference_cost_s=0.020, default_port=7850),
            "laptop",
        )

        from repro.runtime import FunctionModule, Module

        results = []

        class Source(Module):
            def init(self, ctx):
                def feed():
                    for n in range(20):
                        ctx.call_next({"n": n})
                        yield 0.1

                ctx._runtime.kernel.process(feed())

            def event_received(self, ctx, event):
                pass

        class Analyze(Module):
            def event_received(self, ctx, event):
                def flow():
                    out = yield ctx.call_service("analyze", event.payload)
                    ctx.call_next(out)

                return flow()

        config = PipelineConfig(
            name="appliances",
            modules=[
                ModuleConfig(name="src", include="./x.js", device="watch",
                             next_modules=["mid"], endpoint="bind#tcp://*:0"),
                ModuleConfig(name="mid", include="./x.js",
                             services=["analyze"], next_modules=["out"],
                             endpoint="bind#tcp://*:0"),
                ModuleConfig(name="out", include="./x.js", device="fridge",
                             endpoint="bind#tcp://*:0"),
            ],
        )
        pipeline = home.deploy_pipeline(
            config,
            default_device="watch",
            module_instances={
                "src": Source(),
                "mid": Analyze(),
                "out": FunctionModule(lambda c, e: results.append(e.payload)),
            },
        )
        assert pipeline.device_of("mid") == "laptop"  # followed the service
        home.run(until=5.0)
        assert [r["n"] for r in results] == [2 * n for n in range(20)]

    def test_slow_devices_actually_cost_more(self):
        """The same module work takes longer on a watch than a desktop."""
        times = {}
        for kind in ("watch", "desktop"):
            home = VideoPipe(seed=10)
            home.add_device(kind)
            done = home.device(kind).cpu.execute(0.010)
            home.kernel.run_until_resolved(done)
            times[kind] = home.now
        assert times["watch"] > times["desktop"] * 4


class TestRenderedPixelPath:
    def test_fitness_pipeline_with_real_pixels(self, fitness_recognizer):
        """render=True makes the camera draw real frames; the pose service's
        person detection then runs on actual pixels, and the JPEG codec
        genuinely quantizes the imagery between devices."""
        home = VideoPipe.paper_testbed(seed=11)
        services = install_fitness_services(home,
                                            recognizer=fitness_recognizer)
        app = FitnessApp(home, services)
        pipeline = app.deploy(
            fitness_pipeline_config(fps=5.0, duration_s=4.0, render=True)
        )
        home.run(until=5.0)
        assert services.sink.count >= 10
        for name in pipeline.module_names():
            assert pipeline.module(name).errors == [], name
        # the displayed overlays still recognized the activity from the
        # noisy, codec-degraded stream
        labelled = [f for f in services.sink.frames if f.label]
        assert labelled
        assert labelled[-1].label == "squat"
        # the Fig.-3-style skeleton overlay was actually burned into pixels
        composited = [f for f in services.sink.frames if f.composited is not None]
        assert composited
        assert (composited[-1].composited == 255).any()
