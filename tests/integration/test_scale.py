"""Integration: many pipelines, one home — the framework under load.

The paper deploys two pipelines; a framework release should not fall over
at six. Six camera feeds share one pose-detector host with autoscaling
enabled; the home must stay correct (no errors, no leaks, fair service) and
aggregate throughput must track the scaled capacity.
"""

import pytest

from repro.apps import (
    gesture_pipeline_config,
    install_fitness_services,
    install_gesture_services,
    train_gesture_recognizer,
)
from repro.core import VideoPipe
from repro.devices import DeviceSpec
from repro.services import ScalingPolicy

N_PIPELINES = 6
DURATION_S = 15.0


@pytest.fixture(scope="module")
def big_home(fitness_recognizer):
    gesture_recognizer = train_gesture_recognizer(seed=1, train_subjects=2)
    home = VideoPipe.paper_testbed(seed=23)
    for i in range(N_PIPELINES):
        home.add_device(DeviceSpec(name=f"cam{i}", kind="phone",
                                   cpu_factor=2.5, cores=8))
    install_fitness_services(home, recognizer=fitness_recognizer)
    install_gesture_services(home, recognizer=gesture_recognizer)
    home.enable_autoscaling(ScalingPolicy(
        check_interval_s=0.25, queue_threshold=0.75, window=4, max_replicas=6,
    ))
    pipelines = []
    for i in range(N_PIPELINES):
        config = gesture_pipeline_config(
            name=f"gesture-{i}", fps=15.0, duration_s=DURATION_S,
            base_port=6000 + 10 * i, source_device=f"cam{i}",
        )
        # unique module names per pipeline instance
        for module in config.modules:
            module.name = f"{module.name}_{i}"
        config.modules[0].next_modules = [f"gesture_pose_module_{i}"]
        config.modules[1].next_modules = [f"gesture_classifier_module_{i}"]
        config.modules[2].next_modules = [f"gesture_control_module_{i}"]
        config.source = f"gesture_video_module_{i}"
        pipelines.append(home.deploy_pipeline(config))
    home.run(until=DURATION_S + 1.0)
    return home, pipelines


class TestManyPipelines:
    def test_all_pipelines_progress(self, big_home):
        _, pipelines = big_home
        for pipeline in pipelines:
            fps = pipeline.metrics.throughput_fps(DURATION_S + 1.0,
                                                  warmup_s=3.0)
            assert fps > 2.0, pipeline.name

    def test_pose_service_scaled_up(self, big_home):
        home, _ = big_home
        pose = home.registry.any_host("pose_detector")
        assert pose.replicas >= 3  # six feeds cannot run on one worker
        assert home.autoscaler.events

    def test_aggregate_throughput_tracks_capacity(self, big_home):
        home, pipelines = big_home
        total = sum(
            p.metrics.throughput_fps(DURATION_S + 1.0, warmup_s=3.0)
            for p in pipelines
        )
        pose = home.registry.any_host("pose_detector")
        capacity = pose.replicas / 0.053  # replicas x (1 / pose service time)
        assert total < capacity * 1.1
        assert total > 25.0  # far beyond a single worker's ~19 req/s

    def test_fair_sharing(self, big_home):
        _, pipelines = big_home
        rates = [p.metrics.throughput_fps(DURATION_S + 1.0, warmup_s=3.0)
                 for p in pipelines]
        assert min(rates) > max(rates) * 0.6

    def test_no_errors_no_leaks(self, big_home):
        home, pipelines = big_home
        for pipeline in pipelines:
            for name in pipeline.module_names():
                assert pipeline.module(name).errors == [], name
        home.run(until=DURATION_S + 2.0)
        for device in home.devices.values():
            assert len(device.frame_store) <= 1, device.name
