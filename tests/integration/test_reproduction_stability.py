"""Integration: the headline reproduction claims hold across seeds.

The benchmarks pin one seed; this guard re-checks the qualitative shape —
VideoPipe beats the baseline at saturation; low rates track the source —
on several other seeds with short runs, so a lucky seed can't carry the
reproduction.
"""

import pytest

from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    fitness_pipeline_from_listing,
    install_fitness_services,
)
from repro.core import VideoPipe


def measure(recognizer, architecture, fps, seed, duration=12.0):
    home = VideoPipe.paper_testbed(seed=seed)
    services = install_fitness_services(
        home, recognizer=recognizer,
        baseline_layout=(architecture == "baseline"),
    )
    app = FitnessApp(home, services, architecture=architecture)
    pipeline = app.deploy(fitness_pipeline_config(fps=fps, duration_s=duration))
    home.run(until=duration + 1.0)
    return pipeline.metrics.throughput_fps(duration + 1.0, warmup_s=2.0)


@pytest.mark.parametrize("seed", [101, 202, 303])
class TestShapeAcrossSeeds:
    def test_videopipe_beats_baseline_at_saturation(self, seed,
                                                    fitness_recognizer):
        vp = measure(fitness_recognizer, "videopipe", 30.0, seed)
        base = measure(fitness_recognizer, "baseline", 30.0, seed)
        assert vp > base * 1.15
        assert 9.0 < vp < 12.5
        assert 6.5 < base < 9.5

    def test_low_rate_tracks_source(self, seed, fitness_recognizer):
        vp = measure(fitness_recognizer, "videopipe", 5.0, seed)
        assert vp == pytest.approx(5.0, abs=0.7)


class TestListingDrivenPipeline:
    def test_listing_text_runs_the_real_app(self, fitness_recognizer):
        """The paper's Listing-1 text, parsed and deployed, behaves like the
        programmatic configuration."""
        home = VideoPipe.paper_testbed(seed=404)
        services = install_fitness_services(home,
                                            recognizer=fitness_recognizer)
        app = FitnessApp(home, services)
        config = fitness_pipeline_from_listing(fps=10.0, duration_s=8.0)
        pipeline = app.deploy(config)
        assert pipeline.device_of("pose_detector_module") == "desktop"
        assert pipeline.device_of("display_module") == "tv"
        home.run(until=9.0)
        assert services.sink.count > 40
        assert pipeline.metrics.counter("frames_completed") > 40
        for name in pipeline.module_names():
            assert pipeline.module(name).errors == [], name
