"""Integration: the zero-copy data plane is deterministic and auditable.

The arena and the replica pool sit on the hottest paths in the home
(every intra-device hop, every service dispatch), so they get the same
treatment as the fast path: run twice under the event tap and require
bit-for-bit identical streams, and prove the all-off config is a strict
no-op against a home that never enabled it.
"""

from repro.audit import InvariantAuditor
from repro.audit.determinism import record_scenario
from repro.audit.scenarios import DURATION_S, _activity_recognizer, _run
from repro.core import VideoPipe
from repro.pipeline import DataPlaneConfig


def _fitness_scenario(data_plane=None):
    """quickstart's shape with an optional data-plane config applied."""

    def scenario(seed):
        from repro.apps import (
            FitnessApp,
            fitness_pipeline_config,
            install_fitness_services,
        )

        home = VideoPipe.paper_testbed(seed=seed)
        if data_plane is not None:
            home.enable_data_plane(data_plane)
        services = install_fitness_services(
            home, recognizer=_activity_recognizer())
        app = FitnessApp(home, services)
        pipeline = app.deploy(
            fitness_pipeline_config(fps=10.0, duration_s=DURATION_S))
        base_run = _run(home, pipeline)

        def run_fn():
            result = base_run()
            result["data_plane"] = home.data_plane_stats()
            return result

        return home, run_fn

    return scenario


def test_data_plane_scenario_is_deterministic(assert_deterministic):
    report = assert_deterministic(
        _fitness_scenario(DataPlaneConfig()), seed=7, name="data_plane")
    assert report.event_count > 500  # the scenario actually exercised the home


def test_all_off_config_replays_bitforbit(assert_deterministic):
    """enable_data_plane with everything off must leave no trace: the
    fingerprint matches a home that never called it."""
    plain = record_scenario(_fitness_scenario(), 7)
    noop = record_scenario(
        _fitness_scenario(DataPlaneConfig(arena=False, replica_pool=False)), 7)
    assert plain.fingerprint == noop.fingerprint


def test_audited_data_plane_run_is_clean():
    """A full fitness run with arena + pool under the auditor: frames
    complete, the arena drains, and no conservation law fires."""
    from repro.apps import (
        FitnessApp,
        fitness_pipeline_config,
        install_fitness_services,
    )

    home = VideoPipe.paper_testbed(seed=7)
    auditor = InvariantAuditor(home.kernel)
    home.enable_audit(auditor)
    home.enable_data_plane()
    services = install_fitness_services(home, recognizer=_activity_recognizer())
    app = FitnessApp(home, services)
    pipeline = app.deploy(
        fitness_pipeline_config(fps=10.0, duration_s=DURATION_S))
    home.run(until=DURATION_S + 1.0)
    assert pipeline.metrics.counter("frames_completed") > 0
    stats = home.data_plane_stats()
    assert stats["arena"]["allocs"] > 0
    assert stats["arena"]["stale_accesses"] == 0
    assert stats["pool"]["grants"] > 0
    if home.kernel.pending_events == 0:
        auditor.check_quiesce()
    else:
        auditor.check_now()
    assert not auditor.violations, auditor.report()
