"""Integration: live module migration (§7 'automatic deployment')."""

import pytest

from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.core import VideoPipe
from repro.errors import ConfigError


@pytest.fixture
def running_fitness(fitness_recognizer):
    home = VideoPipe.paper_testbed(seed=13)
    services = install_fitness_services(home, recognizer=fitness_recognizer)
    app = FitnessApp(home, services)
    pipeline = app.deploy(fitness_pipeline_config(fps=10.0, duration_s=20.0))
    home.run(until=6.0)  # warm, mid-run
    return home, services, pipeline


class TestLiveMigration:
    def test_rep_counter_moves_and_keeps_counting(self, running_fitness):
        home, services, pipeline = running_fitness
        rep_module = pipeline.module_instance("rep_counter_module")
        reps_before = rep_module.reps
        frames_before = len(rep_module._features)
        assert pipeline.device_of("rep_counter_module") == "tv"

        home.migrate_module(pipeline, "rep_counter_module", "desktop")

        assert pipeline.device_of("rep_counter_module") == "desktop"
        assert pipeline.wiring.address_of("rep_counter_module").device == "desktop"
        # the same instance, same state, on the new device
        assert pipeline.module_instance("rep_counter_module") is rep_module
        assert len(rep_module._features) == frames_before

        home.run(until=20.5)
        assert rep_module.reps >= reps_before
        assert len(rep_module._features) > frames_before  # kept receiving
        assert pipeline.metrics.counter("migrations") == 1
        # no errors after the move
        assert pipeline.module("rep_counter_module").errors == []

    def test_pipeline_keeps_flowing_after_migration(self, running_fitness):
        home, services, pipeline = running_fitness
        shown_before = services.sink.count
        home.migrate_module(pipeline, "rep_counter_module", "desktop")
        home.run(until=20.5)
        assert services.sink.count > shown_before + 50

    def test_migrated_stub_locality_flips(self, running_fitness):
        """On the TV the rep counter service was local; on the desktop the
        module must call it remotely — the stub is rebuilt."""
        home, _, pipeline = running_fitness
        ctx = pipeline.module("rep_counter_module").ctx
        assert ctx.service_is_local("rep_counter")
        home.migrate_module(pipeline, "rep_counter_module", "desktop")
        new_ctx = pipeline.module("rep_counter_module").ctx
        assert not new_ctx.service_is_local("rep_counter")
        home.run(until=20.5)
        assert pipeline.module("rep_counter_module").errors == []

    def test_migrate_to_same_device_is_noop(self, running_fitness):
        home, _, pipeline = running_fitness
        deployed = pipeline.module("rep_counter_module")
        home.migrate_module(pipeline, "rep_counter_module", "tv")
        assert pipeline.module("rep_counter_module") is deployed
        assert pipeline.metrics.counter("migrations") == 0

    def test_no_frame_leaks_after_migration(self, running_fitness):
        home, _, pipeline = running_fitness
        home.migrate_module(pipeline, "display_module", "desktop")
        home.run(until=21.5)  # past source end: drain
        for device in home.devices.values():
            assert len(device.frame_store) <= 1, device.name

    def test_migrate_before_deploy_rejected(self):
        home = VideoPipe.paper_testbed(seed=0)
        with pytest.raises(ConfigError):
            home.migrate_module(None, "x", "desktop")


class TestMigrationUnderLoad:
    def test_critical_path_migration_with_watchdog(self, fitness_recognizer):
        """Migrating the display module (the credit signaler) mid-stream can
        drop an in-flight frame; with the source watchdog enabled the
        pipeline always recovers."""
        home = VideoPipe.paper_testbed(seed=14)
        services = install_fitness_services(home,
                                            recognizer=fitness_recognizer)
        app = FitnessApp(home, services)
        config = fitness_pipeline_config(fps=10.0, duration_s=25.0)
        config.module("video_streaming_module").params["credit_timeout_s"] = 1.0
        pipeline = app.deploy(config)

        # bounce the display module between devices while streaming
        for i, at in enumerate((5.0, 10.0, 15.0)):
            target = "desktop" if i % 2 == 0 else "tv"
            home.kernel.schedule(
                at, lambda t=target: home.migrate_module(
                    pipeline, "display_module", t)
            )
        home.run(until=26.0)

        assert pipeline.metrics.counter("migrations") == 3
        # the stream survived every move: frames kept completing to the end
        completions = pipeline.metrics.completions.timestamps
        assert completions[-1] > 20.0
        assert pipeline.metrics.counter("frames_completed") > 100
        # no reference leaks despite dropped in-flight frames
        home.run(until=28.0)
        for device in home.devices.values():
            assert len(device.frame_store) <= 1, device.name
