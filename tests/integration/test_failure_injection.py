"""Integration: the pipeline under injected faults.

A production framework must degrade, not die: lossy Wi-Fi slows frames
down (TCP retransmits), a crashing service fails individual frames while
the pipeline keeps flowing, and pose misses release their frames and refill
the source credit.
"""

import pytest

from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.core import VideoPipe
from repro.net import LinkSpec
from repro.services import FunctionService
from repro.vision.pose_estimator import PoseNoiseModel


def deploy(home, recognizer, fps=10.0, duration=10.0, **service_kwargs):
    services = install_fitness_services(home, recognizer=recognizer,
                                        **service_kwargs)
    app = FitnessApp(home, services)
    pipeline = app.deploy(fitness_pipeline_config(fps=fps, duration_s=duration))
    return services, pipeline


class TestLossyWifi:
    def test_pipeline_survives_heavy_loss(self, fitness_recognizer):
        lossy = LinkSpec(latency_s=0.0012, jitter_cv=0.25,
                         bandwidth_bps=120e6, loss_prob=0.15,
                         retransmit_penalty_s=0.05)
        home = VideoPipe.paper_testbed(seed=4, wifi=lossy)
        services, pipeline = deploy(home, fitness_recognizer)
        home.run(until=11.0)
        assert services.sink.count > 20  # slower, but alive
        for name in pipeline.module_names():
            assert pipeline.module(name).errors == []

    def test_loss_costs_throughput(self, fitness_recognizer):
        rates = {}
        for loss in (0.0, 0.25):
            wifi = LinkSpec(latency_s=0.0012, jitter_cv=0.25,
                            bandwidth_bps=120e6, loss_prob=loss,
                            retransmit_penalty_s=0.05)
            home = VideoPipe.paper_testbed(seed=4, wifi=wifi)
            _, pipeline = deploy(home, fitness_recognizer, fps=30.0,
                                 duration=12.0)
            home.run(until=13.0)
            rates[loss] = pipeline.metrics.throughput_fps(13.0, warmup_s=2.0)
        assert rates[0.25] < rates[0.0] * 0.9


class TestServiceCrashes:
    def test_flaky_display_service_does_not_stall_the_pipeline(
            self, fitness_recognizer):
        """Every display call fails — frames still complete and the source
        keeps receiving credits (the signal precedes the local call)."""
        home = VideoPipe.paper_testbed(seed=5)
        services, pipeline = deploy(home, fitness_recognizer)

        def explode(payload, ctx):
            raise RuntimeError("panel driver crashed")

        # sabotage the display service behind its host
        display_host = home.registry.any_host("display")
        display_host.service.handle = explode
        home.run(until=11.0)
        # frames completed (the metric is recorded before the call resolves)
        assert pipeline.metrics.counter("frames_completed") > 30
        # each failed call surfaced as a module error, not a deadlock
        display_module = pipeline.module("display_module")
        assert len(display_module.errors) > 30
        assert display_host.errors > 30

    def test_flaky_pose_service_fails_frames_not_pipeline(
            self, fitness_recognizer):
        """The pose service crashes on every 3rd call; other frames flow."""
        home = VideoPipe.paper_testbed(seed=6)
        services, pipeline = deploy(home, fitness_recognizer)
        pose_host = home.registry.any_host("pose_detector")
        original = pose_host.service.handle
        calls = {"n": 0}

        def sometimes(payload, ctx):
            calls["n"] += 1
            if calls["n"] % 3 == 0:
                raise RuntimeError("inference engine fault")
            return original(payload, ctx)

        pose_host.service.handle = sometimes
        home.run(until=11.0)
        pose_module = pipeline.module("pose_detector_module")
        assert pose_module.errors  # the failures were recorded
        assert services.sink.count > 10  # the surviving 2/3 still display


class TestPoseMisses:
    def test_missed_detections_release_frames_and_credit(
            self, fitness_recognizer):
        """With a high miss probability, dropped frames must neither leak
        references nor wedge the credit loop."""
        home = VideoPipe.paper_testbed(seed=7)
        services, pipeline = deploy(
            home, fitness_recognizer,
            pose_noise=PoseNoiseModel(miss_prob=0.3),
        )
        home.run(until=12.0)
        misses = pipeline.metrics.counter("pose_misses")
        assert misses > 5
        # pipeline kept going after every miss
        assert services.sink.count > 20
        # no leaked frames once drained
        for device in home.devices.values():
            assert len(device.frame_store) <= 1, device.name


class TestOverloadedDevice:
    def test_busy_desktop_slows_but_does_not_break(self, fitness_recognizer):
        """A rogue co-tenant service burns desktop cores; the pipeline
        queues behind it but completes frames."""
        home = VideoPipe.paper_testbed(seed=8)
        burner = FunctionService("burner", lambda p, c: p,
                                 reference_cost_s=0.030, default_port=7800)
        burner_host = home.deploy_service(burner, "desktop", replicas=8)
        services, pipeline = deploy(home, fitness_recognizer, fps=30.0,
                                    duration=12.0)

        def burn():
            while home.now < 12.0:
                for _ in range(8):
                    burner_host.call_local({})
                yield 0.03

        home.kernel.process(burn())
        home.run(until=13.0)
        fps = pipeline.metrics.throughput_fps(13.0, warmup_s=2.0)
        assert 2.0 < fps < 10.5  # degraded by contention, still flowing
        assert home.device("desktop").cpu.utilization() > 0.5
