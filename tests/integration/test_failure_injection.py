"""Integration: the pipeline under injected faults.

A production framework must degrade, not die: lossy Wi-Fi slows frames
down (TCP retransmits), a crashing service fails individual frames while
the pipeline keeps flowing, and pose misses release their frames and refill
the source credit.
"""

import pytest

from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.core import VideoPipe
from repro.net import LinkSpec
from repro.services import FunctionService
from repro.vision.pose_estimator import PoseNoiseModel


def deploy(home, recognizer, fps=10.0, duration=10.0, **service_kwargs):
    services = install_fitness_services(home, recognizer=recognizer,
                                        **service_kwargs)
    app = FitnessApp(home, services)
    pipeline = app.deploy(fitness_pipeline_config(fps=fps, duration_s=duration))
    return services, pipeline


class TestLossyWifi:
    def test_pipeline_survives_heavy_loss(self, fitness_recognizer):
        lossy = LinkSpec(latency_s=0.0012, jitter_cv=0.25,
                         bandwidth_bps=120e6, loss_prob=0.15,
                         retransmit_penalty_s=0.05)
        home = VideoPipe.paper_testbed(seed=4, wifi=lossy)
        services, pipeline = deploy(home, fitness_recognizer)
        home.run(until=11.0)
        assert services.sink.count > 20  # slower, but alive
        for name in pipeline.module_names():
            assert pipeline.module(name).errors == []

    def test_loss_costs_throughput(self, fitness_recognizer):
        rates = {}
        for loss in (0.0, 0.25):
            wifi = LinkSpec(latency_s=0.0012, jitter_cv=0.25,
                            bandwidth_bps=120e6, loss_prob=loss,
                            retransmit_penalty_s=0.05)
            home = VideoPipe.paper_testbed(seed=4, wifi=wifi)
            _, pipeline = deploy(home, fitness_recognizer, fps=30.0,
                                 duration=12.0)
            home.run(until=13.0)
            rates[loss] = pipeline.metrics.throughput_fps(13.0, warmup_s=2.0)
        assert rates[0.25] < rates[0.0] * 0.9


class TestServiceCrashes:
    def test_flaky_display_service_does_not_stall_the_pipeline(
            self, fitness_recognizer):
        """Every display call fails — frames still complete and the source
        keeps receiving credits (the signal precedes the local call)."""
        home = VideoPipe.paper_testbed(seed=5)
        services, pipeline = deploy(home, fitness_recognizer)

        def explode(payload, ctx):
            raise RuntimeError("panel driver crashed")

        # sabotage the display service behind its host
        display_host = home.registry.any_host("display")
        display_host.service.handle = explode
        home.run(until=11.0)
        # frames completed (the metric is recorded before the call resolves)
        assert pipeline.metrics.counter("frames_completed") > 30
        # each failed call surfaced as a module error, not a deadlock
        display_module = pipeline.module("display_module")
        assert len(display_module.errors) > 30
        assert display_host.errors > 30

    def test_flaky_pose_service_fails_frames_not_pipeline(
            self, fitness_recognizer):
        """The pose service crashes on every 3rd call; other frames flow."""
        home = VideoPipe.paper_testbed(seed=6)
        services, pipeline = deploy(home, fitness_recognizer)
        pose_host = home.registry.any_host("pose_detector")
        original = pose_host.service.handle
        calls = {"n": 0}

        def sometimes(payload, ctx):
            calls["n"] += 1
            if calls["n"] % 3 == 0:
                raise RuntimeError("inference engine fault")
            return original(payload, ctx)

        pose_host.service.handle = sometimes
        home.run(until=11.0)
        pose_module = pipeline.module("pose_detector_module")
        assert pose_module.errors  # the failures were recorded
        assert services.sink.count > 10  # the surviving 2/3 still display


class TestPoseMisses:
    def test_missed_detections_release_frames_and_credit(
            self, fitness_recognizer):
        """With a high miss probability, dropped frames must neither leak
        references nor wedge the credit loop."""
        home = VideoPipe.paper_testbed(seed=7)
        services, pipeline = deploy(
            home, fitness_recognizer,
            pose_noise=PoseNoiseModel(miss_prob=0.3),
        )
        home.run(until=12.0)
        misses = pipeline.metrics.counter("pose_misses")
        assert misses > 5
        # pipeline kept going after every miss
        assert services.sink.count > 20
        # no leaked frames once drained
        for device in home.devices.values():
            assert len(device.frame_store) <= 1, device.name


class TestOverloadedDevice:
    def test_busy_desktop_slows_but_does_not_break(self, fitness_recognizer):
        """A rogue co-tenant service burns desktop cores; the pipeline
        queues behind it but completes frames."""
        home = VideoPipe.paper_testbed(seed=8)
        burner = FunctionService("burner", lambda p, c: p,
                                 reference_cost_s=0.030, default_port=7800)
        burner_host = home.deploy_service(burner, "desktop", replicas=8)
        services, pipeline = deploy(home, fitness_recognizer, fps=30.0,
                                    duration=12.0)

        def burn():
            while home.now < 12.0:
                for _ in range(8):
                    burner_host.call_local({})
                yield 0.03

        home.kernel.process(burn())
        home.run(until=13.0)
        fps = pipeline.metrics.throughput_fps(13.0, warmup_s=2.0)
        assert 2.0 < fps < 10.5  # degraded by contention, still flowing
        assert home.device("desktop").cpu.utilization() > 0.5


# -- chaos scenarios: the FaultPlan/ChaosInjector subsystem end to end ----------

from repro.faults import FaultPlan  # noqa: E402
from repro.services import (  # noqa: E402
    ActivityClassifierService,
    PoseDetectorService,
)


def deploy_chaos(home, recognizer, fps=10.0, standby=True,
                 architecture="videopipe"):
    """The fitness pipeline hardened for chaos: compute pinned to the
    desktop, standby pose/activity replicas on a laptop, and the source's
    credit watchdog armed so lost ready-signals cannot wedge the stream."""
    if standby:
        home.add_device("laptop")
    services = install_fitness_services(home, recognizer=recognizer)
    if standby:
        home.deploy_service(PoseDetectorService(), "laptop")
        home.deploy_service(ActivityClassifierService(recognizer), "laptop")
    config = fitness_pipeline_config(fps=fps)
    config.module("pose_detector_module").device = "desktop"
    config.module("activity_detector_module").device = "desktop"
    config.module("video_streaming_module").params["credit_timeout_s"] = 1.0
    app = FitnessApp(home, services, architecture=architecture)
    pipeline = app.deploy(config)
    return services, pipeline


def completed(pipeline):
    return pipeline.metrics.counter("frames_completed")


@pytest.mark.chaos
class TestDeviceCrashRecovery:
    def test_mid_run_crash_detected_evacuated_and_recovered(
            self, fitness_recognizer):
        """The ISSUE's acceptance scenario: the device hosting the pose
        service dies mid-run; the failure detector notices, the orchestrator
        re-deploys the stranded modules onto the standby laptop, and
        post-recovery throughput lands within 30% of pre-fault."""
        home = VideoPipe.paper_testbed(seed=11)
        _, pipeline = deploy_chaos(home, fitness_recognizer, fps=10.0)
        detector = home.enable_failure_detection(
            home_device="tv", period_s=0.25, miss_threshold=2)
        orchestrator = home.enable_self_healing(pipeline, cooldown_s=0.5)
        home.enable_fault_injection(
            FaultPlan().device_crash(4.0, "desktop", down_for=8.0))

        home.run(until=1.0)
        warm = completed(pipeline)
        home.run(until=4.0)
        pre = completed(pipeline)
        pre_rate = (pre - warm) / 3.0
        assert pre_rate > 5.0  # healthy before the fault

        home.run(until=14.0)
        post_start = completed(pipeline)
        home.run(until=20.0)
        post_rate = (completed(pipeline) - post_start) / 6.0

        # the stranded compute modules were evacuated to the laptop
        assert pipeline.device_of("pose_detector_module") == "laptop"
        assert pipeline.device_of("activity_detector_module") == "laptop"
        assert pipeline.metrics.counter("recovery_migrations") == 2
        # the detector saw the outage end-to-end and reports its MTTR
        assert detector.detections >= 1
        assert detector.mttr_samples
        assert 6.0 < detector.mttr_max() < 10.0
        # no remedy blew up; the control loop stayed healthy
        assert orchestrator.action_failures == []
        # post-recovery throughput within 30% of pre-fault
        assert post_rate >= 0.7 * pre_rate

    def test_recovery_tracker_aggregates_the_story(self, fitness_recognizer):
        from repro.metrics import RecoveryTracker

        home = VideoPipe.paper_testbed(seed=11)
        _, pipeline = deploy_chaos(home, fitness_recognizer, fps=10.0)
        detector = home.enable_failure_detection(
            home_device="tv", period_s=0.25, miss_threshold=2)
        home.enable_self_healing(pipeline, cooldown_s=0.5)
        injector = home.enable_fault_injection(
            FaultPlan().device_crash(4.0, "desktop", down_for=8.0))
        tracker = (RecoveryTracker()
                   .watch_detector(detector)
                   .watch_injector(injector)
                   .watch_pipeline(pipeline))
        home.run(until=16.0)
        report = tracker.report()
        assert report["faults_injected"] == 2
        assert report["detections"] == 1
        assert report["recoveries"] == 1
        assert report["mttr_mean_s"] > 0
        assert report["recovery_migrations"] == 2


@pytest.mark.chaos
class TestPartitionHeal:
    def test_source_partition_stalls_then_resumes(self, fitness_recognizer):
        """The camera phone drops off Wi-Fi for 3 s; while partitioned no
        frames complete, and after the heal the credit watchdog restarts the
        stream without outside help."""
        home = VideoPipe.paper_testbed(seed=12)
        _, pipeline = deploy_chaos(home, fitness_recognizer, fps=10.0,
                                   standby=False)
        home.enable_fault_injection(
            FaultPlan().partition(3.0, "phone", heal_after=3.0))
        home.run(until=3.0)
        pre = completed(pipeline)
        assert pre > 10
        home.run(until=6.0)
        during = completed(pipeline)
        assert during - pre <= 3  # in-flight frames at most
        home.run(until=12.0)
        after = completed(pipeline)
        assert after - during > 20  # the stream came back at full rate
        source = pipeline.module("video_streaming_module").module.source
        assert source.watchdog_recoveries >= 1


@pytest.mark.chaos
class TestReplicaFailover:
    def test_stub_fails_over_to_standby_replica(self, fitness_recognizer):
        """Baseline architecture (every service call remote): the desktop's
        pose replica process dies; the stub retries, then permanently fails
        over to the laptop replica."""
        home = VideoPipe.paper_testbed(seed=13)
        _, pipeline = deploy_chaos(home, fitness_recognizer, fps=5.0,
                                   architecture="baseline")
        home.enable_fault_injection(
            FaultPlan().service_crash(4.0, "pose_detector", "desktop"))
        home.run(until=4.0)
        pre = completed(pipeline)
        assert pre > 5
        home.run(until=12.0)
        stub = pipeline.module("pose_detector_module").ctx._stubs[
            "pose_detector"]
        assert stub.failovers >= 1
        assert stub.target_address.device == "laptop"
        assert completed(pipeline) - pre > 10  # flowing again post-failover


@pytest.mark.chaos
class TestTotalOutage:
    def test_summaries_survive_a_run_with_no_completions(
            self, fitness_recognizer):
        """Regression: a chaos plan that kills every device before the first
        frame completes used to make the metrics summaries raise ValueError
        (``summarize([])``). They must report empty instead."""
        home = VideoPipe.paper_testbed(seed=14)
        _, pipeline = deploy_chaos(home, fitness_recognizer, fps=10.0,
                                   standby=False)
        plan = FaultPlan()
        for device in ("phone", "desktop", "tv"):
            plan.device_crash(0.05, device, down_for=100.0)
        home.enable_fault_injection(plan)
        home.run(until=5.0)

        metrics = pipeline.metrics
        # at most the in-flight frame's failure path fired; no frame ever
        # reached the display, so no stage was recorded anywhere
        assert metrics.counter("frames_completed") <= 2
        assert metrics.stage_names() == []
        assert metrics.stage_means_ms() == {}
        # the summaries report empty instead of raising ValueError
        assert metrics.stage_summary("total_duration").count == 0
        latency = metrics.total_latency_summary()
        assert latency.count == len(metrics.total_latencies)
        # the probe-facing accounting stayed coherent too: the frame lost
        # to the outage is dead-lettered (accounted as dropped), not left
        # marked in-flight forever; frames_dropped also covers the source's
        # pre-admission credit drops while the home is down, so it far
        # exceeds the admitted count
        entered = metrics.counter("frames_entered")
        assert entered > 0
        assert (entered <= metrics.counter("frames_completed")
                + metrics.counter("frames_dropped"))
        assert metrics.frames_in_flight == 0


@pytest.mark.chaos
class TestChaosDeterminism:
    def test_same_plan_same_seed_identical_run(self, fitness_recognizer):
        """Acceptance: fault injection is fully deterministic — same
        FaultPlan + same seed produce an identical fault trace, detector
        event log, and frame count."""

        def run_once():
            home = VideoPipe.paper_testbed(seed=21)
            _, pipeline = deploy_chaos(home, fitness_recognizer, fps=10.0)
            detector = home.enable_failure_detection(
                home_device="tv", period_s=0.25, miss_threshold=2)
            home.enable_self_healing(pipeline, cooldown_s=0.5)
            injector = home.enable_fault_injection(
                FaultPlan()
                .device_crash(3.0, "desktop", down_for=4.0)
                .latency_spike(8.0, "phone", extra_latency_s=0.05,
                               duration_s=2.0))
            home.run(until=14.0)
            return (
                tuple(injector.trace),
                tuple((e.at, e.device, e.kind, e.mttr_s)
                      for e in detector.events),
                completed(pipeline),
            )

        assert run_once() == run_once()
