"""Integration: the service-layer fast path (dedup + cache + batching).

Two end-to-end properties matter: a static scene gets dramatically cheaper
with the fast path on, and a home with every feature off is bit-for-bit the
home that never heard of the fast path.
"""

import pytest

from repro.apps import fitness_pipeline_config, install_fitness_services
from repro.core import VideoPipe
from repro.pipeline import PerfConfig


def run_fitness(recognizer, perf, static_scene, fps=30.0, duration=6.0,
                seed=11):
    home = VideoPipe.paper_testbed(seed=seed)
    if perf is not None:
        home.enable_fast_path(perf)
    install_fitness_services(home, recognizer=recognizer)
    pipeline = home.deploy_pipeline(fitness_pipeline_config(
        fps=fps, duration_s=duration, static_scene=static_scene
    ))
    home.run(until=duration + 1.0)
    return home, pipeline


def fingerprint(pipeline):
    return (
        pipeline.metrics.counter("frames_completed"),
        tuple(round(v, 12) for v in pipeline.metrics.total_latencies),
    )


class TestFastPath:
    def test_static_scene_speedup(self, fitness_recognizer):
        _, off = run_fitness(fitness_recognizer, None, static_scene=True)
        home, on = run_fitness(fitness_recognizer, PerfConfig(),
                               static_scene=True)
        f_off = off.metrics.throughput_fps(7.0, warmup_s=2.0)
        f_on = on.metrics.throughput_fps(7.0, warmup_s=2.0)
        assert f_on >= 1.5 * f_off
        stats = home.perf_stats()
        assert stats["dedup"]["ratio"] > 0.9  # frozen feed collapses
        assert stats["cache"]["hit_rate"] > 0.5
        assert stats["cache"]["by_service"]["pose_detector"]["hits"] > 0

    def test_cache_hits_surface_in_pipeline_metrics(self, fitness_recognizer):
        _, on = run_fitness(fitness_recognizer, PerfConfig(),
                            static_scene=True)
        assert on.metrics.counter("service_cache_hits.pose_detector") > 0

    def test_dynamic_scene_still_correct(self, fitness_recognizer):
        """Moving content: nothing to dedup, but results stay right."""
        home, on = run_fitness(fitness_recognizer, PerfConfig(),
                               static_scene=False)
        assert on.metrics.counter("frames_completed") > 0
        assert home.perf_stats()["dedup"]["ratio"] < 0.5

    def test_all_features_off_reproduces_seed_exactly(self, fitness_recognizer):
        """PerfConfig with everything disabled is indistinguishable from
        never enabling the fast path: same floats, same frame count."""
        disabled = PerfConfig(frame_dedup=False, result_cache=False,
                              batching=False)
        assert not disabled.any_enabled
        _, baseline = run_fitness(fitness_recognizer, None, static_scene=False)
        _, gated = run_fitness(fitness_recognizer, disabled, static_scene=False)
        assert fingerprint(baseline) == fingerprint(gated)

    def test_fast_path_on_is_deterministic(self, fitness_recognizer):
        first = fingerprint(run_fitness(fitness_recognizer, PerfConfig(),
                                        static_scene=True)[1])
        second = fingerprint(run_fitness(fitness_recognizer, PerfConfig(),
                                         static_scene=True)[1])
        assert first == second

    def test_perf_config_validation(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            PerfConfig(max_batch=0)
        with pytest.raises(ConfigError):
            PerfConfig(cache_max_entries=0)
        with pytest.raises(ConfigError):
            PerfConfig(max_wait_s=-0.001)
        with pytest.raises(ConfigError):
            PerfConfig(dedup_retain_limit=-1)
