"""Integration: whole-system determinism.

The benchmark numbers are only trustworthy if the entire home — kernel,
links, CPUs, cameras, noise models, services — replays identically from a
seed.
"""

from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.core import VideoPipe


def run_fitness(seed, recognizer, fps=20.0, duration=8.0):
    home = VideoPipe.paper_testbed(seed=seed)
    services = install_fitness_services(home, recognizer=recognizer)
    app = FitnessApp(home, services)
    pipeline = app.deploy(fitness_pipeline_config(fps=fps, duration_s=duration))
    home.run(until=duration + 1.0)
    return {
        "completed": pipeline.metrics.counter("frames_completed"),
        "latencies": tuple(round(v, 12) for v in pipeline.metrics.total_latencies),
        "stage_means": tuple(sorted(
            (k, round(v, 9))
            for k, v in pipeline.metrics.stage_means_ms().items()
        )),
        "displayed": services.sink.count,
        "last_reps": services.sink.frames[-1].reps,
    }


class TestDeterminism:
    def test_same_seed_replays_identically(self, fitness_recognizer):
        first = run_fitness(99, fitness_recognizer)
        second = run_fitness(99, fitness_recognizer)
        assert first == second

    def test_different_seeds_diverge(self, fitness_recognizer):
        a = run_fitness(99, fitness_recognizer)
        b = run_fitness(100, fitness_recognizer)
        assert a["latencies"] != b["latencies"]

    def test_two_pipeline_home_is_deterministic(self, fitness_recognizer):
        from repro.apps import (gesture_pipeline_config,
                                install_gesture_services,
                                train_gesture_recognizer)
        from repro.devices import DeviceSpec

        gesture_recognizer = train_gesture_recognizer(seed=1, train_subjects=2)

        def run(seed):
            home = VideoPipe.paper_testbed(seed=seed)
            home.add_device(DeviceSpec(name="camera", kind="phone",
                                       cpu_factor=2.5, cores=8))
            fitness = install_fitness_services(home,
                                               recognizer=fitness_recognizer)
            gesture = install_gesture_services(home,
                                               recognizer=gesture_recognizer)
            app = FitnessApp(home, fitness)
            p1 = app.deploy(fitness_pipeline_config(fps=20.0, duration_s=6.0))
            p2 = home.deploy_pipeline(
                gesture_pipeline_config(fps=20.0, duration_s=6.0)
            )
            home.run(until=7.0)
            return (
                p1.metrics.counter("frames_completed"),
                p2.metrics.counter("frames_completed"),
                tuple(round(v, 12) for v in p1.metrics.total_latencies),
                tuple((e.at, e.target, e.new_state) for e in gesture.fleet.log),
            )

        assert run(7) == run(7)
