"""Integration: the same system paced against the wall clock."""

import time as wall

import pytest

from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.core import VideoPipe


class TestRealtimeMode:
    def test_fitness_pipeline_runs_in_realtime(self, fitness_recognizer):
        """The exact pipeline from the benchmarks, synchronized to the wall
        clock at 50x speed: 5 simulated seconds in ~0.1 wall seconds."""
        home = VideoPipe.paper_testbed(seed=2, realtime=True, speed=50.0)
        services = install_fitness_services(home, recognizer=fitness_recognizer)
        app = FitnessApp(home, services)
        pipeline = app.deploy(fitness_pipeline_config(fps=10.0, duration_s=5.0))

        start = wall.monotonic()
        home.run(until=5.5)
        elapsed = wall.monotonic() - start

        # paced: 5.5 sim-seconds at 50x is 0.11 wall-seconds minimum
        assert elapsed >= 0.1
        assert services.sink.count > 20
        fps = pipeline.metrics.throughput_fps(5.5, warmup_s=1.0)
        assert 6.0 < fps < 11.0

    def test_realtime_and_simulated_agree(self, fitness_recognizer):
        """Wall pacing must not change any simulated outcome."""
        results = []
        for realtime in (False, True):
            home = VideoPipe.paper_testbed(seed=3, realtime=realtime,
                                           speed=200.0)
            services = install_fitness_services(home,
                                                recognizer=fitness_recognizer)
            app = FitnessApp(home, services)
            pipeline = app.deploy(
                fitness_pipeline_config(fps=10.0, duration_s=4.0)
            )
            home.run(until=4.5)
            results.append(
                (services.sink.count,
                 pipeline.metrics.counter("frames_completed"),
                 round(pipeline.metrics.total_latency_summary().mean, 9))
            )
        assert results[0] == results[1]
