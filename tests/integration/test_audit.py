"""Integration: the invariant auditor on the fitness pipeline.

The issue's acceptance bar, checked end to end:

1. **Zero perturbation** — an audited run of each Fig. 6 architecture is
   bit-for-bit identical to an unaudited one: same metrics fingerprint and
   same trace export (the auditor is a passive observer, like tracing).
2. **Clean on correct code** — a full run over both architectures ends
   with zero violations at quiesce.
3. **Facade wiring** — ``enable_audit`` is idempotent, ``REPRO_AUDIT``
   auto-enables with ``source == "env"``, ``check_invariants`` demands an
   enabled auditor, and the monitor exposes the audit probe.
"""

import pytest

from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.core import VideoPipe
from repro.errors import ConfigError
from repro.pipeline.config import AuditConfig

DURATION = 8.0
RUN_UNTIL = 9.0


def run(recognizer, audit=False, architecture="videopipe", seed=11,
        trace=False, monitor=False):
    home = VideoPipe.paper_testbed(seed=seed)
    auditor = home.enable_audit() if audit else None
    tracer = home.enable_tracing() if trace else None
    if monitor:
        home.enable_monitoring(period_s=0.5)
    baseline = architecture == "baseline"
    services = install_fitness_services(home, recognizer=recognizer,
                                        baseline_layout=baseline)
    app = FitnessApp(home, services, architecture=architecture)
    pipeline = app.deploy(fitness_pipeline_config(fps=10.0,
                                                  duration_s=DURATION))
    home.run(until=RUN_UNTIL)
    return home, pipeline, auditor, tracer


def fingerprint(pipeline):
    metrics = pipeline.metrics
    return (
        metrics.counter("frames_completed"),
        metrics.counter("frames_entered"),
        metrics.counter("frames_dropped"),
        tuple(metrics.total_latencies),
        tuple(sorted(metrics.stage_means_ms().items())),
    )


class TestZeroPerturbation:
    @pytest.mark.parametrize("architecture", ["videopipe", "baseline"])
    def test_audited_run_is_bit_for_bit_identical(self, fitness_recognizer,
                                                  architecture):
        _, plain, _, _ = run(fitness_recognizer, audit=False,
                             architecture=architecture)
        home, audited, auditor, _ = run(fitness_recognizer, audit=True,
                                        architecture=architecture)
        assert fingerprint(audited) == fingerprint(plain)
        assert auditor.check_quiesce() == [], auditor.report()
        assert home.kernel.pending_events == 0

    @pytest.mark.parametrize("architecture", ["videopipe", "baseline"])
    def test_trace_export_matches_under_audit(self, fitness_recognizer,
                                              architecture):
        _, _, _, t_plain = run(fitness_recognizer, audit=False, trace=True,
                               architecture=architecture)
        _, _, auditor, t_audit = run(fitness_recognizer, audit=True,
                                     trace=True, architecture=architecture)
        assert [(s.name, s.category, s.start, s.end) for s in t_plain.spans] \
            == [(s.name, s.category, s.start, s.end) for s in t_audit.spans]
        assert auditor.check_quiesce() == [], auditor.report()

    def test_audited_runs_are_deterministic(self, fitness_recognizer):
        _, p1, a1, _ = run(fitness_recognizer, audit=True)
        _, p2, a2, _ = run(fitness_recognizer, audit=True)
        assert fingerprint(p1) == fingerprint(p2)
        assert a1.checks_run == a2.checks_run


class TestCleanOnCorrectCode:
    def test_full_run_quiesces_clean(self, fitness_recognizer):
        home, pipeline, auditor, _ = run(fitness_recognizer, audit=True)
        assert pipeline.metrics.counter("frames_completed") > 30
        assert home.check_invariants() == []
        # everything the facade wired got watched
        assert auditor._stores
        assert auditor._transports
        assert auditor._metrics


class TestFacadeWiring:
    def test_enable_audit_is_idempotent(self):
        home = VideoPipe.paper_testbed(seed=11)
        first = home.enable_audit()
        second = home.enable_audit(AuditConfig(max_violations=5))
        assert second is first
        assert first.config.max_violations != 5  # second call is a no-op

    def test_check_invariants_requires_an_auditor(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        home = VideoPipe.paper_testbed(seed=11)
        with pytest.raises(ConfigError, match="enable_audit"):
            home.check_invariants()

    def test_env_var_enables_with_env_source(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        home = VideoPipe(seed=11)
        assert home.auditor is not None
        assert home.auditor.source == "env"

    def test_monitor_exposes_audit_probe(self, fitness_recognizer):
        home, _, auditor, _ = run(fitness_recognizer, audit=True,
                                  monitor=True)
        assert home.monitor.latest("audit", "violations") == 0.0
        assert home.monitor.latest("audit", "checks_run") > 0.0
        assert auditor.checks_run > 0
