"""Unit tests for subject placement and variation."""

import numpy as np
import pytest

from repro.motion import (
    Squat,
    SubjectParams,
    add_keypoint_jitter,
    place_in_image,
    random_subject,
    sample_subject_sequence,
    subject_pose,
)
from repro.motion.skeleton import Pose
from repro.motion.exercises import base_pose


class TestPlacement:
    def test_feet_on_ground_and_centered(self):
        subject = SubjectParams(height_px=300, center_x=320, ground_y=440)
        placed = place_in_image(Pose(base_pose()), subject)
        feet_y = max(placed["left_ankle"][1], placed["right_ankle"][1])
        assert feet_y == pytest.approx(440, abs=1.0)
        hips_x = placed.hip_center()[0]
        assert hips_x == pytest.approx(320, abs=1.0)

    def test_height_maps_to_pixels(self):
        subject = SubjectParams(height_px=300)
        placed = place_in_image(Pose(base_pose()), subject)
        height = placed.keypoints[:, 1].max() - placed.keypoints[:, 1].min()
        assert height == pytest.approx(300, rel=0.02)

    def test_visibility_preserved(self):
        visibility = np.ones(17, dtype=bool)
        visibility[3] = False
        placed = place_in_image(Pose(base_pose(), visibility), SubjectParams())
        assert not placed.visibility[3]


class TestSubjectPose:
    def test_tempo_slows_the_motion(self):
        fast = SubjectParams(tempo=1.0)
        slow = SubjectParams(tempo=2.0)
        model = Squat(period_s=2.0)
        # at t=1 the fast subject is at the bottom; slow is only a quarter in
        fast_hips = subject_pose(model, fast, 1.0).hip_center()[1]
        slow_hips = subject_pose(model, slow, 1.0).hip_center()[1]
        assert fast_hips > slow_hips

    def test_amplitude_shrinks_motion(self):
        model = Squat(period_s=2.0)
        full = SubjectParams(amplitude=1.0)
        half = SubjectParams(amplitude=0.5)
        neutral_y = subject_pose(model, full, 0.0).hip_center()[1]
        full_dip = subject_pose(model, full, 1.0).hip_center()[1] - neutral_y
        half_dip = subject_pose(model, half, 1.0).hip_center()[1] - neutral_y
        assert half_dip == pytest.approx(full_dip * 0.5, rel=0.05)

    def test_phase_offset_shifts_cycle(self):
        model = Squat(period_s=2.0)
        offset = SubjectParams(phase_offset_s=1.0)
        plain = SubjectParams()
        np.testing.assert_allclose(
            subject_pose(model, offset, 0.0).keypoints,
            subject_pose(model, plain, 1.0).keypoints,
            atol=1e-9,
        )

    def test_sequence_length(self):
        seq = sample_subject_sequence(Squat(), SubjectParams(), fps=10, duration_s=2.0)
        assert len(seq) == 20


class TestVariation:
    def test_random_subject_within_frame(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            subject = random_subject(rng, frame_width=640, frame_height=480)
            assert 0 < subject.center_x < 640
            assert 0 < subject.ground_y <= 480
            assert 0 < subject.height_px < 480
            assert subject.tempo > 0

    def test_random_subjects_differ(self):
        rng = np.random.default_rng(0)
        a, b = random_subject(rng), random_subject(rng)
        assert a != b

    def test_jitter_perturbs_but_preserves_structure(self):
        poses = [Pose(base_pose() * 100) for _ in range(3)]
        rng = np.random.default_rng(1)
        noisy = add_keypoint_jitter(poses, sigma_px=2.0, rng=rng)
        assert len(noisy) == 3
        for clean, dirty in zip(poses, noisy):
            delta = np.abs(clean.keypoints - dirty.keypoints)
            assert delta.max() > 0
            assert delta.max() < 15.0  # ~6 sigma

    def test_zero_jitter_changes_nothing(self):
        poses = [Pose(base_pose())]
        noisy = add_keypoint_jitter(poses, 0.0, np.random.default_rng(0))
        np.testing.assert_array_equal(poses[0].keypoints, noisy[0].keypoints)
