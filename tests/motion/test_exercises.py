"""Unit tests for motion models."""

import numpy as np
import pytest

from repro.motion import (
    EXERCISES,
    GESTURES,
    MODEL_BY_NAME,
    Clap,
    Fall,
    JumpingJack,
    Squat,
    Stand,
    Wave,
    make_model,
)
from repro.motion.skeleton import KEYPOINT_INDEX as KP


class TestModelBasics:
    @pytest.mark.parametrize("name", sorted(MODEL_BY_NAME))
    def test_every_model_produces_valid_poses(self, name):
        model = make_model(name)
        for t in np.linspace(0.0, 2 * model.period_s, 9):
            pose = model.pose_at(float(t))
            assert np.isfinite(pose.keypoints).all()

    @pytest.mark.parametrize("name", sorted(MODEL_BY_NAME))
    def test_models_are_deterministic(self, name):
        a = make_model(name).pose_at(0.7).keypoints
        b = make_model(name).pose_at(0.7).keypoints
        np.testing.assert_array_equal(a, b)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            make_model("backflip")

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            Squat(period_s=0)

    def test_periodic_models_wrap(self):
        model = Squat(period_s=2.0)
        np.testing.assert_allclose(
            model.pose_at(0.3).keypoints, model.pose_at(2.3).keypoints, atol=1e-12
        )

    def test_sample_length(self):
        assert len(Squat().sample(fps=10, duration_s=3.0)) == 30

    def test_vocabularies(self):
        assert Squat in EXERCISES and JumpingJack in EXERCISES
        assert Wave in GESTURES and Clap in GESTURES


class TestMotionShapes:
    def test_squat_lowers_hips_at_midphase(self):
        model = Squat(period_s=2.0)
        top = model.pose_at(0.0)
        bottom = model.pose_at(1.0)  # mid-cycle
        assert bottom.hip_center()[1] > top.hip_center()[1] + 0.2  # y is down

    def test_squat_keeps_ankles_planted(self):
        model = Squat(period_s=2.0)
        top = model.pose_at(0.0)
        bottom = model.pose_at(1.0)
        for side in ("left_ankle", "right_ankle"):
            np.testing.assert_allclose(top[side], bottom[side], atol=1e-9)

    def test_jumping_jack_raises_wrists_overhead(self):
        model = JumpingJack(period_s=2.0)
        down = model.pose_at(0.0)
        up = model.pose_at(1.0)
        # wrists above the nose at peak (smaller y = higher)
        assert up["left_wrist"][1] < up["nose"][1]
        assert down["left_wrist"][1] > down["left_shoulder"][1]

    def test_jumping_jack_spreads_ankles(self):
        model = JumpingJack(period_s=2.0)
        down = model.pose_at(0.0)
        up = model.pose_at(1.0)
        spread_down = down["right_ankle"][0] - down["left_ankle"][0]
        spread_up = up["right_ankle"][0] - up["left_ankle"][0]
        assert spread_up > spread_down + 0.3

    def test_wave_moves_only_right_wrist_laterally(self):
        model = Wave(period_s=1.0)
        quarter = model.pose_at(0.25)
        three_quarter = model.pose_at(0.75)
        wrist_travel = abs(quarter["right_wrist"][0] - three_quarter["right_wrist"][0])
        assert wrist_travel > 0.2
        np.testing.assert_allclose(
            quarter["left_wrist"], three_quarter["left_wrist"], atol=1e-9
        )

    def test_wave_wrist_is_raised(self):
        pose = Wave().pose_at(0.0)
        assert pose["right_wrist"][1] < pose["right_shoulder"][1] + 0.05

    def test_clap_brings_wrists_together(self):
        model = Clap(period_s=1.0)
        apart = model.pose_at(0.0)
        together = model.pose_at(0.5)
        gap_apart = apart["right_wrist"][0] - apart["left_wrist"][0]
        gap_together = together["right_wrist"][0] - together["left_wrist"][0]
        assert gap_together < gap_apart * 0.2

    def test_fall_is_aperiodic_and_ends_horizontal(self):
        model = Fall(period_s=0.9)
        assert not model.periodic
        standing = model.pose_at(0.0)
        fallen = model.pose_at(5.0)  # long after the fall completes
        np.testing.assert_allclose(
            fallen.keypoints, model.pose_at(0.9).keypoints, atol=1e-9
        )
        standing_height = np.ptp(standing.keypoints[:, 1])
        fallen_height = np.ptp(fallen.keypoints[:, 1])
        assert fallen_height < standing_height * 0.5

    def test_stand_barely_moves(self):
        model = Stand(period_s=2.0)
        a = model.pose_at(0.0).keypoints
        b = model.pose_at(1.0).keypoints
        assert np.abs(a - b).max() < 0.05

    def test_amplitude_scales_squat_depth(self):
        shallow = Squat(amplitude=0.5).pose_at(1.0).hip_center()[1]
        deep = Squat(amplitude=1.0).pose_at(1.0).hip_center()[1]
        assert deep > shallow
