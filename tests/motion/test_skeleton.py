"""Unit tests for the skeleton model."""

import numpy as np
import pytest

from repro.motion import (
    KEYPOINT_INDEX,
    KEYPOINT_NAMES,
    NUM_KEYPOINTS,
    SKELETON_EDGES,
    Pose,
    base_pose,
    pose_sequence_array,
)


class TestConventions:
    def test_seventeen_keypoints(self):
        assert NUM_KEYPOINTS == 17
        assert len(KEYPOINT_NAMES) == 17

    def test_index_matches_names(self):
        for i, name in enumerate(KEYPOINT_NAMES):
            assert KEYPOINT_INDEX[name] == i

    def test_edges_reference_valid_keypoints(self):
        for a, b in SKELETON_EDGES:
            assert 0 <= a < NUM_KEYPOINTS
            assert 0 <= b < NUM_KEYPOINTS
            assert a != b


class TestPose:
    def test_shape_validated(self):
        with pytest.raises(ValueError):
            Pose(np.zeros((5, 2)))
        with pytest.raises(ValueError):
            Pose(np.zeros((17, 3)))

    def test_visibility_validated(self):
        with pytest.raises(ValueError):
            Pose(np.zeros((17, 2)), np.ones(5, dtype=bool))

    def test_lookup_by_name(self):
        pose = Pose(base_pose())
        np.testing.assert_allclose(pose["nose"], [0.0, -0.75])

    def test_hip_center_of_base_pose_is_origin(self):
        pose = Pose(base_pose())
        np.testing.assert_allclose(pose.hip_center(), [0.0, 0.0], atol=1e-12)

    def test_torso_scale_positive(self):
        assert Pose(base_pose()).torso_scale() == pytest.approx(0.5, abs=0.05)

    def test_normalized_centers_hips_and_scales_torso(self):
        shifted = Pose(base_pose() * 37.0 + np.array([100.0, 200.0]))
        normalized = shifted.normalized()
        np.testing.assert_allclose(normalized.hip_center(), [0.0, 0.0], atol=1e-9)
        assert normalized.torso_scale() == pytest.approx(1.0)

    def test_normalization_is_translation_and_scale_invariant(self):
        base = Pose(base_pose()).normalized()
        transformed = Pose(base_pose() * 12.0 + np.array([-50.0, 3.0])).normalized()
        np.testing.assert_allclose(base.keypoints, transformed.keypoints, atol=1e-9)

    def test_degenerate_scale_guard(self):
        pose = Pose(np.zeros((17, 2)))  # all keypoints coincide
        normalized = pose.normalized()  # must not divide by zero
        assert np.isfinite(normalized.keypoints).all()

    def test_bounding_box_contains_visible_keypoints(self):
        pose = Pose(base_pose())
        x0, y0, x1, y1 = pose.bounding_box(margin=0.0)
        assert x0 == pytest.approx(pose.keypoints[:, 0].min())
        assert y1 == pytest.approx(pose.keypoints[:, 1].max())

    def test_bounding_box_ignores_invisible_keypoints(self):
        keypoints = base_pose()
        keypoints[0] = (1000.0, 1000.0)  # wild nose position
        visibility = np.ones(17, dtype=bool)
        visibility[0] = False
        pose = Pose(keypoints, visibility)
        _, _, x1, y1 = pose.bounding_box(margin=0.0)
        assert x1 < 1000 and y1 < 1000

    def test_bounding_box_requires_visible_keypoints(self):
        pose = Pose(base_pose(), np.zeros(17, dtype=bool))
        with pytest.raises(ValueError):
            pose.bounding_box()

    def test_flatten_shape_and_copy(self):
        pose = Pose(base_pose())
        flat = pose.flatten()
        assert flat.shape == (34,)
        flat[0] = 999.0
        assert pose.keypoints[0, 0] != 999.0

    def test_copy_is_independent(self):
        pose = Pose(base_pose())
        dup = pose.copy()
        dup.keypoints[0, 0] = 999.0
        assert pose.keypoints[0, 0] != 999.0

    def test_sequence_array_shape(self):
        poses = [Pose(base_pose()) for _ in range(4)]
        assert pose_sequence_array(poses).shape == (4, 17, 2)
