"""Shared trained models for monitor tests."""

import pytest

from repro.apps import train_activity_recognizer


@pytest.fixture(scope="session")
def fitness_recognizer():
    return train_activity_recognizer(seed=1, train_subjects=4)
