"""Unit tests for the monitoring component."""

import pytest

from repro.monitor import AlarmRule, Monitor
from repro.sim import Kernel


def counting_probe(values):
    """A probe that replays a list of {metric: value} dicts."""
    state = {"i": 0}

    def read():
        i = min(state["i"], len(values) - 1)
        state["i"] += 1
        return values[i]

    return read


@pytest.fixture
def kernel():
    return Kernel()


class TestMonitorBasics:
    def test_period_validated(self, kernel):
        with pytest.raises(ValueError):
            Monitor(kernel, period_s=0)

    def test_duplicate_probe_rejected(self, kernel):
        monitor = Monitor(kernel)
        monitor.add_probe("p", lambda: {})
        with pytest.raises(ValueError):
            monitor.add_probe("p", lambda: {})

    def test_periodic_sampling(self, kernel):
        monitor = Monitor(kernel, period_s=0.5)
        monitor.add_probe("p", counting_probe([{"x": 1.0}, {"x": 2.0}, {"x": 3.0}]))
        monitor.start()
        kernel.run(until=1.6)
        series = monitor.series("p", "x")
        assert [v for _, v in series] == [1.0, 2.0, 3.0]
        assert [t for t, _ in series] == [0.5, 1.0, 1.5]

    def test_stop_halts_sampling(self, kernel):
        monitor = Monitor(kernel, period_s=0.5)
        monitor.add_probe("p", counting_probe([{"x": 1.0}]))
        monitor.start()
        kernel.run(until=1.1)
        monitor.stop()
        kernel.run(until=5.0)
        assert len(monitor.samples) == 2

    def test_latest(self, kernel):
        monitor = Monitor(kernel, period_s=0.5)
        monitor.add_probe("p", counting_probe([{"x": 1.0}, {"x": 9.0}]))
        monitor.start()
        kernel.run(until=1.1)
        assert monitor.latest("p", "x") == 9.0
        assert monitor.latest("p", "ghost") is None

    def test_sample_cap(self, kernel):
        monitor = Monitor(kernel, period_s=0.1, keep_samples=5)
        monitor.add_probe("p", lambda: {"x": 1.0})
        monitor.start()
        kernel.run(until=3.0)
        assert len(monitor.samples) == 5

    def test_rate_from_counter(self, kernel):
        monitor = Monitor(kernel, period_s=0.5)
        # counter grows by 5 per sample (=10/s)
        monitor.add_probe("p", counting_probe(
            [{"done": float(5 * i)} for i in range(1, 20)]
        ))
        monitor.start()
        kernel.run(until=4.0)
        assert monitor.rate("p", "done", window_s=2.0) == pytest.approx(10.0)

    def test_rate_needs_two_points(self, kernel):
        monitor = Monitor(kernel, period_s=0.5)
        monitor.add_probe("p", lambda: {"x": 1.0})
        assert monitor.rate("p", "x", 1.0) is None
        monitor.sample_once()
        assert monitor.rate("p", "x", 1.0) is None


class TestAlarms:
    def test_threshold_alarm_fires_once_per_streak(self, kernel):
        monitor = Monitor(kernel, period_s=0.5)
        monitor.add_probe("p", counting_probe(
            [{"q": 0.0}, {"q": 5.0}, {"q": 6.0}, {"q": 7.0}, {"q": 0.0},
             {"q": 8.0}, {"q": 9.0}]
        ))
        monitor.add_rule(AlarmRule("overload", "p", "q",
                                   lambda v: v > 4, for_samples=2))
        monitor.start()
        kernel.run(until=3.6)
        alarms = monitor.alarms_for("overload")
        assert len(alarms) == 2  # one per sustained streak
        assert alarms[0].value == 6.0  # the sample completing the streak

    def test_for_samples_validated(self):
        with pytest.raises(ValueError):
            AlarmRule("r", "p", "m", lambda v: True, for_samples=0)

    def test_rule_scoped_to_probe_and_metric(self, kernel):
        monitor = Monitor(kernel, period_s=0.5)
        monitor.add_probe("a", lambda: {"x": 100.0})
        monitor.add_probe("b", lambda: {"x": 0.0, "y": 100.0})
        monitor.add_rule(AlarmRule("high-x-on-b", "b", "x", lambda v: v > 50))
        monitor.start()
        kernel.run(until=2.0)
        assert monitor.alarms == []  # a/x and b/y never match the rule


class TestHomeIntegration:
    def test_monitor_watches_devices_services_pipelines(self, ):
        from repro.core import VideoPipe
        from repro.services import FunctionService

        home = VideoPipe.paper_testbed(seed=0)
        home.deploy_service(FunctionService("echo", lambda p, c: p,
                                            default_port=7500), "desktop")
        monitor = home.enable_monitoring(period_s=0.5)
        home.add_device("laptop")  # added after enabling: still probed
        assert "device/phone" in monitor.probe_names()
        assert "device/laptop" in monitor.probe_names()
        assert "service/echo@desktop" in monitor.probe_names()
        home.run_for(2.0)
        assert monitor.latest("device/phone", "cpu_utilization") is not None

    def test_live_fps_via_pipeline_probe(self, ):
        from repro.apps import (FitnessApp, fitness_pipeline_config,
                                install_fitness_services,
                                train_activity_recognizer)
        from repro.core import VideoPipe

        home = VideoPipe.paper_testbed(seed=1)
        services = install_fitness_services(
            home, recognizer=train_activity_recognizer(seed=1, train_subjects=2)
        )
        home.enable_monitoring(period_s=0.5)
        app = FitnessApp(home, services)
        app.deploy(fitness_pipeline_config(fps=10.0, duration_s=10.0))
        home.run(until=11.0)
        monitor = home.monitor
        live_fps = monitor.rate("pipeline/fitness", "frames_completed",
                                window_s=5.0)
        assert live_fps is not None
        assert 6.0 < live_fps < 11.0

    def test_enable_is_idempotent(self):
        from repro.core import VideoPipe

        home = VideoPipe.paper_testbed(seed=0)
        assert home.enable_monitoring() is home.enable_monitoring()
