"""Unit tests for heartbeat-based failure detection."""

import pytest

from repro.core import VideoPipe
from repro.monitor import HEARTBEAT_PORT, FailureDetector, failure_probe


@pytest.fixture
def home():
    return VideoPipe.paper_testbed(seed=2)


def enable(home, **kwargs):
    kwargs.setdefault("home_device", "tv")
    kwargs.setdefault("period_s", 0.25)
    kwargs.setdefault("miss_threshold", 2)
    return home.enable_failure_detection(**kwargs)


class TestDetection:
    def test_no_false_positives_when_healthy(self, home):
        detector = enable(home)
        home.run(until=10.0)
        assert detector.detections == 0
        assert detector.dead_devices() == []
        assert detector.probes_sent > 50
        assert detector.probes_failed == 0

    def test_watches_every_device_except_home(self, home):
        detector = enable(home)
        assert detector.watched() == ["desktop", "phone"]

    def test_detects_crash_within_threshold_periods(self, home):
        detector = enable(home)
        home.kernel.schedule(3.0, home.crash_device, "desktop")
        home.run(until=10.0)
        assert detector.is_dead("desktop")
        assert not detector.is_dead("phone")
        assert detector.detections == 1
        down = [e for e in detector.events if e.kind == "down"]
        # 2 missed probes at 0.25 s period + 0.25 s probe timeout + slack
        assert len(down) == 1
        assert 3.0 < down[0].at < 4.5

    def test_detects_partition_like_crash(self, home):
        """A partitioned device misses heartbeats exactly like a dead one —
        the detector cannot (and need not) tell the difference."""
        detector = enable(home)
        home.kernel.schedule(3.0, home.topology.partition, "phone")
        home.run(until=6.0)
        assert detector.is_dead("phone")

    def test_late_devices_are_watched_too(self, home):
        detector = enable(home)
        home.add_device("laptop")
        assert "laptop" in detector.watched()
        home.kernel.schedule(2.0, home.crash_device, "laptop")
        home.run(until=5.0)
        assert detector.is_dead("laptop")


class TestRecovery:
    def test_recovery_records_mttr(self, home):
        detector = enable(home)
        home.kernel.schedule(3.0, home.crash_device, "desktop")
        home.kernel.schedule(7.0, home.restart_device, "desktop")
        home.run(until=12.0)
        assert not detector.is_dead("desktop")
        assert detector.recoveries == 1
        assert len(detector.mttr_samples) == 1
        # the outage lasted ~4 s as the detector saw it
        assert 3.5 < detector.mttr_samples[0] < 5.5
        up = [e for e in detector.events if e.kind == "up"]
        assert up and up[0].mttr_s == detector.mttr_samples[0]

    def test_hooks_fire_on_transitions(self, home):
        detector = enable(home)
        transitions = []
        detector.on_down.append(lambda d: transitions.append(("down", d)))
        detector.on_up.append(lambda d: transitions.append(("up", d)))
        home.kernel.schedule(2.0, home.crash_device, "phone")
        home.kernel.schedule(5.0, home.restart_device, "phone")
        home.run(until=8.0)
        assert transitions == [("down", "phone"), ("up", "phone")]

    def test_mttr_stats(self, home):
        detector = enable(home)
        detector.mttr_samples.extend([2.0, 4.0])
        assert detector.mttr_mean() == 3.0
        assert detector.mttr_max() == 4.0


class TestMonitorIntegration:
    def test_failure_probe_lands_in_monitor_series(self, home):
        home.enable_monitoring(period_s=0.5)
        detector = enable(home)
        home.kernel.schedule(2.0, home.crash_device, "desktop")
        home.run(until=6.0)
        latest = home.monitor.latest("failures", "dead_devices")
        assert latest == 1.0
        assert home.monitor.latest("failures", "detections") == 1.0

    def test_enable_order_does_not_matter(self, home):
        """Detection first, monitoring second: the probe still registers."""
        detector = enable(home)
        home.enable_monitoring(period_s=0.5)
        home.run(until=2.0)
        assert home.monitor.latest("failures", "watched") == 2.0
