"""Unit and integration tests for the self-management orchestrator."""

import pytest

from repro.monitor import (
    Monitor,
    Orchestrator,
    Remedy,
    migrate_module_remedy,
    scale_service_remedy,
)
from repro.sim import Kernel


class TestRemedyMechanics:
    def test_period_validated(self):
        kernel = Kernel()
        with pytest.raises(ValueError):
            Orchestrator(kernel, Monitor(kernel), period_s=0)

    def test_remedy_fires_when_condition_holds(self):
        kernel = Kernel()
        monitor = Monitor(kernel)
        orchestrator = Orchestrator(kernel, monitor, period_s=1.0)
        fired = []
        orchestrator.add_remedy(Remedy(
            name="r", condition=lambda m: "always", action=lambda: fired.append(1),
            cooldown_s=10.0,
        ))
        orchestrator.start()
        kernel.run(until=3.5)
        assert fired == [1]  # cooldown suppressed re-fires
        assert orchestrator.actions[0].remedy == "r"
        assert orchestrator.actions[0].description == "always"

    def test_cooldown_allows_refire_later(self):
        kernel = Kernel()
        monitor = Monitor(kernel)
        orchestrator = Orchestrator(kernel, monitor, period_s=1.0)
        fired = []
        orchestrator.add_remedy(Remedy(
            name="r", condition=lambda m: "x", action=lambda: fired.append(1),
            cooldown_s=2.0,
        ))
        orchestrator.start()
        kernel.run(until=6.5)
        assert len(fired) == 3  # t=1, 3, 5

    def test_max_firings_cap(self):
        kernel = Kernel()
        monitor = Monitor(kernel)
        orchestrator = Orchestrator(kernel, monitor, period_s=1.0)
        fired = []
        orchestrator.add_remedy(Remedy(
            name="r", condition=lambda m: "x", action=lambda: fired.append(1),
            cooldown_s=0.5, max_firings=2,
        ))
        orchestrator.start()
        kernel.run(until=10.0)
        assert len(fired) == 2

    def test_condition_none_means_no_action(self):
        kernel = Kernel()
        monitor = Monitor(kernel)
        orchestrator = Orchestrator(kernel, monitor, period_s=1.0)
        orchestrator.add_remedy(Remedy(
            name="r", condition=lambda m: None, action=lambda: 1 / 0,
        ))
        orchestrator.start()
        kernel.run(until=5.0)
        assert orchestrator.actions == []

    def test_stop(self):
        kernel = Kernel()
        monitor = Monitor(kernel)
        orchestrator = Orchestrator(kernel, monitor, period_s=1.0)
        fired = []
        orchestrator.add_remedy(Remedy(
            name="r", condition=lambda m: "x", action=lambda: fired.append(1),
            cooldown_s=0.1,
        ))
        orchestrator.start()
        kernel.run(until=2.5)
        orchestrator.stop()
        kernel.run(until=10.0)
        assert len(fired) == 2


class TestReadyMadeRemedies:
    def test_scale_remedy_grows_saturated_service(self, fitness_recognizer):
        from repro.apps import (FitnessApp, fitness_pipeline_config,
                                gesture_pipeline_config,
                                install_fitness_services,
                                install_gesture_services,
                                train_gesture_recognizer)
        from repro.core import VideoPipe
        from repro.devices import DeviceSpec

        home = VideoPipe.paper_testbed(seed=15)
        home.add_device(DeviceSpec(name="camera", kind="phone",
                                   cpu_factor=2.5, cores=8))
        fitness = install_fitness_services(home, recognizer=fitness_recognizer)
        install_gesture_services(
            home, recognizer=train_gesture_recognizer(seed=1, train_subjects=2)
        )
        monitor = home.enable_monitoring(period_s=0.5)
        pose_host = home.registry.any_host("pose_detector")
        orchestrator = Orchestrator(home.kernel, monitor, period_s=0.5)
        orchestrator.add_remedy(scale_service_remedy(
            pose_host, "service/pose_detector@desktop",
            utilization_threshold=0.85, max_replicas=2,
        ))
        orchestrator.start()

        app = FitnessApp(home, fitness)
        app.deploy(fitness_pipeline_config(fps=30.0, duration_s=15.0))
        home.deploy_pipeline(gesture_pipeline_config(fps=30.0, duration_s=15.0))
        home.run(until=16.0)

        assert pose_host.replicas == 2
        assert orchestrator.actions
        assert orchestrator.actions[0].remedy == "scale:pose_detector"

    def test_migrate_remedy_moves_module_off_hot_device(self,
                                                        fitness_recognizer):
        from repro.apps import (FitnessApp, fitness_pipeline_config,
                                install_fitness_services)
        from repro.core import VideoPipe
        from repro.services import FunctionService

        home = VideoPipe.paper_testbed(seed=16)
        fitness = install_fitness_services(home, recognizer=fitness_recognizer)
        monitor = home.enable_monitoring(period_s=0.5)
        app = FitnessApp(home, fitness)
        pipeline = app.deploy(fitness_pipeline_config(fps=10.0, duration_s=15.0))

        # burn the TV's CPU so its utilization stays high
        burner = FunctionService("tv_burner", lambda p, c: p,
                                 reference_cost_s=0.050, default_port=7900)
        burner_host = home.deploy_service(burner, "tv", native=True,
                                          replicas=8)

        def burn():
            while home.now < 15.0:
                for _ in range(8):
                    burner_host.call_local({})
                yield 0.05

        home.kernel.process(burn())

        orchestrator = Orchestrator(home.kernel, monitor, period_s=0.5)
        orchestrator.add_remedy(migrate_module_remedy(
            home, pipeline, "rep_counter_module", "desktop",
            "device/tv", cpu_threshold=0.7,
        ))
        orchestrator.start()
        home.run(until=16.0)

        assert pipeline.device_of("rep_counter_module") == "desktop"
        assert len(orchestrator.actions) == 1  # max_firings=1
        assert pipeline.metrics.counter("migrations") == 1
        assert pipeline.module("rep_counter_module").errors == []
