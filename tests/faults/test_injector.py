"""Unit tests for the chaos injector against a real VideoPipe home."""

import pytest

from repro.core import VideoPipe
from repro.errors import FaultError
from repro.faults import ChaosInjector, FaultPlan
from repro.net import Address, Message
from repro.services import FunctionService


@pytest.fixture
def home():
    return VideoPipe.paper_testbed(seed=3)


def send(home, dst_device, port=7700):
    return home.transport.send(Message(
        kind="data", dst=Address(dst_device, port),
        src=Address("phone", 1000)))


class TestArming:
    def test_enable_fault_injection_arms_once(self, home):
        injector = home.enable_fault_injection(
            FaultPlan().device_crash(1.0, "desktop"))
        assert injector.armed
        with pytest.raises(Exception):
            home.enable_fault_injection(FaultPlan())

    def test_rearming_raises(self, home):
        injector = ChaosInjector(home, FaultPlan())
        injector.arm()
        with pytest.raises(FaultError):
            injector.arm()

    def test_unknown_device_rejected_at_arm_time(self, home):
        injector = ChaosInjector(
            home, FaultPlan().device_crash(1.0, "toaster"))
        with pytest.raises(FaultError):
            injector.arm()

    def test_unknown_service_rejected_at_arm_time(self, home):
        injector = ChaosInjector(
            home, FaultPlan().service_crash(1.0, "pose_detector", "desktop"))
        with pytest.raises(FaultError):
            injector.arm()

    def test_past_event_rejected(self, home):
        home.run(until=5.0)
        injector = ChaosInjector(
            home, FaultPlan().device_crash(1.0, "desktop"))
        with pytest.raises(FaultError):
            injector.arm()


class TestDeviceFaults:
    def test_crash_flips_device_and_network_state(self, home):
        home.enable_fault_injection(
            FaultPlan().device_crash(1.0, "desktop", down_for=2.0))
        home.run(until=1.5)
        assert not home.device("desktop").up
        assert not home.topology.device_is_up("desktop")
        done = send(home, "desktop")
        home.run(until=2.0)
        assert done.failed
        home.run(until=3.5)
        assert home.device("desktop").up
        assert home.topology.device_is_up("desktop")

    def test_crash_drops_hosted_service(self, home):
        host = home.deploy_service(
            FunctionService("echo", lambda p, c: p, reference_cost_s=0.5),
            "desktop")
        result = host.call_local({})
        home.enable_fault_injection(FaultPlan().device_crash(0.1, "desktop"))
        home.run(until=1.0)
        assert result.failed
        assert host.crashes == 1


class TestLinkFaults:
    def test_partition_and_heal(self, home):
        home.enable_fault_injection(
            FaultPlan().partition(1.0, "tv", heal_after=2.0))
        home.run(until=1.5)
        assert home.topology.is_partitioned("tv")
        assert home.device("tv").up  # the device itself stays powered
        home.run(until=3.5)
        assert not home.topology.is_partitioned("tv")

    def test_latency_spike_raises_then_restores(self, home):
        links = home.topology.incident_links("phone")
        assert links
        before = [link.extra_latency_s for link in links]
        home.enable_fault_injection(
            FaultPlan().latency_spike(1.0, "phone", extra_latency_s=0.25,
                                      duration_s=2.0))
        home.run(until=1.5)
        assert all(link.extra_latency_s == pytest.approx(b + 0.25)
                   for link, b in zip(links, before))
        home.run(until=3.5)
        assert [link.extra_latency_s for link in links] == before


class TestServiceFaults:
    def test_service_crash_hits_one_host_only(self, home):
        home.add_device("laptop")
        echo = FunctionService("echo", lambda p, c: p, reference_cost_s=0.01)
        primary = home.deploy_service(echo, "desktop")
        standby = home.deploy_service(
            FunctionService("echo", lambda p, c: p, reference_cost_s=0.01),
            "laptop")
        home.enable_fault_injection(
            FaultPlan().service_crash(1.0, "echo", "desktop", down_for=2.0))
        home.run(until=1.5)
        assert not primary.up
        assert standby.up
        assert home.device("desktop").up  # process fault, not power fault
        home.run(until=3.5)
        assert primary.up


class TestTrace:
    def test_trace_records_fired_events_in_order(self, home):
        home.enable_fault_injection(
            FaultPlan()
            .partition(2.0, "tv", heal_after=1.0)
            .device_crash(1.0, "desktop", down_for=3.0))
        home.run(until=5.0)
        injector = home.injector
        assert injector.faults_injected == 4
        assert [(t, k, target) for t, k, target in injector.trace] == [
            (1.0, "device_crash", "desktop"),
            (2.0, "link_partition", "tv"),
            (3.0, "link_heal", "tv"),
            (4.0, "device_restart", "desktop"),
        ]
