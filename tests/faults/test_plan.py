"""Unit tests for the declarative fault timeline."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    DEVICE_CRASH,
    DEVICE_RESTART,
    LATENCY_SPIKE,
    LINK_HEAL,
    LINK_PARTITION,
    SERVICE_CRASH,
    SERVICE_RESTART,
    FaultEvent,
    FaultPlan,
)


class TestFaultEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(FaultError):
            FaultEvent(-1.0, DEVICE_CRASH, "desktop")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            FaultEvent(1.0, "meteor_strike", "desktop")

    def test_empty_target_rejected(self):
        with pytest.raises(FaultError):
            FaultEvent(1.0, DEVICE_CRASH, "")

    def test_service_kind_needs_at_format(self):
        with pytest.raises(FaultError):
            FaultEvent(1.0, SERVICE_CRASH, "pose_detector")
        FaultEvent(1.0, SERVICE_CRASH, "pose_detector@desktop")  # fine

    def test_latency_spike_needs_positive_extra(self):
        with pytest.raises(FaultError):
            FaultEvent(1.0, LATENCY_SPIKE, "phone")
        with pytest.raises(FaultError):
            FaultEvent(1.0, LATENCY_SPIKE, "phone", {"extra_latency_s": -0.1})
        FaultEvent(1.0, LATENCY_SPIKE, "phone", {"extra_latency_s": 0.1})


class TestBuilders:
    def test_device_crash_with_down_for_appends_restart(self):
        plan = FaultPlan().device_crash(4.0, "desktop", down_for=8.0)
        kinds = [(e.at, e.kind) for e in plan]
        assert kinds == [(4.0, DEVICE_CRASH), (12.0, DEVICE_RESTART)]

    def test_partition_with_heal_after(self):
        plan = FaultPlan().partition(3.0, "phone", heal_after=2.0)
        kinds = [(e.at, e.kind) for e in plan]
        assert kinds == [(3.0, LINK_PARTITION), (5.0, LINK_HEAL)]

    def test_flap_expands_to_cycles(self):
        plan = FaultPlan().flap(1.0, "tv", count=3, down_s=0.5, up_s=1.5)
        events = list(plan)
        assert len(events) == 6
        assert [e.at for e in events if e.kind == LINK_PARTITION] == [
            1.0, 3.0, 5.0]
        assert [e.at for e in events if e.kind == LINK_HEAL] == [
            1.5, 3.5, 5.5]

    def test_service_crash_targets_one_replica(self):
        plan = FaultPlan().service_crash(3.0, "pose_detector", "desktop",
                                         down_for=1.0)
        events = list(plan)
        assert events[0].target == "pose_detector@desktop"
        assert events[1].kind == SERVICE_RESTART

    def test_latency_spike_with_duration_restores(self):
        plan = FaultPlan().latency_spike(2.0, "phone", extra_latency_s=0.2,
                                         duration_s=3.0)
        spike, restore = list(plan)
        assert spike.params["extra_latency_s"] == 0.2
        assert restore.at == 5.0
        assert restore.params["extra_latency_s"] == -0.2

    def test_nonpositive_durations_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan().device_crash(1.0, "desktop", down_for=0.0)
        with pytest.raises(FaultError):
            FaultPlan().partition(1.0, "phone", heal_after=-1.0)
        with pytest.raises(FaultError):
            FaultPlan().flap(1.0, "tv", count=0, down_s=1.0, up_s=1.0)


class TestOrdering:
    def test_events_sorted_by_time(self):
        plan = (FaultPlan()
                .partition(6.0, "tv")
                .device_crash(2.0, "desktop")
                .heal(4.0, "tv"))
        assert [e.at for e in plan.events()] == [2.0, 4.0, 6.0]

    def test_ties_keep_insertion_order(self):
        plan = (FaultPlan()
                .device_crash(5.0, "a_first")
                .device_crash(5.0, "b_second")
                .device_crash(5.0, "c_third"))
        # intentionally inserted in non-alphabetical-breaking order
        assert [e.target for e in plan.events()] == [
            "a_first", "b_second", "c_third"]

    def test_targets_are_distinct_and_sorted(self):
        plan = (FaultPlan()
                .partition(1.0, "tv", heal_after=1.0)
                .device_crash(2.0, "desktop"))
        assert plan.targets() == ["desktop", "tv"]


class TestSerialization:
    def test_round_trip(self):
        plan = (FaultPlan()
                .device_crash(4.0, "desktop", down_for=8.0)
                .latency_spike(2.0, "phone", extra_latency_s=0.1,
                               duration_s=1.0)
                .service_crash(3.0, "pose_detector", "desktop"))
        restored = FaultPlan.from_dict(plan.as_dict())
        assert restored.as_dict() == plan.as_dict()
        assert len(restored) == len(plan)

    def test_from_dict_validates(self):
        with pytest.raises(FaultError):
            FaultPlan.from_dict({"events": [
                {"at": 1.0, "kind": "nope", "target": "x"}]})
