"""The README's code examples must keep working — users copy them."""

import re
from pathlib import Path

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_readme_exists_with_structure(self):
        text = README.read_text()
        for heading in ("## Install", "## Quickstart", "## Tests and benchmarks",
                        "## Architecture"):
            assert heading in text

    def test_quickstart_snippet_executes(self, capsys):
        blocks = python_blocks(README.read_text())
        assert blocks, "README lost its quickstart snippet"
        exec(compile(blocks[0], "<README quickstart>", "exec"), {})
        out = capsys.readouterr().out
        assert "fps" in out

    def test_headline_table_matches_experiments_doc(self):
        """README's headline table and EXPERIMENTS.md E2 must agree."""
        readme = README.read_text()
        experiments = (README.parent / "EXPERIMENTS.md").read_text()
        for row in ("| 20 | 11.00 |", "| 60 | 11.03 |"):
            assert row in readme
            assert row in experiments


class TestApiDocs:
    def test_api_reference_is_current(self):
        """docs/API.md must match the live __all__ exports — regenerate with
        tools/gen_api_docs.py after changing a package's public surface."""
        import importlib

        doc = (README.parent / "docs" / "API.md").read_text()
        for package in ("repro", "repro.sim", "repro.services",
                        "repro.pipeline", "repro.monitor", "repro.apps"):
            module = importlib.import_module(package)
            assert f"## `{package}`" in doc
            for name in getattr(module, "__all__", []):
                assert f"| `{name}` |" in doc, (package, name)
