"""Unit and property tests for the kNN classifier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vision import KNNClassifier


def two_blobs(n=20, separation=10.0, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(0.0, 1.0, (n, 3))
    b = rng.normal(separation, 1.0, (n, 3))
    features = np.vstack([a, b])
    labels = ["a"] * n + ["b"] * n
    return features, labels


class TestValidation:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            KNNClassifier(k=0)

    def test_fit_validates_shapes(self):
        clf = KNNClassifier()
        with pytest.raises(ValueError):
            clf.fit(np.zeros((3,)), ["a", "b", "c"])
        with pytest.raises(ValueError):
            clf.fit(np.zeros((3, 2)), ["a"])
        with pytest.raises(ValueError):
            clf.fit(np.zeros((0, 2)), [])

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ValueError):
            KNNClassifier().predict(np.zeros(3))


class TestClassification:
    def test_separable_blobs_classified_perfectly(self):
        features, labels = two_blobs()
        clf = KNNClassifier(k=3).fit(features, labels)
        assert clf.predict(np.zeros(3)) == "a"
        assert clf.predict(np.full(3, 10.0)) == "b"
        assert clf.score(features, labels) == 1.0

    def test_k_larger_than_dataset_uses_all_points(self):
        features = np.array([[0.0], [1.0], [2.0]])
        clf = KNNClassifier(k=50).fit(features, ["a", "a", "b"])
        assert clf.predict(np.array([10.0])) == "a"  # majority of all 3

    def test_k1_is_nearest_neighbour(self):
        features = np.array([[0.0], [10.0]])
        clf = KNNClassifier(k=1).fit(features, ["a", "b"])
        assert clf.predict(np.array([4.0])) == "a"
        assert clf.predict(np.array([6.0])) == "b"

    def test_tie_goes_to_nearer_class(self):
        features = np.array([[0.0], [2.0]])
        clf = KNNClassifier(k=2).fit(features, ["a", "b"])
        assert clf.predict(np.array([0.5])) == "a"
        assert clf.predict(np.array([1.5])) == "b"

    def test_confidence_is_vote_fraction(self):
        features = np.array([[0.0], [0.1], [5.0]])
        clf = KNNClassifier(k=3).fit(features, ["a", "a", "b"])
        label, confidence = clf.predict_with_confidence(np.array([0.0]))
        assert label == "a"
        assert confidence == pytest.approx(2 / 3)

    def test_classes_sorted_unique(self):
        features, labels = two_blobs(n=5)
        clf = KNNClassifier().fit(features, labels)
        assert clf.classes == ("a", "b")

    def test_predict_batch(self):
        features, labels = two_blobs(n=10)
        clf = KNNClassifier(k=3).fit(features, labels)
        queries = np.array([[0.0, 0.0, 0.0], [10.0, 10.0, 10.0]])
        assert clf.predict_batch(queries) == ["a", "b"]


@given(
    seed=st.integers(0, 1000),
    k=st.integers(1, 7),
)
@settings(max_examples=30)
def test_property_training_points_classified_as_own_label_when_k1(seed, k):
    """With k=1, every training point is its own nearest neighbour."""
    features, labels = two_blobs(n=8, separation=6.0, seed=seed)
    clf = KNNClassifier(k=1).fit(features, labels)
    assert clf.score(features, labels) == 1.0


@given(shift=st.floats(min_value=-100, max_value=100))
@settings(max_examples=30)
def test_property_translation_invariance(shift):
    """Shifting all features and queries together never changes labels."""
    features, labels = two_blobs(n=10)
    query = np.array([1.0, 2.0, 3.0])
    clf_a = KNNClassifier(k=3).fit(features, labels)
    clf_b = KNNClassifier(k=3).fit(features + shift, labels)
    assert clf_a.predict(query) == clf_b.predict(query + shift)
