"""Unit tests for the pose estimator."""

import numpy as np
import pytest

from repro.frames import SyntheticCamera, VideoFrame
from repro.motion import Squat
from repro.vision import PoseEstimator, PoseNoiseModel


def annotated_frame(t=0.3):
    return SyntheticCamera("phone", Squat()).capture(1, t)


def rendered_frame(t=0.3):
    camera = SyntheticCamera("phone", Squat(), render=True,
                             rng=np.random.default_rng(0))
    return camera.capture(1, t)


class TestEstimation:
    def test_detects_subject_in_annotated_frame(self):
        estimator = PoseEstimator(rng=np.random.default_rng(1))
        result = estimator.estimate(annotated_frame())
        assert result.detected
        assert result.bbox is not None
        assert result.pose is not None
        assert 0.0 <= result.score <= 1.0

    def test_keypoints_near_truth(self):
        frame = annotated_frame()
        estimator = PoseEstimator(
            PoseNoiseModel(sigma_frac=0.005, dropout_prob=0.0, miss_prob=0.0),
            rng=np.random.default_rng(1),
        )
        pose = estimator.estimate(frame).require_pose()
        error = np.linalg.norm(pose.keypoints - frame.truth.keypoints, axis=1)
        assert error.mean() < 6.0  # a few pixels on a ~330 px subject

    def test_empty_scene_is_a_miss(self):
        frame = VideoFrame(frame_id=1, source="cam", capture_time=0.0)
        estimator = PoseEstimator(rng=np.random.default_rng(0))
        result = estimator.estimate(frame)
        assert not result.detected
        with pytest.raises(ValueError):
            result.require_pose()

    def test_miss_probability_respected(self):
        estimator = PoseEstimator(
            PoseNoiseModel(miss_prob=1.0), rng=np.random.default_rng(0)
        )
        assert not estimator.estimate(annotated_frame()).detected
        assert estimator.misses == 1

    def test_dropout_marks_keypoints_invisible(self):
        estimator = PoseEstimator(
            PoseNoiseModel(dropout_prob=0.5, miss_prob=0.0),
            rng=np.random.default_rng(2),
        )
        pose = estimator.estimate(annotated_frame()).require_pose()
        assert not pose.visibility.all()
        assert pose.visibility.any()

    def test_rendered_frame_bbox_comes_from_pixels(self):
        frame = rendered_frame()
        estimator = PoseEstimator(
            PoseNoiseModel(miss_prob=0.0), rng=np.random.default_rng(1)
        )
        result = estimator.estimate(frame)
        assert result.detected
        x0, y0, x1, y1 = frame.truth.bounding_box(margin=0.0)
        # pixel-derived box should overlap the truth box substantially
        assert result.bbox.x0 < x0 + 30
        assert result.bbox.x1 > x1 - 30
        assert result.bbox.y0 < y0 + 30
        assert result.bbox.y1 > y1 - 30

    def test_deterministic_given_seed(self):
        frame = annotated_frame()
        a = PoseEstimator(rng=np.random.default_rng(5)).estimate(frame)
        b = PoseEstimator(rng=np.random.default_rng(5)).estimate(frame)
        np.testing.assert_array_equal(
            a.require_pose().keypoints, b.require_pose().keypoints
        )

    def test_processing_counter(self):
        estimator = PoseEstimator(rng=np.random.default_rng(0))
        for _ in range(3):
            estimator.estimate(annotated_frame())
        assert estimator.frames_processed == 3
