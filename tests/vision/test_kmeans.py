"""Unit and property tests for k-means."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vision import KMeans


def two_blobs(n=30, separation=8.0, seed=0):
    rng = np.random.default_rng(seed)
    return np.vstack([
        rng.normal(0.0, 0.5, (n, 2)),
        rng.normal(separation, 0.5, (n, 2)),
    ])


class TestValidation:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            KMeans(k=0)

    def test_needs_at_least_k_points(self):
        with pytest.raises(ValueError):
            KMeans(k=3).fit(np.zeros((2, 2)))

    def test_data_must_be_2d(self):
        with pytest.raises(ValueError):
            KMeans(k=1).fit(np.zeros(5))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ValueError):
            KMeans().predict(np.zeros(2))


class TestClustering:
    def test_separates_two_blobs(self):
        data = two_blobs()
        km = KMeans(k=2, seed=1).fit(data)
        labels = km.predict(data)
        first_half = set(labels[:30].tolist())
        second_half = set(labels[30:].tolist())
        assert len(first_half) == 1
        assert len(second_half) == 1
        assert first_half != second_half

    def test_centroids_near_blob_means(self):
        data = two_blobs(separation=8.0)
        km = KMeans(k=2, seed=1).fit(data)
        centroid_norms = sorted(np.linalg.norm(km.centroids, axis=1))
        assert centroid_norms[0] < 1.0  # near origin blob
        assert abs(centroid_norms[1] - 8.0 * np.sqrt(2)) < 1.0

    def test_deterministic_for_same_seed(self):
        data = two_blobs()
        a = KMeans(k=2, seed=7).fit(data).centroids
        b = KMeans(k=2, seed=7).fit(data).centroids
        np.testing.assert_array_equal(a, b)

    def test_k1_centroid_is_mean(self):
        data = two_blobs()
        km = KMeans(k=1, seed=0).fit(data)
        np.testing.assert_allclose(km.centroids[0], data.mean(axis=0), atol=1e-9)

    def test_identical_points_handled(self):
        data = np.ones((10, 2))
        km = KMeans(k=2, seed=0).fit(data)
        assert np.isfinite(km.centroids).all()
        assert km.inertia == pytest.approx(0.0)

    def test_single_point_prediction(self):
        data = two_blobs()
        km = KMeans(k=2, seed=0).fit(data)
        label = km.predict(np.array([0.0, 0.0]))
        assert label in (0, 1)
        assert np.isscalar(label) or label.ndim == 0

    def test_inertia_decreases_with_more_clusters(self):
        data = two_blobs()
        one = KMeans(k=1, seed=0).fit(data).inertia
        two = KMeans(k=2, seed=0).fit(data).inertia
        assert two < one

    def test_converges_and_reports_iterations(self):
        km = KMeans(k=2, seed=0, max_iter=100).fit(two_blobs())
        assert 1 <= km.iterations_run < 100


@given(seed=st.integers(0, 500))
@settings(max_examples=30)
def test_property_every_point_nearest_to_its_centroid(seed):
    """The fitted assignment is locally optimal: each point's assigned
    centroid is its nearest centroid."""
    data = two_blobs(n=15, seed=seed)
    km = KMeans(k=2, seed=seed).fit(data)
    labels = km.predict(data)
    dists = np.linalg.norm(data[:, None, :] - km.centroids[None], axis=2)
    np.testing.assert_array_equal(labels, dists.argmin(axis=1))


@given(seed=st.integers(0, 500), k=st.integers(1, 4))
@settings(max_examples=30)
def test_property_centroids_inside_data_hull_bounds(seed, k):
    """Centroids are means, so they stay within the data's bounding box."""
    rng = np.random.default_rng(seed)
    data = rng.normal(0, 5, (25, 3))
    km = KMeans(k=k, seed=seed).fit(data)
    assert (km.centroids >= data.min(axis=0) - 1e-9).all()
    assert (km.centroids <= data.max(axis=0) + 1e-9).all()
