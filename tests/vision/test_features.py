"""Unit tests for pose feature engineering."""

import numpy as np
import pytest

from repro.motion import Squat, SubjectParams, sample_subject_sequence
from repro.motion.skeleton import Pose
from repro.motion.exercises import base_pose
from repro.vision import (
    WINDOW_FRAMES,
    frame_feature,
    frames_to_matrix,
    normalize_framewise,
    sliding_windows,
    window_feature,
    windows_to_matrix,
)


def pose_sequence(count=30):
    return sample_subject_sequence(
        Squat(period_s=2.0), SubjectParams(), fps=15.0, duration_s=count / 15.0
    )


class TestWindowing:
    def test_paper_window_is_15_frames(self):
        assert WINDOW_FRAMES == 15

    def test_sliding_windows_count(self):
        windows = sliding_windows(pose_sequence(30), window=15, stride=1)
        assert len(windows) == 16
        assert all(len(w) == 15 for w in windows)

    def test_stride_reduces_count(self):
        windows = sliding_windows(pose_sequence(30), window=15, stride=5)
        assert len(windows) == 4

    def test_short_sequence_yields_nothing(self):
        assert sliding_windows(pose_sequence(10), window=15) == []

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            sliding_windows(pose_sequence(20), window=0)
        with pytest.raises(ValueError):
            sliding_windows(pose_sequence(20), window=5, stride=0)


class TestFeatures:
    def test_window_feature_length(self):
        feature = window_feature(pose_sequence(15))
        assert feature.shape == (15 * 34,)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            window_feature([])

    def test_feature_is_position_invariant(self):
        """The paper's normalization makes features ignore where the subject
        stands in the image."""
        near = SubjectParams(center_x=100, ground_y=400, height_px=300)
        far = SubjectParams(center_x=500, ground_y=440, height_px=200)
        seq_near = sample_subject_sequence(Squat(period_s=2.0), near, 15.0, 1.0)
        seq_far = sample_subject_sequence(Squat(period_s=2.0), far, 15.0, 1.0)
        np.testing.assert_allclose(
            window_feature(seq_near), window_feature(seq_far), atol=1e-6
        )

    def test_normalize_framewise_centers_every_frame(self):
        normalized = normalize_framewise(pose_sequence(5))
        for pose in normalized:
            np.testing.assert_allclose(pose.hip_center(), [0, 0], atol=1e-9)

    def test_matrix_shapes(self):
        windows = sliding_windows(pose_sequence(30), window=15, stride=5)
        matrix = windows_to_matrix(windows)
        assert matrix.shape == (4, 15 * 34)
        assert windows_to_matrix([]).shape == (0, 15 * 34)

    def test_frame_feature_shape(self):
        assert frame_feature(Pose(base_pose())).shape == (34,)

    def test_frames_to_matrix(self):
        assert frames_to_matrix(pose_sequence(8)).shape == (8, 34)
        assert frames_to_matrix([]).shape == (0, 34)
