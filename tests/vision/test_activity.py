"""Unit tests for activity recognition (§4.1.2)."""

import pytest

from repro.motion import Squat, SubjectParams, make_model, sample_subject_sequence
from repro.vision import (
    ActivityRecognizer,
    StreamingActivityDetector,
    generate_activity_dataset,
)
from repro.vision.pose_estimator import PoseNoiseModel


def small_dataset(seed=0):
    return generate_activity_dataset(
        activities=("squat", "jumping_jack", "stand"),
        train_subjects=3,
        test_subjects=1,
        duration_s=4.0,
        seed=seed,
    )


@pytest.fixture(scope="module")
def trained():
    dataset = small_dataset()
    recognizer = ActivityRecognizer(k=5).fit(dataset.train_windows, dataset.train_labels)
    return recognizer, dataset


class TestActivityRecognizer:
    def test_requires_uniform_window_length(self):
        recognizer = ActivityRecognizer()
        seq = sample_subject_sequence(Squat(), SubjectParams(), 15.0, 1.0)
        with pytest.raises(ValueError):
            recognizer.fit([seq[:10]], ["squat"])

    def test_classify_requires_window_length(self, trained):
        recognizer, dataset = trained
        with pytest.raises(ValueError):
            recognizer.classify(dataset.test_windows[0][:10])

    def test_classifies_known_activities(self, trained):
        recognizer, _ = trained
        seq = sample_subject_sequence(
            make_model("jumping_jack"), SubjectParams(), 15.0, 1.0
        )
        label, confidence = recognizer.classify(seq)
        assert label == "jumping_jack"
        assert confidence > 0.5

    def test_withheld_subject_accuracy_above_paper_bar(self, trained):
        """§4.1.2: 'test accuracy on a withheld test set was above 90%'."""
        recognizer, dataset = trained
        accuracy = recognizer.accuracy(dataset.test_windows, dataset.test_labels)
        assert accuracy > 0.9

    def test_classes_reported(self, trained):
        recognizer, _ = trained
        assert recognizer.classes == ("jumping_jack", "squat", "stand")

    def test_accuracy_requires_windows(self, trained):
        recognizer, _ = trained
        with pytest.raises(ValueError):
            recognizer.accuracy([], [])

    def test_classify_feature_matches_classify(self, trained):
        from repro.vision import window_feature

        recognizer, dataset = trained
        window = dataset.test_windows[0]
        assert recognizer.classify(window) == recognizer.classify_feature(
            window_feature(window)
        )


class TestStreamingDetector:
    def test_not_ready_until_window_fills(self, trained):
        recognizer, _ = trained
        detector = StreamingActivityDetector(recognizer)
        seq = sample_subject_sequence(Squat(), SubjectParams(), 15.0, 2.0)
        outputs = [detector.push(p) for p in seq[:20]]
        assert all(o is None for o in outputs[:14])
        assert outputs[14] is not None
        assert detector.ready

    def test_rolling_window_tracks_activity_change(self, trained):
        recognizer, _ = trained
        detector = StreamingActivityDetector(recognizer)
        squat_seq = sample_subject_sequence(Squat(), SubjectParams(), 15.0, 2.0)
        jack_seq = sample_subject_sequence(
            make_model("jumping_jack"), SubjectParams(), 15.0, 2.0
        )
        for pose in squat_seq:
            detector.push(pose)
        assert detector.last_label == "squat"
        for pose in jack_seq:
            label = detector.push(pose)
        assert label == "jumping_jack"

    def test_snapshot_has_window_length(self, trained):
        recognizer, _ = trained
        detector = StreamingActivityDetector(recognizer)
        seq = sample_subject_sequence(Squat(), SubjectParams(), 15.0, 2.0)
        for pose in seq:
            detector.push(pose)
        assert len(detector.window_snapshot()) == recognizer.window

    def test_reset_clears_state(self, trained):
        recognizer, _ = trained
        detector = StreamingActivityDetector(recognizer)
        for pose in sample_subject_sequence(Squat(), SubjectParams(), 15.0, 2.0):
            detector.push(pose)
        detector.reset()
        assert not detector.ready
        assert detector.last_label is None


class TestDataset:
    def test_split_sizes(self):
        dataset = small_dataset()
        assert len(dataset.train_windows) == len(dataset.train_labels)
        assert len(dataset.test_windows) == len(dataset.test_labels)
        assert len(dataset.train_windows) > len(dataset.test_windows)

    def test_all_classes_in_both_splits(self):
        dataset = small_dataset()
        assert set(dataset.train_labels) == set(dataset.test_labels)

    def test_seed_reproducibility(self):
        import numpy as np

        a = small_dataset(seed=4)
        b = small_dataset(seed=4)
        np.testing.assert_array_equal(
            a.train_windows[0][0].keypoints, b.train_windows[0][0].keypoints
        )

    def test_noise_model_applied(self):
        clean = generate_activity_dataset(
            activities=("squat",), train_subjects=1, test_subjects=1,
            duration_s=2.0, noise=PoseNoiseModel(sigma_frac=0.0, dropout_prob=0.0),
            seed=0,
        )
        noisy = generate_activity_dataset(
            activities=("squat",), train_subjects=1, test_subjects=1,
            duration_s=2.0, noise=PoseNoiseModel(sigma_frac=0.05, dropout_prob=0.0),
            seed=0,
        )
        import numpy as np

        delta = np.abs(
            clean.train_windows[0][0].keypoints - noisy.train_windows[0][0].keypoints
        )
        assert delta.max() > 1.0
