"""Unit tests for the rep counter (§4.1.3)."""

import numpy as np
import pytest

from repro.motion import Squat, SubjectParams, sample_subject_sequence
from repro.vision import (
    RepCounter,
    StreamingRepCounter,
    count_reps_in_labels,
    generate_rep_bouts,
)


class TestCountRepsInLabels:
    def test_clean_cycles_counted(self):
        # 6 frames per state, 3 full cycles back to initial
        labels = np.array(([0] * 6 + [1] * 6) * 3 + [0] * 6)
        assert count_reps_in_labels(labels, debounce=4) == 3

    def test_incomplete_cycle_not_counted(self):
        labels = np.array([0] * 6 + [1] * 6)  # left but never returned
        assert count_reps_in_labels(labels, debounce=4) == 0

    def test_boundary_alternation_suppressed(self):
        """The paper's 4-frame debounce: alternating 0/1 at the cluster
        boundary must not create phantom reps."""
        flicker = [0, 1, 0, 1, 0, 1]
        labels = np.array([0] * 6 + flicker + [1] * 6 + flicker + [0] * 6)
        assert count_reps_in_labels(labels, debounce=4) == 1

    def test_debounce_one_counts_alternations(self):
        labels = np.array([0, 1, 0, 1, 0])
        assert count_reps_in_labels(labels, debounce=1) == 2

    def test_short_blip_below_debounce_ignored(self):
        labels = np.array([0] * 6 + [1] * 3 + [0] * 6)  # 3 < debounce 4
        assert count_reps_in_labels(labels, debounce=4) == 0

    def test_empty_and_constant_sequences(self):
        assert count_reps_in_labels(np.array([])) == 0
        assert count_reps_in_labels(np.zeros(50, dtype=int)) == 0


class TestRepCounter:
    def test_validation(self):
        with pytest.raises(ValueError):
            RepCounter(debounce=0)

    def test_counts_squat_reps_exactly_on_clean_data(self):
        model = Squat(period_s=2.0)
        poses = sample_subject_sequence(model, SubjectParams(), fps=15.0,
                                        duration_s=5 * 2.0 + 0.3)
        assert RepCounter().count(poses) == 5

    def test_short_sequence_returns_zero(self):
        poses = sample_subject_sequence(Squat(), SubjectParams(), 15.0, 0.3)
        assert RepCounter().count(poses) == 0

    def test_static_subject_counts_zero(self):
        from repro.motion import Stand

        poses = sample_subject_sequence(Stand(), SubjectParams(), 15.0, 6.0)
        assert RepCounter().count(poses) <= 1  # no real reps in idle sway

    def test_noisy_bouts_mostly_correct(self):
        """§4.1.3 reports 83.3% exact-count accuracy; noisy synthetic bouts
        should land in the same band or better."""
        bouts = generate_rep_bouts(bouts_per_exercise=4, seed=1)
        counter = RepCounter()
        exact = sum(counter.count(b.poses) == b.true_reps for b in bouts)
        assert exact / len(bouts) >= 0.7

    def test_counts_never_wildly_off(self):
        bouts = generate_rep_bouts(bouts_per_exercise=3, seed=2)
        counter = RepCounter()
        for bout in bouts:
            got = counter.count(bout.poses)
            assert abs(got - bout.true_reps) <= 2


class TestStreamingRepCounter:
    def test_counts_grow_with_reps(self):
        model = Squat(period_s=2.0)
        poses = sample_subject_sequence(model, SubjectParams(), 15.0, 8.3)
        streaming = StreamingRepCounter()
        counts = [streaming.push(p) for p in poses]
        assert counts[-1] == 4
        assert counts == sorted(counts)  # monotone on clean data

    def test_history_capped(self):
        streaming = StreamingRepCounter(max_frames=50)
        poses = sample_subject_sequence(Squat(), SubjectParams(), 15.0, 10.0)
        for pose in poses:
            streaming.push(pose)
        assert len(streaming.feature_snapshot()) == 50

    def test_reset(self):
        streaming = StreamingRepCounter()
        for pose in sample_subject_sequence(Squat(), SubjectParams(), 15.0, 5.0):
            streaming.push(pose)
        streaming.reset()
        assert streaming.reps == 0
        assert streaming.feature_snapshot().shape == (0, 34)


class TestRepBoutGenerator:
    def test_bout_metadata(self):
        bouts = generate_rep_bouts(
            exercises=("squat",), bouts_per_exercise=2, seed=0
        )
        assert len(bouts) == 2
        for bout in bouts:
            assert bout.exercise == "squat"
            assert 3 <= bout.true_reps <= 10
            assert len(bout.poses) > 0
