"""Unit tests for object detection, face region, classification, tracking."""

import numpy as np
import pytest

from repro.frames import render_pose
from repro.motion import Squat, SubjectParams, place_in_image
from repro.vision import (
    BBox,
    ColorHistogramClassifier,
    Detection,
    IoUTracker,
    ObjectDetector,
    SceneObject,
    detect_face_region,
    render_scene,
)


def scene_with(*objects):
    return render_scene(list(objects), 160, 120, rng=np.random.default_rng(0))


class TestObjectDetector:
    def test_detects_and_labels_single_object(self):
        truth = SceneObject("cup", BBox(30, 30, 60, 70))
        detections = ObjectDetector().detect(scene_with(truth))
        assert len(detections) == 1
        assert detections[0].label == "cup"
        assert detections[0].bbox.iou(truth.bbox) > 0.8
        assert detections[0].score > 0.5

    def test_detects_multiple_disjoint_objects(self):
        truth = [
            SceneObject("cup", BBox(10, 10, 30, 30)),
            SceneObject("book", BBox(60, 40, 100, 80)),
            SceneObject("bottle", BBox(120, 10, 150, 60)),
        ]
        detections = ObjectDetector().detect(scene_with(*truth))
        assert sorted(d.label for d in detections) == ["book", "bottle", "cup"]

    def test_empty_scene_no_detections(self):
        image = render_scene([], 160, 120, rng=np.random.default_rng(0))
        assert ObjectDetector().detect(image) == []

    def test_tiny_specks_filtered(self):
        image = np.full((50, 50, 3), 40, dtype=np.uint8)
        image[10, 10] = (255, 0, 0)  # single-pixel noise
        assert ObjectDetector(min_area=9).detect(image) == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SceneObject("dragon", BBox(0, 0, 1, 1))

    def test_requires_rgb(self):
        with pytest.raises(ValueError):
            ObjectDetector().detect(np.zeros((10, 10), dtype=np.uint8))


class TestFaceRegion:
    def test_face_found_at_top_of_subject(self):
        subject = SubjectParams(height_px=90, center_x=80, ground_y=110)
        pose = place_in_image(Squat().pose_at(0.0), subject)
        image = render_pose(pose, 160, 120)
        face = detect_face_region(image)
        assert face is not None
        nose = pose["nose"]
        assert face.contains_point(nose[0], nose[1])

    def test_empty_image_returns_none(self):
        assert detect_face_region(np.full((60, 80), 30, dtype=np.uint8)) is None

    def test_requires_grayscale(self):
        with pytest.raises(ValueError):
            detect_face_region(np.zeros((10, 10, 3), dtype=np.uint8))


class TestColorHistogramClassifier:
    def test_classifies_dominant_colors(self):
        rng = np.random.default_rng(0)
        reds = [scene_with(SceneObject("cup", BBox(10, 10, 150, 110)))
                for _ in range(2)]
        greens = [scene_with(SceneObject("book", BBox(10, 10, 150, 110)))
                  for _ in range(2)]
        clf = ColorHistogramClassifier().fit(reds + greens,
                                             ["red"] * 2 + ["green"] * 2)
        label, score = clf.classify(reds[0])
        assert label == "red"
        assert 0.0 < score <= 1.0
        assert clf.classify(greens[0])[0] == "green"
        assert clf.classes == ("green", "red")

    def test_unfitted_rejected(self):
        with pytest.raises(ValueError):
            ColorHistogramClassifier().classify(np.zeros((4, 4, 3), dtype=np.uint8))

    def test_fit_validates_input(self):
        with pytest.raises(ValueError):
            ColorHistogramClassifier().fit([], [])

    def test_bins_validated(self):
        with pytest.raises(ValueError):
            ColorHistogramClassifier(bins=1)


class TestIoUTracker:
    def detection(self, x, label="cup"):
        return Detection(label, BBox(x, 10, x + 20, 40), 0.9)

    def test_stable_object_keeps_id(self):
        tracker = IoUTracker()
        for x in [10, 12, 14, 16]:
            tracks = tracker.update([self.detection(x)])
        assert len(tracks) == 1
        assert tracks[0].track_id == 1
        assert tracks[0].hits == 4

    def test_two_objects_two_tracks(self):
        tracker = IoUTracker()
        tracks = tracker.update([self.detection(10), self.detection(100)])
        assert sorted(t.track_id for t in tracks) == [1, 2]

    def test_disappearing_object_ages_out(self):
        tracker = IoUTracker(max_misses=2)
        tracker.update([self.detection(10)])
        for _ in range(3):
            tracker.update([])
        assert tracker.tracks == []

    def test_reappearing_far_object_gets_new_id(self):
        tracker = IoUTracker(max_misses=0)
        tracker.update([self.detection(10)])
        tracker.update([])  # miss kills it (max_misses=0)
        tracks = tracker.update([self.detection(10)])
        assert tracks[0].track_id == 2

    def test_jump_beyond_iou_threshold_starts_new_track(self):
        tracker = IoUTracker(iou_threshold=0.5)
        tracker.update([self.detection(10)])
        tracks = tracker.update([self.detection(120)])
        ids = sorted(t.track_id for t in tracks)
        assert ids == [1, 2]

    def test_greedy_matches_best_overlap_first(self):
        tracker = IoUTracker(iou_threshold=0.1)
        tracker.update([self.detection(10), self.detection(40)])
        tracks = tracker.update([self.detection(12), self.detection(42)])
        by_id = {t.track_id: t.bbox.x0 for t in tracks}
        assert by_id[1] == 12
        assert by_id[2] == 42

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            IoUTracker(iou_threshold=0.0)


class TestHandRegions:
    def test_boxes_centered_on_wrists(self):
        from repro.motion import Squat, SubjectParams, subject_pose
        from repro.vision import hand_regions

        pose = subject_pose(Squat(), SubjectParams(), 0.0)
        boxes = hand_regions(pose)
        assert len(boxes) == 2
        for side, box in zip(("left_wrist", "right_wrist"), boxes):
            x, y = pose[side]
            assert box.contains_point(x, y)
            cx, cy = box.center
            assert abs(cx - x) < 1e-9 and abs(cy - y) < 1e-9

    def test_invisible_wrist_skipped(self):
        import numpy as np

        from repro.motion import Squat, SubjectParams, subject_pose
        from repro.motion.skeleton import KEYPOINT_INDEX, Pose
        from repro.vision import hand_regions

        pose = subject_pose(Squat(), SubjectParams(), 0.0)
        visibility = pose.visibility.copy()
        visibility[KEYPOINT_INDEX["left_wrist"]] = False
        boxes = hand_regions(Pose(pose.keypoints, visibility))
        assert len(boxes) == 1

    def test_box_size_scales_with_subject(self):
        from repro.motion import Squat, SubjectParams, subject_pose
        from repro.vision import hand_regions

        near = subject_pose(Squat(), SubjectParams(height_px=400), 0.0)
        far = subject_pose(Squat(), SubjectParams(height_px=150), 0.0)
        assert hand_regions(near)[0].width > hand_regions(far)[0].width
