"""Unit tests for bounding boxes."""

import pytest

from repro.vision import BBox


class TestBBox:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            BBox(10, 0, 5, 5)
        with pytest.raises(ValueError):
            BBox(0, 10, 5, 5)

    def test_geometry(self):
        box = BBox(0, 0, 4, 2)
        assert box.width == 4
        assert box.height == 2
        assert box.area == 8
        assert box.center == (2.0, 1.0)

    def test_identical_boxes_iou_one(self):
        box = BBox(1, 2, 5, 8)
        assert box.iou(box) == pytest.approx(1.0)

    def test_disjoint_boxes_iou_zero(self):
        assert BBox(0, 0, 1, 1).iou(BBox(5, 5, 6, 6)) == 0.0

    def test_touching_boxes_iou_zero(self):
        assert BBox(0, 0, 1, 1).iou(BBox(1, 0, 2, 1)) == 0.0

    def test_half_overlap(self):
        a = BBox(0, 0, 2, 2)
        b = BBox(1, 0, 3, 2)
        # intersection 2, union 6
        assert a.iou(b) == pytest.approx(1 / 3)

    def test_iou_symmetric(self):
        a = BBox(0, 0, 3, 3)
        b = BBox(1, 1, 5, 4)
        assert a.iou(b) == pytest.approx(b.iou(a))

    def test_zero_area_boxes(self):
        point = BBox(1, 1, 1, 1)
        assert point.area == 0
        assert point.iou(point) == 0.0  # degenerate union guard

    def test_contains_point(self):
        box = BBox(0, 0, 2, 2)
        assert box.contains_point(1, 1)
        assert box.contains_point(0, 0)  # boundary inclusive
        assert not box.contains_point(3, 1)

    def test_expanded(self):
        box = BBox(10, 10, 20, 20).expanded(0.1)
        assert box.x0 == pytest.approx(9)
        assert box.x1 == pytest.approx(21)

    def test_as_tuple(self):
        assert BBox(1, 2, 3, 4).as_tuple() == (1, 2, 3, 4)
