"""Per-frame version lineage: recording, querying, exporting."""

import json

from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.core import VideoPipe
from repro.liveops import CanaryPolicy, LineageRecorder
from repro.sim import Kernel

MODULE = "pose_detector_module"


def fitness_home(seed=7):
    home = VideoPipe.paper_testbed(seed=seed)
    home.enable_liveops()
    services = install_fitness_services(home)
    app = FitnessApp(home, services)
    pipeline = app.deploy(fitness_pipeline_config(fps=8.0, duration_s=20.0))
    return home, pipeline


class TestRecording:
    def test_paths_record_modules_versions_and_services(self):
        home, pipeline = fitness_home()
        home.run_for(5.0)
        lineage = home.liveops.lineage
        assert lineage.frame_count > 0
        key = next(iter(lineage._records))
        path = lineage.path_of(*key)
        assert path, "a touched frame must have steps"
        step = path[0]
        assert step["module"] == MODULE  # first DATA hop after the source
        assert step["version"] == "v1"
        assert step["device"] in home.devices
        assert step["services"].get("pose_detector") == "v1"
        # ordered by time
        assert [s["t"] for s in path] == sorted(s["t"] for s in path)

    def test_versions_change_across_promotion(self):
        home, pipeline = fitness_home()
        home.enable_audit()
        home.run_for(3.0)
        home.upgrade_module(
            pipeline, MODULE,
            policy=CanaryPolicy(min_mirrored=5, decision_timeout_s=8.0),
        )
        home.run(until=25.0)
        lineage = home.liveops.lineage
        chains = {
            lineage.versions_of(*key)[0]
            for key in lineage._records
            if lineage.versions_of(*key)
        }
        # frames processed before the promotion crossed v1; later ones v2
        assert f"{MODULE}@v1" in chains
        assert f"{MODULE}@v2" in chains

    def test_eviction_caps_memory(self):
        lineage = LineageRecorder(Kernel(), max_frames=3)
        for fid in range(5):
            lineage.touch("p", fid, {"module": "m", "version": "v1"})
        assert lineage.frame_count == 3
        assert lineage.dropped_frames == 2
        assert lineage.path_of("p", 0) == []  # oldest evicted
        assert lineage.path_of("p", 4)


class TestExport:
    def test_export_json_roundtrips(self, tmp_path):
        home, pipeline = fitness_home()
        home.run_for(5.0)
        out = tmp_path / "lineage.json"
        written = home.liveops.lineage.export_json(str(out))
        data = json.loads(out.read_text())
        assert data["frames_recorded"] == written > 0
        assert data["touches"] == home.liveops.lineage.touches
        frame = data["frames"][0]
        assert frame["pipeline"] == pipeline.name
        assert {"module", "version", "device", "services", "t"} <= set(
            frame["path"][0]
        )

    def test_status_exposes_lineage_counters(self):
        home, _ = fitness_home()
        home.run_for(5.0)
        status = home.liveops_status()
        assert status["lineage"]["frames_recorded"] > 0
        assert status["lineage"]["touches"] >= (
            status["lineage"]["frames_recorded"]
        )
