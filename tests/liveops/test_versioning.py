"""Module/pipeline versioning: config, wiring, and metrics surfacing."""

import pytest

from repro.core import VideoPipe
from repro.errors import ConfigError
from repro.pipeline import ModuleConfig, PipelineConfig
from repro.pipeline.config import config_from_dict
from repro.runtime import Module, register_module
from repro.services import Service


@register_module("./VersionedNoop.js")
class Noop(Module):
    def event_received(self, ctx, event):
        pass


def versioned_config():
    return PipelineConfig(
        name="versioned",
        version="v3",
        modules=[
            ModuleConfig(name="a", include="./VersionedNoop.js",
                         next_modules=["b"], version="v2",
                         endpoint="bind#tcp://*:6300"),
            ModuleConfig(name="b", include="./VersionedNoop.js",
                         endpoint="bind#tcp://*:6301"),
        ],
    )


class TestConfigVersioning:
    def test_defaults_to_v1(self):
        cfg = ModuleConfig(name="m", include="./VersionedNoop.js")
        assert cfg.version == "v1"
        assert PipelineConfig(name="p", modules=[cfg]).version == "v1"

    def test_empty_version_rejected(self):
        with pytest.raises(ConfigError):
            ModuleConfig(name="m", include="./VersionedNoop.js", version="")
        with pytest.raises(ConfigError):
            PipelineConfig(
                name="p", version="",
                modules=[ModuleConfig(name="m", include="./VersionedNoop.js")],
            )

    def test_as_dict_roundtrip_preserves_versions(self):
        cfg = versioned_config()
        data = cfg.as_dict()
        assert data["version"] == "v3"
        assert data["modules"][0]["version"] == "v2"
        back = config_from_dict(data)
        assert back.version == "v3"
        assert back.module("a").version == "v2"
        assert back.module("b").version == "v1"

    def test_service_describe_includes_version(self):
        assert Service().describe()["version"] == "v1"


class TestDeployedVersioning:
    def test_wiring_and_describe_surface_versions(self):
        home = VideoPipe.paper_testbed(seed=0)
        pipeline = home.deploy_pipeline(versioned_config(),
                                        default_device="phone")
        assert pipeline.wiring.version_of("a") == "v2"
        assert pipeline.wiring.version_of("b") == "v1"
        info = pipeline.describe()
        assert info["modules"]["a"]["version"] == "v2"
        assert info["modules"]["b"]["version"] == "v1"

    def test_version_labels_in_metrics(self):
        home = VideoPipe.paper_testbed(seed=0)
        pipeline = home.deploy_pipeline(versioned_config(),
                                        default_device="phone")
        counters = pipeline.metrics.counters()
        assert counters["module_version.a.v2"] == 1
        assert counters["module_version.b.v1"] == 1

    def test_unknown_module_version_defaults_v1(self):
        home = VideoPipe.paper_testbed(seed=0)
        pipeline = home.deploy_pipeline(versioned_config(),
                                        default_device="phone")
        assert pipeline.wiring.version_of("never-deployed") == "v1"
