"""Regression tests for the three deployer bugs this PR fixes.

1. ``migrate``/``swap_module`` rebuilt service stubs with the *default*
   ``prefer_local=True``, silently flipping a pure service-oriented
   pipeline (deployed with ``prefer_local_services=False``) to local
   dispatch after a move.
2. The migrate drain accounted only *top-level* ``frame_id`` keys, so a
   queued batched/enveloped payload leaked its nested frames'
   ``frames_in_flight`` slots forever.
3. A mid-deploy failure's rollback unbound already-deployed modules but
   never released their queued events' frame refs nor accounted the
   carried frames as dropped.
"""

import pytest

from repro.audit import InvariantAuditor
from repro.core import VideoPipe
from repro.errors import ConfigError
from repro.pipeline import ModuleConfig, PipelineConfig
from repro.runtime import Module, register_module
from repro.runtime.events import DATA, ModuleEvent
from repro.services import FunctionService


@register_module("./FixProducer.js")
class Producer(Module):
    def event_received(self, ctx, event):
        pass


@register_module("./FixConsumer.js")
class Consumer(Module):
    def event_received(self, ctx, event):
        def flow():
            yield ctx.call_service("echo", event.payload)
        return flow()


def two_stage_config():
    return PipelineConfig(
        name="fixtest",
        modules=[
            ModuleConfig(name="producer", include="./FixProducer.js",
                         next_modules=["consumer"], device="phone",
                         endpoint="bind#tcp://*:6400"),
            ModuleConfig(name="consumer", include="./FixConsumer.js",
                         services=["echo"], device="phone",
                         endpoint="bind#tcp://*:6401"),
        ],
    )


@pytest.fixture
def home():
    home = VideoPipe.paper_testbed(seed=0)
    home.deploy_service(FunctionService("echo", lambda p, c: p,
                                        default_port=7300), "desktop")
    return home


class TestPreferLocalSurvivesMigration:
    def test_pure_soa_pipeline_stays_remote_after_migrate(self, home):
        """The regression: deployed with ``prefer_local_services=False``,
        the consumer's echo stub is remote; migrating it onto the very
        device that hosts echo must NOT flip the stub local — pre-fix,
        migrate rebuilt stubs with the default policy and did."""
        pipeline = home.deploy_pipeline(two_stage_config(),
                                        default_device="phone",
                                        prefer_local_services=False)
        assert pipeline.prefer_local_services is False
        assert not pipeline.module("consumer").ctx.service_is_local("echo")

        home.migrate_module(pipeline, "consumer", "desktop")

        assert not pipeline.module("consumer").ctx.service_is_local("echo")

    def test_default_pipeline_still_flips_local(self, home):
        """The inverse stays true: a local-preferred pipeline's stub goes
        local when the module lands beside the service."""
        pipeline = home.deploy_pipeline(two_stage_config(),
                                        default_device="phone")
        assert not pipeline.module("consumer").ctx.service_is_local("echo")
        home.migrate_module(pipeline, "consumer", "desktop")
        assert pipeline.module("consumer").ctx.service_is_local("echo")


def _queue_nested_event(pipeline, module_name, frame_ids):
    """Plant a DATA event whose frame ids sit below the top level, the
    batched/enveloped payload shape the old flat drain missed."""
    deployed = pipeline.module(module_name)
    ctx = deployed.ctx
    payload = {"batch": [
        {"frame_id": fid, "ref": ctx.store_frame(b"pixels")}
        for fid in frame_ids
    ]}
    for fid in frame_ids:
        ctx.frame_entered(fid)
    deployed.mailbox.put(ModuleEvent(kind=DATA, payload=payload))
    return payload


class TestMigrateDrainWalksNestedPayloads:
    def test_nested_frames_accounted_on_migrate(self, home):
        home.enable_audit()
        pipeline = home.deploy_pipeline(two_stage_config(),
                                        default_device="phone")
        _queue_nested_event(pipeline, "consumer", [501, 502, 503])
        assert pipeline.metrics.frames_in_flight == 3

        home.migrate_module(pipeline, "consumer", "desktop")

        # every nested frame settled: refs released, in-flight pruned
        assert pipeline.metrics.frames_in_flight == 0
        assert pipeline.metrics.counter("frames_dropped") == 3
        assert len(home.device("phone").frame_store) == 0
        assert home.check_invariants() == [], home.auditor.report()

    def test_flat_drain_mutation_trips_auditor(self, monkeypatch):
        """Re-introduce the bug: drain only top-level ``frame_id`` keys.
        The metrics-conservation law flags the leak immediately."""
        import repro.pipeline.deployer as deployer_mod

        # this test *plants* a violation; keep the auditor explicit so the
        # REPRO_AUDIT sweep doesn't fail for finding exactly that
        monkeypatch.delenv("REPRO_AUDIT", raising=False)

        def flat_only(payload):
            if isinstance(payload, dict) and isinstance(
                payload.get("frame_id"), int
            ):
                return [payload["frame_id"]]
            return []

        monkeypatch.setattr(deployer_mod, "frame_ids_in", flat_only)
        home = VideoPipe.paper_testbed(seed=0)
        home.deploy_service(FunctionService("echo", lambda p, c: p,
                                            default_port=7300), "desktop")
        auditor = InvariantAuditor(home.kernel)
        pipeline = home.deploy_pipeline(two_stage_config(),
                                        default_device="phone")
        auditor.watch_metrics(pipeline.metrics)
        _queue_nested_event(pipeline, "consumer", [601, 602])

        home.migrate_module(pipeline, "consumer", "desktop")

        assert pipeline.metrics.frames_in_flight == 2  # the leak
        violations = auditor.check_quiesce()
        assert any(v.invariant == "metrics-conservation" for v in violations), \
            auditor.report()


@register_module("./FixEagerSource.js")
class EagerSource(Module):
    """Admits a frame and queues it during ``init`` — so a failure later
    in the same deploy leaves real work in its mailbox for rollback."""

    def init(self, ctx):
        ref = ctx.store_frame(b"frame-pixels")
        ctx.frame_entered(701)
        deployed = ctx._runtime.deployed(ctx.module_name)
        deployed.mailbox.put(ModuleEvent(
            kind=DATA, payload={"frame_id": 701, "ref": ref},
        ))

    def event_received(self, ctx, event):
        pass


class TestDeployRollbackAccounting:
    def _failing_config(self):
        return PipelineConfig(
            name="rollbacktest",
            modules=[
                ModuleConfig(name="eager", include="./FixEagerSource.js",
                             next_modules=["ghost"], device="phone",
                             endpoint="bind#tcp://*:6500"),
                ModuleConfig(name="ghost", include="./NoSuchModule.js",
                             device="phone", endpoint="bind#tcp://*:6501"),
            ],
        )

    def test_rollback_releases_and_accounts_queued_frames(self, home):
        home.enable_audit()
        with pytest.raises(ConfigError):
            home.deploy_pipeline(self._failing_config(),
                                 default_device="phone")
        # crash-drain semantics: ref released, frame accounted as dropped
        assert len(home.device("phone").frame_store) == 0
        assert home.device("phone").runtime.deployed_names() == []
        assert home.check_invariants() == [], home.auditor.report()
