"""Live-ops determinism: idle live-ops is bit-identical; upgrades replay
exactly under a seed."""

from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.core import VideoPipe
from repro.liveops import CanaryPolicy

MODULE = "pose_detector_module"


def run(seed=11, liveops=False, upgrade_at=None):
    home = VideoPipe.paper_testbed(seed=seed)
    if liveops:
        home.enable_liveops()
    services = install_fitness_services(home)
    app = FitnessApp(home, services)
    pipeline = app.deploy(fitness_pipeline_config(fps=8.0, duration_s=16.0))
    up = None
    if upgrade_at is not None:
        home.run(until=upgrade_at)
        up = home.upgrade_module(
            pipeline, MODULE,
            policy=CanaryPolicy(min_mirrored=5, decision_timeout_s=8.0),
        )
    home.run(until=18.0)
    return home, pipeline, up


def fingerprint(pipeline):
    metrics = pipeline.metrics
    return (
        metrics.counter("frames_entered"),
        metrics.counter("frames_completed"),
        metrics.counter("frames_dropped"),
        tuple(metrics.total_latencies),
    )


class TestIdleLiveOpsIsFree:
    def test_enabled_but_idle_run_is_bit_for_bit_identical(self):
        """Lineage recording is passive: a home with live-ops on but no
        upgrade in flight produces the exact event outcomes of one
        without it."""
        _, plain, _ = run(liveops=False)
        home, observed, _ = run(liveops=True)
        assert fingerprint(observed) == fingerprint(plain)
        assert home.liveops.lineage.frame_count > 0  # it did record


class TestUpgradeDeterminism:
    def test_same_seed_same_verdict_same_instant(self):
        home_a, pipeline_a, up_a = run(liveops=True, upgrade_at=3.0)
        home_b, pipeline_b, up_b = run(liveops=True, upgrade_at=3.0)
        assert fingerprint(pipeline_a) == fingerprint(pipeline_b)
        assert up_a.state == up_b.state
        assert up_a.reason == up_b.reason
        assert up_a.decided_at == up_b.decided_at
        assert up_a.mirrored_frames == up_b.mirrored_frames
        assert (home_a.liveops.lineage.as_dict()
                == home_b.liveops.lineage.as_dict())
