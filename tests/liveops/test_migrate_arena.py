"""Migrate × arena interaction: draining a module whose queued frames hold
arena-backed pixel planes must retire the slots as MIGRATED, and any
post-migrate access through a kept handle is a typed StaleHandleError."""

import numpy as np
import pytest

from repro.audit import InvariantAuditor
from repro.core import VideoPipe
from repro.errors import StaleHandleError
from repro.frames import MIGRATED, RELEASED, VideoFrame
from repro.pipeline import ModuleConfig, PipelineConfig
from repro.runtime import Module, register_module
from repro.runtime.events import DATA, ModuleEvent


@register_module("./ArenaProducer.js")
class Producer(Module):
    def event_received(self, ctx, event):
        pass


@register_module("./ArenaConsumer.js")
class Consumer(Module):
    def event_received(self, ctx, event):
        pass


def two_stage_config():
    return PipelineConfig(
        name="arenatest",
        modules=[
            ModuleConfig(name="producer", include="./ArenaProducer.js",
                         next_modules=["consumer"], device="phone",
                         endpoint="bind#tcp://*:6600"),
            ModuleConfig(name="consumer", include="./ArenaConsumer.js",
                         device="phone", endpoint="bind#tcp://*:6601"),
        ],
    )


def make_frame(frame_id):
    pixels = np.full((24, 32, 3), frame_id % 251, dtype=np.uint8)
    return VideoFrame(frame_id=frame_id, source="cam", capture_time=0.0,
                      width=32, height=24, pixels=pixels)


def queue_arena_frame(pipeline, module_name, frame_id):
    """Park an arena-backed frame in the module's mailbox and return the
    (ref, handle) pair the migration drain must retire."""
    ctx = pipeline.module(module_name).ctx
    ref = ctx.store_frame(make_frame(frame_id))
    ctx.frame_entered(frame_id)
    pipeline.module(module_name).mailbox.put(ModuleEvent(
        kind=DATA, payload={"frame_id": frame_id, "ref": ref},
    ))
    store = ctx._runtime.device.frame_store
    return ref, store.handle_of(ref)


class TestMigrateRetiresArenaSlots:
    def test_drained_planes_retire_as_migrated_not_released(self, monkeypatch):
        # REPRO_AUDIT=1 coverage: let the env gate audit this home too
        monkeypatch.setenv("REPRO_AUDIT", "1")
        home = VideoPipe.paper_testbed(seed=0)
        home.enable_data_plane()
        pipeline = home.deploy_pipeline(two_stage_config(),
                                        default_device="phone")
        ref, handle = queue_arena_frame(pipeline, "consumer", 801)
        assert handle is not None
        arena = home.device("phone").frame_store.arena

        home.migrate_module(pipeline, "consumer", "desktop")

        assert arena._retired_reason[handle.offset] == MIGRATED
        assert arena._retired_reason[handle.offset] != RELEASED
        assert pipeline.metrics.frames_in_flight == 0
        assert pipeline.metrics.counter("frames_dropped") == 1
        assert home.check_invariants() == []

    def test_post_migrate_access_raises_typed_stale(self, monkeypatch):
        """The kept handle is poison after the move — and the explicit
        auditor attributes the access. (This test *provokes* a stale
        access, so it opts out of the env auditor sweep.)"""
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        home = VideoPipe.paper_testbed(seed=0)
        home.enable_data_plane()
        auditor = InvariantAuditor(home.kernel)
        pipeline = home.deploy_pipeline(two_stage_config(),
                                        default_device="phone")
        store = home.device("phone").frame_store
        auditor.watch_store(store)
        auditor.watch_arena(store.arena)
        ref, handle = queue_arena_frame(pipeline, "consumer", 802)

        home.migrate_module(pipeline, "consumer", "desktop")

        with pytest.raises(StaleHandleError) as exc:
            store.frame_by_handle(handle)
        assert exc.value.reason == MIGRATED
        with pytest.raises(StaleHandleError) as exc:
            store.get(ref)
        assert exc.value.reason == MIGRATED
        assert any(v.invariant == "arena-stale-access"
                   and "migrated" in v.detail
                   for v in auditor.violations), auditor.report()
