"""Hot in-place upgrades: canary mirroring, promotion, rollback."""

import pytest

from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.apps.modules import PoseDetectionModule
from repro.core import VideoPipe
from repro.errors import ConfigError
from repro.liveops import MIRRORING, PROMOTED, ROLLED_BACK, CanaryPolicy
from repro.liveops.upgrade import _bump_version

MODULE = "pose_detector_module"


def fitness_home(seed=7, fps=8.0, duration_s=20.0, audit=True):
    home = VideoPipe.paper_testbed(seed=seed)
    if audit:
        home.enable_audit()
    home.enable_liveops()
    services = install_fitness_services(home)
    app = FitnessApp(home, services)
    pipeline = app.deploy(fitness_pipeline_config(fps=fps,
                                                  duration_s=duration_s))
    return home, pipeline


class TestVersionBump:
    def test_bump_semantics(self):
        assert _bump_version("v1") == "v2"
        assert _bump_version("v9") == "v10"
        assert _bump_version("2") == "3"
        assert _bump_version("release-3") == "release-4"
        assert _bump_version("stable") == "stable.next"


class TestAutoPromotion:
    def test_healthy_candidate_promotes_with_zero_frame_loss(self):
        home, pipeline = fitness_home()
        home.run_for(3.0)
        up = home.upgrade_module(
            pipeline, MODULE,
            policy=CanaryPolicy(min_mirrored=5, decision_timeout_s=8.0),
        )
        assert up.state == MIRRORING
        assert up.from_version == "v1" and up.to_version == "v2"
        home.run_for(10.0)

        assert up.state == PROMOTED
        assert "within bound" in up.reason
        assert pipeline.wiring.version_of(MODULE) == "v2"
        assert pipeline.config.module(MODULE).version == "v2"
        assert pipeline.describe()["modules"][MODULE]["version"] == "v2"
        assert pipeline.metrics.counter("upgrades_promoted") == 1
        assert pipeline.metrics.counter(f"module_version.{MODULE}.v2") == 1

        home.run(until=25.0)
        # zero frame loss: the live pipeline never dropped a frame, and
        # the shadow collector conserves every mirrored copy
        assert pipeline.metrics.counter("frames_dropped") == 0
        shadow = up.shadow_metrics
        assert shadow.counter("frames_entered") == (
            shadow.counter("frames_completed")
            + shadow.counter("frames_dropped")
        )
        assert up.mirrored_frames == shadow.counter("frames_entered")
        assert home.check_invariants() == [], home.auditor.report()

    def test_shadow_retired_after_promotion(self):
        home, pipeline = fitness_home()
        home.run_for(3.0)
        up = home.upgrade_module(
            pipeline, MODULE,
            policy=CanaryPolicy(min_mirrored=5, decision_timeout_s=8.0),
        )
        home.run_for(10.0)
        assert up.state == PROMOTED
        runtime = pipeline.module(MODULE).runtime
        names = runtime.deployed_names()
        assert up.shadow_name not in names
        assert up.sink_name not in names
        assert MODULE in names
        assert pipeline.module(MODULE).mirror is None


class TestAutoRollback:
    def test_slow_candidate_rolls_back_leaving_v1_untouched(self):
        home, pipeline = fitness_home()
        home.run_for(3.0)
        slow = PoseDetectionModule()
        slow.event_overhead_s = 0.5  # injected: v2 cannot keep up
        up = home.upgrade_module(
            pipeline, MODULE, module_instance=slow,
            policy=CanaryPolicy(min_mirrored=5, decision_timeout_s=6.0),
        )
        home.run_for(10.0)

        assert up.state == ROLLED_BACK
        assert pipeline.wiring.version_of(MODULE) == "v1"
        assert pipeline.module_instance(MODULE) is not slow
        assert pipeline.metrics.counter("upgrades_rolled_back") == 1

        home.run(until=25.0)
        assert pipeline.metrics.counter("frames_dropped") == 0
        shadow = up.shadow_metrics
        assert shadow.counter("frames_entered") == (
            shadow.counter("frames_completed")
            + shadow.counter("frames_dropped")
        )
        assert home.check_invariants() == [], home.auditor.report()

    def test_erroring_candidate_rolls_back(self):
        home, pipeline = fitness_home()
        home.run_for(3.0)

        class Exploding(PoseDetectionModule):
            def event_received(self, ctx, event):
                raise RuntimeError("v2 is broken")

        up = home.upgrade_module(
            pipeline, MODULE, module_instance=Exploding(),
            policy=CanaryPolicy(min_mirrored=5, decision_timeout_s=6.0),
        )
        home.run_for(8.0)
        assert up.state == ROLLED_BACK
        assert "error rate" in up.reason
        assert pipeline.wiring.version_of(MODULE) == "v1"

    def test_timeout_fails_safe(self):
        home, pipeline = fitness_home()
        home.run_for(3.0)
        # nothing can complete: demand far more evidence than the stream
        # will ever deliver before the deadline
        up = home.upgrade_module(
            pipeline, MODULE,
            policy=CanaryPolicy(min_mirrored=10_000,
                                decision_timeout_s=2.0),
        )
        home.run_for(5.0)
        assert up.state == ROLLED_BACK
        assert "failing safe" in up.reason


class TestMirroring:
    def test_fraction_mirrors_deterministic_half(self):
        home, pipeline = fitness_home()
        home.run_for(3.0)
        up = home.upgrade_module(
            pipeline, MODULE,
            policy=CanaryPolicy(mirror_fraction=0.5, min_mirrored=3,
                                decision_timeout_s=8.0, auto=False),
        )
        primary = pipeline.module(MODULE)
        events_before = primary.events_processed
        home.run_for(4.0)
        arrived = primary.events_processed - events_before
        # the accumulator admits every second event, exactly (allow a
        # frame or two of enqueue-vs-processed skew at the window edges)
        assert up.mirrored_events == pytest.approx(arrived / 2, abs=2)
        home.liveops.rollback(up, reason="test done")

    def test_mirror_never_touches_live_credit_path(self):
        """Identical live throughput with and without a (manual, never
        resolved until the end) canary in flight."""
        home_a, pipeline_a = fitness_home(audit=False)
        home_a.run(until=25.0)
        completed_plain = pipeline_a.metrics.counter("frames_completed")

        home_b, pipeline_b = fitness_home(audit=False)
        home_b.run_for(3.0)
        up = home_b.upgrade_module(
            pipeline_b, MODULE, policy=CanaryPolicy(auto=False),
        )
        home_b.run_for(10.0)
        home_b.liveops.rollback(up, reason="test done")
        home_b.run(until=25.0)
        assert pipeline_b.metrics.counter("frames_completed") == completed_plain
        assert pipeline_b.metrics.counter("frames_dropped") == 0


class TestManualControl:
    def test_manual_policy_waits_for_explicit_verdict(self):
        home, pipeline = fitness_home()
        home.run_for(3.0)
        up = home.upgrade_module(pipeline, MODULE,
                                 policy=CanaryPolicy(auto=False))
        home.run_for(6.0)
        assert up.state == MIRRORING
        home.liveops.promote(up, reason="operator approved")
        assert up.state == PROMOTED
        assert pipeline.wiring.version_of(MODULE) == "v2"
        home.run(until=25.0)
        assert home.check_invariants() == [], home.auditor.report()

    def test_double_verdict_rejected(self):
        home, pipeline = fitness_home()
        home.run_for(3.0)
        up = home.upgrade_module(pipeline, MODULE,
                                 policy=CanaryPolicy(auto=False))
        home.liveops.rollback(up)
        with pytest.raises(ConfigError):
            home.liveops.promote(up)
        with pytest.raises(ConfigError):
            home.liveops.rollback(up)


class TestRefusals:
    def test_source_module_refused(self):
        home, pipeline = fitness_home()
        home.run_for(1.0)
        with pytest.raises(ConfigError, match="source"):
            home.upgrade_module(pipeline, "video_streaming_module")

    def test_one_upgrade_per_module(self):
        home, pipeline = fitness_home()
        home.run_for(3.0)
        home.upgrade_module(pipeline, MODULE,
                            policy=CanaryPolicy(auto=False))
        with pytest.raises(ConfigError, match="in flight"):
            home.upgrade_module(pipeline, MODULE)

    def test_same_version_refused(self):
        home, pipeline = fitness_home()
        home.run_for(1.0)
        with pytest.raises(ConfigError, match="already at version"):
            home.upgrade_module(pipeline, MODULE, version="v1")

    def test_stopped_pipeline_refused(self):
        home, pipeline = fitness_home()
        home.run_for(1.0)
        pipeline.stop()
        with pytest.raises(ConfigError, match="stopped"):
            home.upgrade_module(pipeline, MODULE)


class TestStatusAndAuditing:
    def test_liveops_status_counts(self):
        home, pipeline = fitness_home()
        home.run_for(3.0)
        home.upgrade_module(
            pipeline, MODULE,
            policy=CanaryPolicy(min_mirrored=5, decision_timeout_s=8.0),
        )
        home.run_for(10.0)
        status = home.liveops_status()
        assert status["counts"] == {
            "mirroring": 0, "promoted": 1, "rolled_back": 0,
        }
        (entry,) = status["upgrades"]
        assert entry["module"] == MODULE
        assert entry["to_version"] == "v2"
        assert entry["mirrored_frames"] == entry["mirror_completed"] + \
            entry["mirror_dropped"]

    def test_status_requires_enable(self):
        home = VideoPipe.paper_testbed(seed=0)
        with pytest.raises(ConfigError):
            home.liveops_status()

    def test_unretired_shadow_trips_version_swap_law(self, monkeypatch):
        """Mutation: promotion that forgets to retire the canary. The
        auditor's version-swap law names the ghost deployment."""
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        home, pipeline = fitness_home(audit=False)
        auditor = home.enable_audit()
        home.run_for(3.0)
        up = home.upgrade_module(pipeline, MODULE,
                                 policy=CanaryPolicy(auto=False))
        home.run_for(5.0)
        monkeypatch.setattr(home.liveops, "_retire_shadow", lambda u: None)
        up.primary_deployed.mirror = None  # stop mirroring by hand
        home.liveops.promote(up)
        violations = [v for v in auditor.violations
                      if v.invariant == "liveops-version-swap"]
        assert violations, auditor.report()
        assert up.shadow_name in violations[0].detail

    def test_vanished_upgrade_trips_conservation_law(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        home, pipeline = fitness_home(audit=False)
        auditor = home.enable_audit()
        home.run_for(3.0)
        up = home.upgrade_module(pipeline, MODULE,
                                 policy=CanaryPolicy(auto=False))
        # mutation: the upgrade evaporates without promote/rollback
        home.liveops._active.pop((pipeline.name, MODULE))
        up.primary_deployed.mirror = None
        auditor.check_now()
        assert any(v.invariant == "liveops-conservation"
                   for v in auditor.violations), auditor.report()
