"""Service hosts drawing workers from the shared device pool."""

import pytest

from repro.errors import ServiceError
from repro.services import FunctionService, ServiceHost
from repro.services.pool import ReplicaPool


def echo_service(name="echo", cost=0.010):
    return FunctionService(name, lambda payload, ctx: payload,
                           reference_cost_s=cost)


def pooled_host(home, service, slots=2, replicas=1):
    pool = home.desktop.enable_replica_pool(slots=slots)
    host = ServiceHost(home.kernel, home.desktop, service, home.transport,
                       replicas=replicas)
    host.attach_pool(pool)
    return host, pool


class TestAttachment:
    def test_attach_swaps_workers_for_a_lease(self, home):
        host, pool = pooled_host(home, echo_service())
        assert host.pool is pool
        assert host.replicas == 1  # replicas now reads the pool share
        assert pool.leases["echo"].share == 1

    def test_attach_rejects_cross_device_pool(self, home):
        foreign = ReplicaPool(home.kernel, "phone", 2)
        host = ServiceHost(home.kernel, home.desktop, echo_service(),
                           home.transport)
        with pytest.raises(ServiceError, match="device"):
            host.attach_pool(foreign)

    def test_attach_rejects_busy_host(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(cost=0.050),
                           home.transport)
        host.call_local({})
        pool = ReplicaPool(home.kernel, "desktop", 2)
        captured = {}

        def attempt():  # mid-call: a worker is busy
            try:
                host.attach_pool(pool)
            except ServiceError as exc:
                captured["error"] = exc

        home.kernel.schedule(0.010, attempt)
        home.kernel.run()
        assert "idle" in str(captured["error"])

    def test_attach_is_idempotent_for_the_same_pool(self, home):
        host, pool = pooled_host(home, echo_service())
        host.attach_pool(pool)
        assert host.pool is pool

    def test_enable_replica_pool_attaches_existing_hosts(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(),
                           home.transport)
        home.desktop.service_hosts["echo"] = host
        pool = home.desktop.enable_replica_pool(slots=4)
        assert host.pool is pool


class TestPooledExecution:
    def test_two_services_share_the_device_slots(self, home):
        """The pooled win: one busy service borrows the other's idle slot."""
        pool = home.desktop.enable_replica_pool(slots=2)
        busy = ServiceHost(home.kernel, home.desktop,
                           echo_service("busy", cost=0.050), home.transport,
                           port=7901)
        idle = ServiceHost(home.kernel, home.desktop,
                           echo_service("idle", cost=0.050), home.transport,
                           port=7902)
        busy.attach_pool(pool)
        idle.attach_pool(pool)
        first = busy.call_local({})
        second = busy.call_local({})
        home.kernel.run()
        assert first.succeeded and second.succeeded
        # share is 1 each, but the idle host's slot was borrowed: parallel
        assert home.kernel.now < 0.080
        assert pool.borrowed_total == 1

    def test_fixed_split_baseline_serializes(self, home):
        """Without the pool the same load runs one-at-a-time."""
        host = ServiceHost(home.kernel, home.desktop,
                           echo_service(cost=0.050), home.transport,
                           replicas=1)
        first = host.call_local({})
        second = host.call_local({})
        home.kernel.run()
        assert first.succeeded and second.succeeded
        assert home.kernel.now >= 0.090

    def test_autoscaler_grow_path_raises_share(self, home):
        host, pool = pooled_host(home, echo_service(), slots=2)
        host.add_replica(2)  # what AutoScaler/SLO ladder actuate
        assert host.replicas == 3
        assert pool.leases["echo"].share == 3
        assert pool.slots.capacity == 3  # scaling up adds real capacity
        host.remove_replica(2)
        assert host.replicas == 1
        assert pool.slots.capacity == 2

    def test_queue_pressure_reads_through_the_lease(self, home):
        host, pool = pooled_host(home, echo_service(cost=0.050), slots=1)
        host.call_local({})
        host.call_local({})
        seen = {}

        def probe():  # mid-run: one call executing, one queued
            seen["busy"] = host.busy_workers
            seen["queued"] = host.queue_length
            seen["backlog"] = pool.backlog

        home.kernel.schedule(0.010, probe)
        home.kernel.run()
        assert seen == {"busy": 1, "queued": 1, "backlog": 1}
        assert host.queue_length == 0


class TestPooledCrash:
    def test_crash_drops_queued_work_but_keeps_the_pool(self, home):
        host, pool = pooled_host(home, echo_service(cost=0.050), slots=1)
        first = host.call_local({})
        second = host.call_local({})

        def crash():
            host.crash()

        home.kernel.schedule(0.010, crash)
        home.kernel.run()
        assert not first.succeeded and not second.succeeded
        # every slot found its way back to the shared pool
        assert pool.slots.in_use == 0
        assert host.pool is pool

    def test_restart_after_crash_serves_again(self, home):
        host, pool = pooled_host(home, echo_service(), slots=2)
        host.crash()
        host.restart()
        done = host.call_local({})
        home.kernel.run()
        assert done.succeeded
        assert pool.slots.in_use == 0

    def test_close_detaches_the_lease(self, home):
        host, pool = pooled_host(home, echo_service(), slots=2)
        host.close()
        assert "echo" not in pool.leases
