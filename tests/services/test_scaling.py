"""Unit tests for the autoscaler."""

import pytest

from repro.services import FunctionService, ServiceHost
from repro.services.scaling import AutoScaler, ScalingPolicy


def busy_host(home, cost=0.100, replicas=1):
    service = FunctionService("busy", lambda p, c: p, reference_cost_s=cost)
    return ServiceHost(home.kernel, home.desktop, service, home.transport,
                       replicas=replicas)


class TestScalingPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScalingPolicy(check_interval_s=0)
        with pytest.raises(ValueError):
            ScalingPolicy(window=0)
        with pytest.raises(ValueError):
            ScalingPolicy(max_replicas=0)
        with pytest.raises(ValueError):
            ScalingPolicy(step=0)
        with pytest.raises(ValueError):
            ScalingPolicy(min_replicas=0)
        with pytest.raises(ValueError):
            ScalingPolicy(max_replicas=2, min_replicas=3)
        with pytest.raises(ValueError):
            ScalingPolicy(cooldown_s=-1.0)


class TestAutoScaler:
    def test_scales_up_under_sustained_queue(self, home):
        host = busy_host(home)
        policy = ScalingPolicy(check_interval_s=0.1, queue_threshold=1.0,
                               window=3, max_replicas=3)
        scaler = AutoScaler(home.kernel, policy)
        scaler.watch(host)
        scaler.start()

        def load():
            # sustained offered load of ~20 req/s against 10 req/s capacity
            while home.kernel.now < 3.0:
                host.call_local({})
                yield 0.05

        home.kernel.process(load())
        home.kernel.run(until=4.0)
        scaler.stop()
        home.kernel.run(until=4.2)
        assert host.replicas > 1
        assert scaler.events
        event = scaler.events[0]
        assert event.service == "busy"
        assert event.to_replicas == event.from_replicas + 1
        assert event.avg_queue >= 1.0

    def test_respects_max_replicas(self, home):
        host = busy_host(home)
        policy = ScalingPolicy(check_interval_s=0.05, queue_threshold=0.5,
                               window=2, max_replicas=2)
        scaler = AutoScaler(home.kernel, policy)
        scaler.watch(host)
        scaler.start()

        def load():
            while home.kernel.now < 3.0:
                host.call_local({})
                yield 0.02

        home.kernel.process(load())
        home.kernel.run(until=3.5)
        scaler.stop()
        home.kernel.run(until=4.0)
        assert host.replicas == 2

    def test_idle_service_never_scales(self, home):
        host = busy_host(home)
        scaler = AutoScaler(home.kernel,
                            ScalingPolicy(check_interval_s=0.1, window=2))
        scaler.watch(host)
        scaler.start()
        home.kernel.run(until=2.0)
        scaler.stop()
        home.kernel.run(until=2.5)
        assert host.replicas == 1
        assert scaler.events == []

    def test_start_is_idempotent(self, home):
        scaler = AutoScaler(home.kernel)
        scaler.start()
        scaler.start()
        scaler.stop()
        home.kernel.run(until=1.0)


class TestWindowAccounting:
    """Regression for the overlapping-window bug: ``del samples[:-window]``
    kept a full window after every decision, so one sustained episode
    re-triggered a scale-up on every subsequent tick."""

    def test_one_event_per_sustained_load_episode(self, home):
        host = busy_host(home)
        policy = ScalingPolicy(check_interval_s=0.1, queue_threshold=1.0,
                               window=3, max_replicas=6, cooldown_s=1.0)
        scaler = AutoScaler(home.kernel, policy)
        scaler.watch(host)
        scaler.start()

        def load():
            # one sustained episode: heavy offered load for 1.5 s
            while home.kernel.now < 1.5:
                host.call_local({})
                yield 0.02

        home.kernel.process(load())
        home.kernel.run(until=1.5)
        ups = [e for e in scaler.events if e.reason == "scale_up"]
        assert len(ups) == 1, (
            f"one episode produced {len(ups)} scale-ups: "
            f"{[(e.at, e.to_replicas) for e in ups]}"
        )
        scaler.stop()

    def test_consecutive_events_respect_the_cooldown(self, home):
        host = busy_host(home)
        policy = ScalingPolicy(check_interval_s=0.1, queue_threshold=1.0,
                               window=3, max_replicas=6, cooldown_s=1.0)
        scaler = AutoScaler(home.kernel, policy)
        scaler.watch(host)
        scaler.start()

        def load():
            while home.kernel.now < 5.0:
                host.call_local({})
                yield 0.02

        home.kernel.process(load())
        home.kernel.run(until=6.0)
        scaler.stop()
        assert len(scaler.events) >= 2
        gaps = [b.at - a.at
                for a, b in zip(scaler.events, scaler.events[1:])]
        assert all(gap >= policy.cooldown_s for gap in gaps), gaps


class TestScaleDown:
    def test_sustained_idle_shrinks_back_to_min(self, home):
        host = busy_host(home)
        policy = ScalingPolicy(check_interval_s=0.1, queue_threshold=1.0,
                               window=3, max_replicas=4, cooldown_s=0.5)
        scaler = AutoScaler(home.kernel, policy)
        scaler.watch(host)
        scaler.start()

        def load():
            while home.kernel.now < 2.0:
                host.call_local({})
                yield 0.02

        home.kernel.process(load())
        home.kernel.run(until=8.0)
        scaler.stop()
        assert any(e.reason == "scale_up" for e in scaler.events)
        downs = [e for e in scaler.events if e.reason == "scale_down"]
        assert downs, "idle service never scaled back down"
        assert host.replicas == policy.min_replicas
        for event in downs:
            assert event.to_replicas == event.from_replicas - 1
            assert event.avg_queue == 0.0

    def test_never_shrinks_below_min_replicas(self, home):
        host = busy_host(home)
        scaler = AutoScaler(home.kernel,
                            ScalingPolicy(check_interval_s=0.1, window=2,
                                          cooldown_s=0.0))
        scaler.watch(host)
        scaler.start()
        home.kernel.run(until=3.0)
        scaler.stop()
        assert host.replicas == 1
        assert scaler.events == []


class TestLifecycle:
    def test_stop_cancels_the_pending_tick(self, home):
        scaler = AutoScaler(home.kernel,
                            ScalingPolicy(check_interval_s=10.0))
        scaler.start()
        assert home.kernel.pending_events > 0
        scaler.stop()
        # the interrupted process unwinds immediately; nothing keeps the
        # kernel alive for the remainder of the 10 s tick
        home.kernel.run()
        assert home.kernel.now < 10.0
        assert home.kernel.pending_events == 0

    def test_watch_is_idempotent_and_keyed_by_identity(self, home):
        host_a = busy_host(home)
        service_b = FunctionService("busy2", lambda p, c: p,
                                    reference_cost_s=0.1, default_port=7901)
        host_b = ServiceHost(home.kernel, home.desktop, service_b,
                             home.transport)
        scaler = AutoScaler(home.kernel)
        scaler.watch(host_a)
        scaler.watch(host_a)
        scaler.watch(host_b)
        assert len(scaler._hosts) == 2
        assert host_a in scaler._samples and host_b in scaler._samples
        # distinct host objects keep separate sample streams
        scaler._samples[host_a].append(5)
        assert scaler._samples[host_b] == []
