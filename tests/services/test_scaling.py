"""Unit tests for the autoscaler."""

import pytest

from repro.services import FunctionService, ServiceHost
from repro.services.scaling import AutoScaler, ScalingPolicy


def busy_host(home, cost=0.100, replicas=1):
    service = FunctionService("busy", lambda p, c: p, reference_cost_s=cost)
    return ServiceHost(home.kernel, home.desktop, service, home.transport,
                       replicas=replicas)


class TestScalingPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScalingPolicy(check_interval_s=0)
        with pytest.raises(ValueError):
            ScalingPolicy(window=0)
        with pytest.raises(ValueError):
            ScalingPolicy(max_replicas=0)
        with pytest.raises(ValueError):
            ScalingPolicy(step=0)


class TestAutoScaler:
    def test_scales_up_under_sustained_queue(self, home):
        host = busy_host(home)
        policy = ScalingPolicy(check_interval_s=0.1, queue_threshold=1.0,
                               window=3, max_replicas=3)
        scaler = AutoScaler(home.kernel, policy)
        scaler.watch(host)
        scaler.start()

        def load():
            # sustained offered load of ~20 req/s against 10 req/s capacity
            while home.kernel.now < 3.0:
                host.call_local({})
                yield 0.05

        home.kernel.process(load())
        home.kernel.run(until=4.0)
        scaler.stop()
        home.kernel.run(until=4.2)
        assert host.replicas > 1
        assert scaler.events
        event = scaler.events[0]
        assert event.service == "busy"
        assert event.to_replicas == event.from_replicas + 1
        assert event.avg_queue >= 1.0

    def test_respects_max_replicas(self, home):
        host = busy_host(home)
        policy = ScalingPolicy(check_interval_s=0.05, queue_threshold=0.5,
                               window=2, max_replicas=2)
        scaler = AutoScaler(home.kernel, policy)
        scaler.watch(host)
        scaler.start()

        def load():
            while home.kernel.now < 3.0:
                host.call_local({})
                yield 0.02

        home.kernel.process(load())
        home.kernel.run(until=3.5)
        scaler.stop()
        home.kernel.run(until=4.0)
        assert host.replicas == 2

    def test_idle_service_never_scales(self, home):
        host = busy_host(home)
        scaler = AutoScaler(home.kernel,
                            ScalingPolicy(check_interval_s=0.1, window=2))
        scaler.watch(host)
        scaler.start()
        home.kernel.run(until=2.0)
        scaler.stop()
        home.kernel.run(until=2.5)
        assert host.replicas == 1
        assert scaler.events == []

    def test_start_is_idempotent(self, home):
        scaler = AutoScaler(home.kernel)
        scaler.start()
        scaler.start()
        scaler.stop()
        home.kernel.run(until=1.0)
