"""Unit tests for the built-in services (handlers exercised directly)."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.frames import SyntheticCamera, VideoFrame
from repro.motion import Squat, SubjectParams, make_model, sample_subject_sequence
from repro.services import (
    ActivityClassifierService,
    DisplayService,
    DisplaySink,
    FaceDetectionService,
    ImageClassificationService,
    IoTActuatorService,
    IoTDeviceFleet,
    ObjectDetectionService,
    PoseDetectorService,
    RepCounterService,
    ServiceCallContext,
)
from repro.frames.framestore import FrameStore
from repro.sim import Kernel
from repro.vision import ActivityRecognizer, ColorHistogramClassifier, window_feature
from repro.vision.datasets import generate_activity_dataset


@pytest.fixture
def ctx():
    return ServiceCallContext(
        device_name="desktop",
        frame_store=FrameStore("desktop"),
        rng=np.random.default_rng(0),
        kernel=Kernel(),
    )


def squat_frame(render=False, t=0.3):
    camera = SyntheticCamera("phone", Squat(), render=render,
                             rng=np.random.default_rng(0) if render else None)
    return camera.capture(1, t)


class TestPoseService:
    def test_detects_and_returns_arrays(self, ctx):
        result = PoseDetectorService().handle({"frame": squat_frame()}, ctx)
        assert result["detected"]
        assert result["keypoints"].shape == (17, 2)
        assert result["visibility"].shape == (17,)
        assert len(result["bbox"]) == 4

    def test_empty_scene_miss(self, ctx):
        empty = VideoFrame(frame_id=1, source="cam", capture_time=0.0)
        result = PoseDetectorService().handle({"frame": empty}, ctx)
        assert result == {"detected": False, "frame_id": 1}

    def test_rejects_bad_payload(self, ctx):
        with pytest.raises(ServiceError):
            PoseDetectorService().handle({"frame": "not-a-frame"}, ctx)


@pytest.fixture(scope="module")
def recognizer():
    dataset = generate_activity_dataset(
        activities=("squat", "stand"), train_subjects=3, test_subjects=1,
        duration_s=4.0, seed=0,
    )
    return ActivityRecognizer(k=5).fit(dataset.train_windows, dataset.train_labels)


class TestActivityService:
    def test_classifies_window_feature(self, ctx, recognizer):
        service = ActivityClassifierService(recognizer)
        window = sample_subject_sequence(Squat(), SubjectParams(), 15.0, 1.0)
        result = service.handle({"window_feature": window_feature(window)}, ctx)
        assert result["label"] == "squat"
        assert 0 < result["confidence"] <= 1

    def test_rejects_untrained_model(self):
        with pytest.raises(ServiceError):
            ActivityClassifierService(ActivityRecognizer())

    def test_rejects_wrong_feature_size(self, ctx, recognizer):
        service = ActivityClassifierService(recognizer)
        with pytest.raises(ServiceError):
            service.handle({"window_feature": np.zeros(10)}, ctx)

    def test_rejects_missing_feature(self, ctx, recognizer):
        with pytest.raises(ServiceError):
            ActivityClassifierService(recognizer).handle({}, ctx)


class TestRepCounterService:
    def test_counts_from_features(self, ctx):
        poses = sample_subject_sequence(Squat(period_s=2.0), SubjectParams(),
                                        15.0, 3 * 2.0 + 0.3)
        features = np.stack([p.normalized().flatten() for p in poses])
        result = RepCounterService().handle({"features": features}, ctx)
        assert result["reps"] == 3
        assert result["frames"] == len(poses)

    def test_cost_scales_with_bout_length(self):
        service = RepCounterService()
        short = service.compute_cost({"features": np.zeros((10, 34))})
        long = service.compute_cost({"features": np.zeros((500, 34))})
        assert long > short

    def test_rejects_bad_payload(self, ctx):
        with pytest.raises(ServiceError):
            RepCounterService().handle({}, ctx)
        with pytest.raises(ServiceError):
            RepCounterService().handle({"features": np.zeros(5)}, ctx)


class TestDisplayService:
    def test_records_to_sink_with_timing(self, ctx):
        sink = DisplaySink()
        service = DisplayService(sink)
        frame = squat_frame(t=0.5)
        ctx.kernel.schedule(0.8, lambda: None)
        ctx.kernel.run()  # advance clock to 0.8
        result = service.handle(
            {"frame": frame, "label": "squat", "reps": 3}, ctx
        )
        assert result["shown"]
        assert sink.count == 1
        shown = sink.frames[0]
        assert shown.label == "squat"
        assert shown.reps == 3
        assert shown.glass_to_glass_s == pytest.approx(0.3)

    def test_sink_caps_history(self):
        sink = DisplaySink(keep_last=2)
        for i in range(4):
            from repro.services.builtin.display import DisplayedFrame

            sink.show(DisplayedFrame(frame_id=i, shown_at=0, capture_time=0))
        assert sink.count == 2
        assert sink.frames[0].frame_id == 2

    def test_rejects_frameless_payload(self, ctx):
        with pytest.raises(ServiceError):
            DisplayService().handle({"label": "x"}, ctx)


class TestPixelServices:
    def test_face_detection_on_rendered_frame(self, ctx):
        result = FaceDetectionService().handle({"frame": squat_frame(render=True)}, ctx)
        assert result["found"]

    def test_face_detection_requires_pixels(self, ctx):
        with pytest.raises(ServiceError):
            FaceDetectionService().handle({"frame": squat_frame(render=False)}, ctx)

    def test_object_detection_requires_rgb(self, ctx):
        # rendered pose frames are grayscale: object detector must refuse
        with pytest.raises(ServiceError):
            ObjectDetectionService().handle({"frame": squat_frame(render=True)}, ctx)

    def test_object_detection_on_scene(self, ctx):
        from repro.vision import BBox, SceneObject, render_scene

        pixels = render_scene([SceneObject("cup", BBox(20, 20, 60, 60))], 120, 90)
        frame = VideoFrame(frame_id=1, source="cam", capture_time=0.0,
                           width=120, height=90, pixels=pixels)
        result = ObjectDetectionService().handle({"frame": frame}, ctx)
        assert [d["label"] for d in result["detections"]] == ["cup"]

    def test_image_classifier(self, ctx):
        from repro.vision import BBox, SceneObject, render_scene

        red = render_scene([SceneObject("cup", BBox(5, 5, 110, 85))], 120, 90)
        green = render_scene([SceneObject("book", BBox(5, 5, 110, 85))], 120, 90)
        model = ColorHistogramClassifier().fit([red, green], ["red", "green"])
        service = ImageClassificationService(model)
        frame = VideoFrame(frame_id=1, source="cam", capture_time=0.0,
                           width=120, height=90, pixels=red)
        assert service.handle({"frame": frame}, ctx)["label"] == "red"

    def test_image_classifier_requires_fitted_model(self):
        with pytest.raises(ServiceError):
            ImageClassificationService(ColorHistogramClassifier())


class TestIoTService:
    def test_toggle_and_log(self, ctx):
        fleet = IoTDeviceFleet()
        fleet.ensure("light", initial=False)
        service = IoTActuatorService(fleet)
        result = service.handle({"target": "light", "action": "toggle"}, ctx)
        assert result["state"] is True
        result = service.handle({"target": "light", "action": "toggle"}, ctx)
        assert result["state"] is False
        assert len(fleet.log) == 2

    def test_set_on_off(self, ctx):
        fleet = IoTDeviceFleet()
        fleet.ensure("camera")
        service = IoTActuatorService(fleet)
        assert service.handle({"target": "camera", "action": "on"}, ctx)["state"]
        assert not service.handle({"target": "camera", "action": "off"}, ctx)["state"]

    def test_unknown_device_rejected(self, ctx):
        with pytest.raises(ServiceError):
            IoTActuatorService().handle({"target": "toaster"}, ctx)

    def test_unknown_action_rejected(self, ctx):
        fleet = IoTDeviceFleet()
        fleet.ensure("light")
        with pytest.raises(ServiceError):
            IoTActuatorService(fleet).handle({"target": "light", "action": "explode"}, ctx)


class TestDisplayOverlayCompositing:
    def test_overlay_burned_into_rendered_frames(self, ctx):
        from repro.services.builtin.display import OVERLAY_LEVEL

        frame = squat_frame(render=True)
        sink = DisplaySink()
        DisplayService(sink).handle(
            {"frame": frame, "keypoints": frame.truth.keypoints}, ctx
        )
        shown = sink.frames[0]
        assert shown.composited is not None
        assert (shown.composited == OVERLAY_LEVEL).sum() >= 17
        # the source pixels were not mutated
        assert not np.array_equal(shown.composited, frame.pixels)

    def test_annotated_frames_skip_compositing(self, ctx):
        frame = squat_frame(render=False)
        sink = DisplaySink()
        DisplayService(sink).handle(
            {"frame": frame, "keypoints": frame.truth.keypoints}, ctx
        )
        assert sink.frames[0].composited is None

    def test_offscreen_keypoints_ignored(self, ctx):
        from repro.services.builtin.display import composite_overlay

        frame = squat_frame(render=True)
        wild = np.full((17, 2), 10_000.0)
        image = composite_overlay(frame, wild)
        np.testing.assert_array_equal(image, frame.pixels)
