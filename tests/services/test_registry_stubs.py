"""Unit tests for the service registry and stub selection."""

import pytest

from repro.errors import ServiceError
from repro.services import (
    FunctionService,
    LocalServiceStub,
    RemoteServiceStub,
    ServiceHost,
    ServiceRegistry,
    make_stub,
)


def host_on(home, device, name="svc", port=7100):
    service = FunctionService(name, lambda p, c: p, default_port=port)
    return ServiceHost(home.kernel, home.devices[device], service, home.transport)


class TestRegistry:
    def test_register_and_query(self, home):
        registry = ServiceRegistry()
        host = host_on(home, "desktop")
        registry.register(host)
        assert "svc" in registry
        assert registry.service_names() == ["svc"]
        assert registry.devices_hosting("svc") == ["desktop"]
        assert registry.any_host("svc") is host

    def test_duplicate_registration_rejected(self, home):
        registry = ServiceRegistry()
        registry.register(host_on(home, "desktop"))
        with pytest.raises(ServiceError):
            registry.register(host_on(home, "desktop", port=7101))

    def test_same_service_on_two_devices(self, home):
        registry = ServiceRegistry()
        registry.register(host_on(home, "desktop"))
        registry.register(host_on(home, "phone", port=7101))
        assert sorted(registry.devices_hosting("svc")) == ["desktop", "phone"]
        assert registry.host_on("svc", "phone").device.name == "phone"

    def test_missing_service_queries(self, home):
        registry = ServiceRegistry()
        assert registry.host_on("nope", "desktop") is None
        with pytest.raises(ServiceError):
            registry.any_host("nope")
        with pytest.raises(ServiceError):
            registry.address_of("nope")

    def test_address_of_specific_device(self, home):
        registry = ServiceRegistry()
        host = host_on(home, "desktop")
        registry.register(host)
        assert registry.address_of("svc", "desktop") == host.address
        with pytest.raises(ServiceError):
            registry.address_of("svc", "phone")

    def test_unregister(self, home):
        registry = ServiceRegistry()
        host = host_on(home, "desktop")
        registry.register(host)
        registry.unregister(host)
        assert "svc" not in registry


class TestMakeStub:
    def test_colocated_caller_gets_local_stub(self, home):
        registry = ServiceRegistry()
        registry.register(host_on(home, "desktop"))
        stub = make_stub(home.kernel, home.transport, registry,
                         home.desktop, "svc")
        assert isinstance(stub, LocalServiceStub)
        assert stub.is_local

    def test_remote_caller_gets_remote_stub(self, home):
        registry = ServiceRegistry()
        registry.register(host_on(home, "desktop"))
        stub = make_stub(home.kernel, home.transport, registry,
                         home.phone, "svc")
        assert isinstance(stub, RemoteServiceStub)
        assert not stub.is_local

    def test_prefer_local_false_forces_remote(self, home):
        registry = ServiceRegistry()
        registry.register(host_on(home, "desktop"))
        stub = make_stub(home.kernel, home.transport, registry,
                         home.desktop, "svc", prefer_local=False)
        assert isinstance(stub, RemoteServiceStub)

    def test_unknown_service_raises(self, home):
        registry = ServiceRegistry()
        with pytest.raises(ServiceError):
            make_stub(home.kernel, home.transport, registry, home.phone, "nope")

    def test_stub_roundtrip_local_and_remote(self, home):
        registry = ServiceRegistry()
        registry.register(host_on(home, "desktop"))
        local = make_stub(home.kernel, home.transport, registry,
                          home.desktop, "svc")
        remote = make_stub(home.kernel, home.transport, registry,
                           home.phone, "svc")
        r1 = local.call({"v": 1})
        r2 = remote.call({"v": 2})
        home.kernel.run()
        assert r1.value == {"v": 1}
        assert r2.value == {"v": 2}
        assert local.calls == 1 and remote.calls == 1
