"""Unit tests for service hosting: local/remote paths, queueing, replicas."""

import pytest

from repro.errors import ServiceError
from repro.frames import SyntheticCamera
from repro.motion import Squat
from repro.services import FunctionService, ServiceHost
from repro.services.builtin.pose import PoseDetectorService


def frame(home):
    return SyntheticCamera("phone", Squat()).capture(1, 0.0)


def echo_service(cost=0.010):
    return FunctionService("echo", lambda payload, ctx: payload, reference_cost_s=cost)


class TestLocalCalls:
    def test_local_call_resolves_refs_without_copy(self, home):
        host = ServiceHost(home.kernel, home.desktop, PoseDetectorService(),
                           home.transport)
        ref = home.desktop.frame_store.put(frame(home))
        result = host.call_local({"frame": ref})
        home.kernel.run()
        assert result.value["detected"]
        # the ref is still owned by the caller (borrow semantics)
        assert home.desktop.frame_store.contains(ref)

    def test_local_call_charges_compute_time(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(0.050),
                           home.transport)
        done = host.call_local({"x": 1})
        home.kernel.run_until_resolved(done)
        assert home.kernel.now >= 0.035  # 50 ms minus jitter

    def test_single_worker_queues_requests(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(0.050),
                           home.transport, replicas=1)
        first = host.call_local({})
        second = host.call_local({})
        home.kernel.run()
        assert first.succeeded and second.succeeded
        assert home.kernel.now >= 0.090  # serialized: ~2 x 50 ms
        assert host.total_wait_s > 0.040

    def test_two_replicas_run_in_parallel(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(0.050),
                           home.transport, replicas=2)
        first = host.call_local({})
        second = host.call_local({})
        home.kernel.run()
        assert first.succeeded and second.succeeded
        assert home.kernel.now < 0.080

    def test_add_replica_unblocks_queue(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(0.100),
                           home.transport, replicas=1)
        for _ in range(3):
            host.call_local({})
        queue_seen = {}

        def grow():
            queue_seen["before"] = host.queue_length
            host.add_replica(2)
            queue_seen["after"] = host.queue_length

        home.kernel.schedule(0.010, grow)
        home.kernel.run()
        assert queue_seen["before"] == 2  # two waited behind one worker
        assert queue_seen["after"] == 0  # growth drained the queue
        assert host.replicas == 3
        assert home.kernel.now < 0.160  # latecomers ran concurrently

    def test_handler_crash_fails_signal_and_frees_worker(self, home):
        def bad(payload, ctx):
            raise RuntimeError("boom")

        host = ServiceHost(home.kernel, home.desktop,
                           FunctionService("bad", bad), home.transport)
        first = host.call_local({})
        second = host.call_local({})
        home.kernel.run()
        assert first.failed and isinstance(first.exception, ServiceError)
        assert second.failed  # worker was not leaked: second also ran
        assert host.errors == 2
        assert host.busy_workers == 0

    def test_replicas_validation(self, home):
        with pytest.raises(ServiceError):
            ServiceHost(home.kernel, home.desktop, echo_service(),
                        home.transport, replicas=0)

    def test_remove_replica_shrinks_the_pool(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(0.050),
                           home.transport, replicas=3)
        host.remove_replica(2)
        assert host.replicas == 1
        first = host.call_local({})
        second = host.call_local({})
        home.kernel.run()
        assert first.succeeded and second.succeeded
        assert home.kernel.now >= 0.090  # serialized on the surviving slot

    def test_remove_replica_validation(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(),
                           home.transport, replicas=2)
        with pytest.raises(ServiceError):
            host.remove_replica(0)
        with pytest.raises(ServiceError, match="below one replica"):
            host.remove_replica(2)

    def test_remove_replica_lets_busy_calls_finish(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(0.100),
                           home.transport, replicas=2)
        first = host.call_local({})
        second = host.call_local({})

        def shrink():
            host.remove_replica(1)

        home.kernel.schedule(0.010, shrink)
        home.kernel.run()
        # both in-progress calls completed in parallel despite the shrink
        assert first.succeeded and second.succeeded
        assert home.kernel.now < 0.150
        assert host.replicas == 1


class TestRemoteCalls:
    def test_remote_call_pays_decode_then_serves(self, home):
        from repro.services import RemoteServiceStub

        host = ServiceHost(home.kernel, home.desktop, PoseDetectorService(),
                           home.transport)
        stub = RemoteServiceStub(home.kernel, home.transport, home.phone, host)
        ref = home.phone.frame_store.put(frame(home))
        result = stub.call({"frame": ref})
        home.kernel.run_until_resolved(result)
        assert result.value["detected"]
        assert host.remote_calls == 1
        assert stub.frames_shipped == 1
        # caller keeps its hold (service calls borrow)
        assert home.phone.frame_store.contains(ref)

    def test_remote_call_slower_than_local(self, home):
        from repro.services import RemoteServiceStub

        host = ServiceHost(home.kernel, home.desktop, PoseDetectorService(),
                           home.transport)
        ref = home.desktop.frame_store.put(frame(home))
        local = host.call_local({"frame": ref})
        home.kernel.run_until_resolved(local)
        local_time = home.kernel.now

        home2 = type(home)()
        host2 = ServiceHost(home2.kernel, home2.desktop, PoseDetectorService(),
                            home2.transport)
        stub = RemoteServiceStub(home2.kernel, home2.transport, home2.phone, host2)
        ref2 = home2.phone.frame_store.put(frame(home2))
        remote = stub.call({"frame": ref2})
        home2.kernel.run_until_resolved(remote)
        assert home2.kernel.now > local_time + 0.010  # ship + marshal + reply

    def test_remote_prepare_time_tracked(self, home):
        from repro.services import RemoteServiceStub

        host = ServiceHost(home.kernel, home.desktop, PoseDetectorService(),
                           home.transport)
        stub = RemoteServiceStub(home.kernel, home.transport, home.phone, host)
        ref = home.phone.frame_store.put(frame(home))
        result = stub.call({"frame": ref})
        home.kernel.run_until_resolved(result)
        assert stub.last_prepare_s > 0.002  # JPEG encode + marshal


class TestStatelessness:
    def test_builtin_services_do_not_accumulate_state(self, home):
        """The §2.2 contract: instance dict unchanged across calls."""
        service = PoseDetectorService()
        host = ServiceHost(home.kernel, home.desktop, service, home.transport)
        before = dict(vars(service))
        for i in range(3):
            host.call_local({"frame": home.desktop.frame_store.put(frame(home))})
        home.kernel.run()
        assert vars(service) == before
