"""The host result cache: key derivation, LRU/TTL mechanics, call paths."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.frames import FrameStore, VideoFrame
from repro.services import (
    MISS,
    FunctionService,
    RemoteServiceStub,
    ResultCache,
    ServiceHost,
    payload_cache_key,
)
from repro.services.builtin.pose import PoseDetectorService


def make_frame(frame_id=1, t=0.0, fill=7):
    pixels = np.full((24, 32, 3), fill, dtype=np.uint8)
    return VideoFrame(frame_id=frame_id, source="cam", capture_time=t,
                      width=32, height=24, pixels=pixels)


class TestResultCache:
    def test_roundtrip_and_miss_sentinel(self):
        cache = ResultCache()
        assert cache.lookup("k", now=0.0) is MISS
        cache.store("k", {"reps": 3}, now=0.0)
        assert cache.lookup("k", now=1.0) == {"reps": 3}
        assert cache.hits == 1 and cache.misses == 1

    def test_none_is_a_valid_cached_value(self):
        cache = ResultCache()
        cache.store("k", None, now=0.0)
        assert cache.lookup("k", now=0.0) is None

    def test_lru_eviction_respects_recency(self):
        cache = ResultCache(max_entries=2)
        cache.store("a", 1, now=0.0)
        cache.store("b", 2, now=0.0)
        cache.lookup("a", now=0.0)  # refresh a: b is now LRU
        cache.store("c", 3, now=0.0)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_ttl_expires_entries(self):
        cache = ResultCache(ttl_s=1.0)
        cache.store("k", 1, now=0.0)
        assert cache.lookup("k", now=0.5) == 1
        assert cache.lookup("k", now=2.0) is MISS
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_invalidate_all_and_by_prefix(self):
        cache = ResultCache()
        cache.store("pose:aa", 1, now=0.0)
        cache.store("pose:bb", 2, now=0.0)
        cache.store("reps:cc", 3, now=0.0)
        assert cache.invalidate(prefix="pose:") == 2
        assert "reps:cc" in cache
        assert cache.invalidate() == 1
        assert len(cache) == 0
        assert cache.invalidations == 3

    def test_invalidate_bare_name_respects_the_key_boundary(self):
        """Regression: invalidating service ``"pose"`` used to match any
        key *starting with* ``pose`` — wiping ``pose_v2``'s entries too."""
        cache = ResultCache()
        cache.store("pose:aa", 1, now=0.0)
        cache.store("pose_v2:aa", 2, now=0.0)
        assert cache.invalidate(prefix="pose") == 1
        assert "pose_v2:aa" in cache
        assert "pose:aa" not in cache

    def test_invalidate_with_colon_matches_raw_for_digest_ranges(self):
        cache = ResultCache()
        cache.store("pose:ab12", 1, now=0.0)
        cache.store("pose:cd34", 2, now=0.0)
        assert cache.invalidate(prefix="pose:ab") == 1
        assert "pose:cd34" in cache

    def test_invalidations_counts_entries_removed_not_calls(self):
        cache = ResultCache()
        cache.store("pose:aa", 1, now=0.0)
        cache.store("pose:bb", 2, now=0.0)
        assert cache.invalidate(prefix="pose") == 2
        assert cache.invalidate(prefix="pose") == 0  # already empty
        assert cache.invalidate() == 0
        assert cache.invalidations == 2

    def test_hit_rate(self):
        cache = ResultCache()
        assert cache.hit_rate() == 0.0
        cache.store("k", 1, now=0.0)
        cache.lookup("k", now=0.0)
        cache.lookup("gone", now=0.0)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_parameter_validation(self):
        with pytest.raises(ServiceError):
            ResultCache(max_entries=0)
        with pytest.raises(ServiceError):
            ResultCache(ttl_s=0.0)


class TestPayloadCacheKey:
    def test_key_is_stable_across_ref_ids(self):
        store = FrameStore("phone")
        ref_a = store.put(make_frame(frame_id=1, t=0.0))
        ref_b = store.put(make_frame(frame_id=2, t=1.0))
        assert ref_a.ref_id != ref_b.ref_id
        key_a = payload_cache_key("pose", {"frame": ref_a}, store=store)
        key_b = payload_cache_key("pose", {"frame": ref_b}, store=store)
        assert key_a is not None and key_a == key_b
        assert key_a.startswith("pose:")

    def test_params_are_part_of_the_key(self):
        store = FrameStore("phone")
        ref = store.put(make_frame())
        low = payload_cache_key("pose", {"frame": ref, "thresh": 0.3}, store=store)
        high = payload_cache_key("pose", {"frame": ref, "thresh": 0.9}, store=store)
        assert low != high

    def test_service_name_namespaces_keys(self):
        assert payload_cache_key("a", {"x": 1}) != payload_cache_key("b", {"x": 1})

    def test_uncacheable_payloads_get_no_key(self):
        store = FrameStore("phone")
        assert payload_cache_key("pose", {"x": object()}, store=store) is None
        # refs without a store, and foreign/released refs, are uncacheable
        ref = store.put(make_frame())
        assert payload_cache_key("pose", {"frame": ref}) is None
        store.release(ref)
        assert payload_cache_key("pose", {"frame": ref}, store=store) is None

    def test_foreign_ref_is_uncacheable_not_a_crash(self):
        """A ref minted by another device's store must degrade to
        'no key' (skip the cache) rather than raise inside the host."""
        phone_store = FrameStore("phone")
        desktop_store = FrameStore("desktop")
        foreign = phone_store.put(make_frame())
        assert payload_cache_key("pose", {"frame": foreign},
                                 store=desktop_store) is None
        # and a mixed payload with one bad leaf is uncacheable as a whole
        local = desktop_store.put(make_frame(frame_id=2))
        assert payload_cache_key(
            "pose", {"a": local, "b": foreign}, store=desktop_store) is None


def counting_service(calls, cacheable=True, cost=0.010):
    def fn(payload, ctx):
        calls.append(payload)
        return {"n": len(calls)}
    service = FunctionService("echo", fn, reference_cost_s=cost)
    service.cacheable = cacheable
    return service


class TestHostCaching:
    def test_local_hit_skips_execution_entirely(self, home):
        calls = []
        host = ServiceHost(home.kernel, home.desktop, counting_service(calls),
                           home.transport)
        host.enable_result_cache()
        first = host.call_local({"x": 1})
        home.kernel.run_until_resolved(first)
        elapsed = home.kernel.now
        second = host.call_local({"x": 1})
        assert second.succeeded  # resolved synchronously: no worker, no queue
        assert home.kernel.now == elapsed  # zero simulated time
        assert second.value == first.value
        assert len(calls) == 1
        assert host.cache_hits == 1 and host.cache_misses == 1
        assert host.cache_hit_rate() == pytest.approx(0.5)

    def test_different_payloads_do_not_collide(self, home):
        calls = []
        host = ServiceHost(home.kernel, home.desktop, counting_service(calls),
                           home.transport)
        host.enable_result_cache()
        host.call_local({"x": 1})
        host.call_local({"x": 2})
        home.kernel.run()
        assert len(calls) == 2

    def test_non_cacheable_service_is_never_cached(self, home):
        calls = []
        host = ServiceHost(home.kernel, home.desktop,
                           counting_service(calls, cacheable=False),
                           home.transport)
        host.enable_result_cache()
        host.call_local({"x": 1})
        host.call_local({"x": 1})
        home.kernel.run()
        assert len(calls) == 2
        assert host.cache_hits == host.cache_misses == 0

    def test_explicit_invalidation_forces_reexecution(self, home):
        calls = []
        host = ServiceHost(home.kernel, home.desktop, counting_service(calls),
                           home.transport)
        host.enable_result_cache()
        done = host.call_local({"x": 1})
        home.kernel.run_until_resolved(done)
        assert host.invalidate_cache() == 1
        host.call_local({"x": 1})
        home.kernel.run()
        assert len(calls) == 2

    def test_crash_invalidates_cache(self, home):
        calls = []
        host = ServiceHost(home.kernel, home.desktop, counting_service(calls),
                           home.transport)
        host.enable_result_cache()
        done = host.call_local({"x": 1})
        home.kernel.run_until_resolved(done)
        host.crash()
        host.restart()
        host.call_local({"x": 1})
        home.kernel.run()
        assert len(calls) == 2  # a restarted process may carry a new model

    def test_ttl_applies_in_simulated_time(self, home):
        calls = []
        host = ServiceHost(home.kernel, home.desktop, counting_service(calls),
                           home.transport)
        host.enable_result_cache(ttl_s=0.5)
        done = host.call_local({"x": 1})
        home.kernel.run_until_resolved(done)
        home.kernel.schedule(1.0, lambda: host.call_local({"x": 1}))
        home.kernel.run()
        assert len(calls) == 2

    def test_ref_payloads_hit_across_byte_identical_frames(self, home):
        host = ServiceHost(home.kernel, home.desktop, PoseDetectorService(),
                           home.transport)
        host.enable_result_cache()
        store = home.desktop.frame_store
        ref_a = store.put(make_frame(frame_id=1, t=0.0))
        ref_b = store.put(make_frame(frame_id=2, t=1.0))
        first = host.call_local({"frame": ref_a})
        home.kernel.run_until_resolved(first)
        second = host.call_local({"frame": ref_b})
        assert second.succeeded
        assert host.cache_hits == 1

    def test_remote_hit_skips_decode_and_compute(self, home):
        host = ServiceHost(home.kernel, home.desktop, PoseDetectorService(),
                           home.transport)
        host.enable_result_cache()
        stub = RemoteServiceStub(home.kernel, home.transport, home.phone, host)
        store = home.phone.frame_store
        first = stub.call({"frame": store.put(make_frame(frame_id=1, t=0.0))})
        home.kernel.run_until_resolved(first)
        primed_at = home.kernel.now
        second = stub.call({"frame": store.put(make_frame(frame_id=2, t=1.0))})
        home.kernel.run_until_resolved(second)
        assert host.cache_hits == 1
        # the repeat paid wire + marshal but neither decode nor inference
        assert home.kernel.now - primed_at < primed_at
        assert second.value["detected"] == first.value["detected"]
