"""The shared replica pool: weighted work-conserving slot sharing."""

import pytest

from repro.errors import ServiceError, SimulationError
from repro.services.pool import PRI_BORROW, PRI_UNDER_SHARE, PoolLease, ReplicaPool
from repro.sim.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel()


def make_pool(kernel, slots=2):
    return ReplicaPool(kernel, "desktop", slots)


def take(kernel, lease, priority=None):
    """Request a slot and run the kernel until it is granted (or not)."""
    got = []
    lease.request(priority).wait(lambda value, exc: got.append((value, exc)))
    kernel.run()
    return got


class TestLeaseBasics:
    def test_lease_is_resource_compatible(self, kernel):
        pool = make_pool(kernel, slots=4)
        lease = PoolLease(pool, "pose", share=2)
        assert lease.capacity == 2  # host.replicas reads the share
        assert lease.in_use == 0
        assert lease.available == 4  # idle pool capacity is anyone's
        assert lease.queue_length == 0

    def test_grant_and_release_roundtrip(self, kernel):
        pool = make_pool(kernel)
        lease = PoolLease(pool, "pose", share=1)
        got = take(kernel, lease)
        assert len(got) == 1 and got[0][1] is None
        grant = got[0][0]
        assert lease.owns(grant)
        assert lease.held == 1 and pool.slots.in_use == 1
        lease.release(grant)
        assert not lease.owns(grant)
        assert lease.held == 0 and pool.slots.in_use == 0

    def test_release_of_foreign_grant_rejected(self, kernel):
        pool = make_pool(kernel)
        mine = PoolLease(pool, "pose", share=1)
        other = PoolLease(pool, "activity", share=1)
        grant = take(kernel, mine)[0][0]
        with pytest.raises(SimulationError, match="not issued through"):
            other.release(grant)

    def test_share_must_be_positive(self, kernel):
        with pytest.raises(ServiceError):
            PoolLease(make_pool(kernel), "pose", share=0)


class TestWorkConservation:
    def test_host_borrows_idle_slots_beyond_share(self, kernel):
        pool = make_pool(kernel, slots=3)
        lease = PoolLease(pool, "pose", share=1)
        grants = [take(kernel, lease)[0][0] for _ in range(3)]
        assert all(g is not None for g in grants)
        assert lease.held == 3  # share is 1, but idle slots are anyone's
        assert lease.borrowed_grants == 2
        assert pool.borrow_ratio() == pytest.approx(2 / 3)

    def test_under_share_outranks_borrower_when_scarce(self, kernel):
        pool = make_pool(kernel, slots=2)
        greedy = PoolLease(pool, "pose", share=1)
        fair = PoolLease(pool, "activity", share=1)
        held = [take(kernel, greedy)[0][0] for _ in range(2)]  # pool full
        # both queue: greedy would borrow again, fair is under its share
        greedy_waits = []
        fair_waits = []
        greedy.request().wait(lambda v, e: greedy_waits.append(v))
        fair.request().wait(lambda v, e: fair_waits.append(v))
        kernel.run()
        assert pool.backlog == 2
        greedy.release(held[0])  # one slot frees: fair must win despite FIFO
        kernel.run()
        assert fair_waits and not greedy_waits
        assert fair.held == 1

    def test_explicit_priority_overrides_the_share_heuristic(self, kernel):
        # priority shapes queue order; borrow accounting is judged at grant
        # time against the share, whatever priority the caller passed
        pool = make_pool(kernel, slots=1)
        lease = PoolLease(pool, "pose", share=2)
        holder = PoolLease(pool, "activity", share=1)
        held = take(kernel, holder)[0][0]  # pool full
        low, high = [], []
        lease.request(priority=PRI_BORROW).wait(lambda v, e: low.append(v))
        lease.request(priority=PRI_UNDER_SHARE).wait(lambda v, e: high.append(v))
        kernel.run()
        holder.release(held)
        kernel.run()
        assert high and not low  # the explicit high priority jumped the queue
        assert lease.borrowed_grants == 0  # under share -> not a borrow


class TestShareAdjustment:
    def test_grow_raises_share_and_pool_capacity(self, kernel):
        pool = make_pool(kernel, slots=2)
        pose = PoolLease(pool, "pose", share=2)
        pool.leases["pose"] = pose
        pose.grow(2)
        assert pose.share == 4
        assert pool.slots.capacity == 4  # scaling up adds real capacity

    def test_shrink_returns_share_but_keeps_base_slots(self, kernel):
        pool = make_pool(kernel, slots=2)
        pose = PoolLease(pool, "pose", share=4)
        pool.leases["pose"] = pose
        pool.rebalance()
        assert pool.slots.capacity == 4
        pose.shrink(3)
        assert pose.share == 1
        assert pool.slots.capacity == 2  # never below the device's cores

    def test_shrink_below_one_rejected(self, kernel):
        lease = PoolLease(make_pool(kernel), "pose", share=1)
        with pytest.raises(SimulationError):
            lease.shrink(1)

    def test_utilization_can_exceed_one_while_borrowing(self, kernel):
        pool = make_pool(kernel, slots=3)
        lease = PoolLease(pool, "pose", share=1)
        grants = [take(kernel, lease)[0][0] for _ in range(3)]
        kernel.schedule(1.0, lambda: None)
        kernel.run()
        assert lease.utilization() > 1.0
        for grant in grants:
            lease.release(grant)


class TestRevocation:
    def test_revoked_queued_request_returns_slot_to_pool(self, kernel):
        pool = make_pool(kernel, slots=1)
        crashing = PoolLease(pool, "pose", share=1)
        survivor = PoolLease(pool, "activity", share=1)
        grant = take(kernel, crashing)[0][0]
        stale = []
        crashing.request().wait(lambda v, e: stale.append(v))
        kernel.run()
        crashing.revoke_pending()  # the host crashed while queued
        crashing.release(grant)  # cleanup still releases held grants
        live = take(kernel, survivor)
        assert not stale  # the revoked request never got a grant
        assert crashing.revoked_grants == 1
        assert crashing.held == 0
        assert live and live[0][0] is not None  # the slot reached the survivor

    def test_held_grants_survive_revocation(self, kernel):
        pool = make_pool(kernel, slots=1)
        lease = PoolLease(pool, "pose", share=1)
        grant = take(kernel, lease)[0][0]
        lease.revoke_pending()
        assert lease.owns(grant)  # the in-flight worker's cleanup will fire
        lease.release(grant)
        assert pool.slots.in_use == 0


class TestReplicaPool:
    def test_attach_is_idempotent_per_service(self, kernel):
        pool = make_pool(kernel, slots=4)

        class FakeHost:
            service_name = "pose"
            replicas = 2

        first = pool.attach(FakeHost())
        second = pool.attach(FakeHost())
        assert first is second
        assert pool.total_shares == 2

    def test_detach_returns_the_share(self, kernel):
        pool = make_pool(kernel, slots=2)

        class FakeHost:
            service_name = "pose"
            replicas = 4

        pool.attach(FakeHost())
        assert pool.slots.capacity == 4
        pool.detach("pose")
        assert pool.total_shares == 0
        assert pool.slots.capacity == 2

    def test_contention_counts_queued_per_slot(self, kernel):
        pool = make_pool(kernel, slots=2)
        lease = PoolLease(pool, "pose", share=2)
        grants = [take(kernel, lease)[0][0] for _ in range(2)]
        assert pool.contention() == 0.0
        lease.request().wait(lambda v, e: None)
        kernel.run()
        assert pool.contention() == pytest.approx(0.5)
        for grant in grants:
            lease.release(grant)

    def test_stats_shape(self, kernel):
        pool = make_pool(kernel, slots=2)
        stats = pool.stats()
        assert stats["slots"] == 2
        assert stats["total_grants"] == 0
        assert stats["borrow_ratio"] == 0.0
