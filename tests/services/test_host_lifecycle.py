"""Unit tests for the ServiceHost failure lifecycle: crash, restart, close."""

import pytest

from repro.errors import ServiceError
from repro.net import Address, RpcClient
from repro.services import FunctionService, ServiceHost


def echo_service(cost=0.010):
    return FunctionService("echo", lambda payload, ctx: payload,
                           reference_cost_s=cost)


class TestCrash:
    def test_crash_fails_in_flight_calls(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(0.100),
                           home.transport)
        result = host.call_local({"x": 1})
        home.kernel.schedule(0.020, host.crash)
        home.kernel.run()
        assert result.failed
        assert isinstance(result.exception, ServiceError)
        assert host.dropped_in_flight == 1
        assert host.crashes == 1

    def test_crash_does_not_leak_cpu_cores(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(0.100),
                           home.transport)
        for _ in range(3):
            host.call_local({})
        home.kernel.schedule(0.020, host.crash)
        home.kernel.run()
        assert home.desktop.cpu.cores.in_use == 0

    def test_crashed_host_rejects_new_calls(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(),
                           home.transport)
        host.crash()
        result = host.call_local({})
        home.kernel.run()
        assert result.failed
        assert "down" in str(result.exception)

    def test_crash_unbinds_rpc_endpoint(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(),
                           home.transport, port=7000)
        assert home.transport.is_bound(host.address)
        host.crash()
        assert not home.transport.is_bound(host.address)
        # remote callers now see a (retryable) delivery failure, not an
        # RPC-level "service down" reply
        client = RpcClient(home.kernel, home.transport, "phone")
        result = client.call(Address("desktop", 7000), {})
        home.kernel.run()
        assert result.failed
        assert not getattr(result.exception, "remote", False)

    def test_crash_is_idempotent(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(),
                           home.transport)
        host.crash()
        host.crash()
        assert host.crashes == 1


class TestRestart:
    def test_restart_rebinds_and_serves_again(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(0.010),
                           home.transport)
        host.crash()
        host.restart()
        assert host.up
        assert home.transport.is_bound(host.address)
        result = host.call_local({"x": 2})
        home.kernel.run()
        assert result.value == {"x": 2}

    def test_restart_replaces_the_worker_pool(self, home):
        """Workers held at crash time die with the old pool; the fresh pool
        starts at full capacity."""
        host = ServiceHost(home.kernel, home.desktop, echo_service(0.100),
                           home.transport, replicas=2)
        host.call_local({})
        host.call_local({})
        home.kernel.run(until=0.020)
        assert host.busy_workers == 2
        host.crash()
        host.restart()
        assert host.busy_workers == 0
        assert host.replicas == 2
        first = host.call_local({})
        second = host.call_local({})
        home.kernel.run()
        assert first.succeeded and second.succeeded

    def test_restart_preserves_added_replicas(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(),
                           home.transport, replicas=1)
        host.add_replica(2)
        host.crash()
        host.restart()
        assert host.replicas == 3

    def test_restart_of_live_host_is_a_noop(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(),
                           home.transport)
        host.restart()
        assert host.up and host.crashes == 0


class TestClose:
    def test_close_is_idempotent(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(),
                           home.transport)
        host.close()
        host.close()
        assert not host.up
        assert not home.transport.is_bound(host.address)

    def test_close_fails_pending_calls(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(0.100),
                           home.transport)
        result = host.call_local({})
        home.kernel.schedule(0.020, host.close)
        home.kernel.run()
        assert result.failed
        assert "closed" in str(result.exception)

    def test_closed_host_cannot_restart(self, home):
        host = ServiceHost(home.kernel, home.desktop, echo_service(),
                           home.transport)
        host.close()
        host.restart()
        assert not host.up
        assert not home.transport.is_bound(host.address)
