"""Unit tests for replica/host selection."""

import pytest

from repro.core import VideoPipe
from repro.devices import DeviceSpec
from repro.errors import ServiceError
from repro.services import (
    FASTEST,
    FIRST,
    LEAST_LOADED,
    FunctionService,
    RemoteServiceStub,
    ServiceRegistry,
    expected_service_time,
    make_stub,
    select_host,
)


@pytest.fixture
def multi_home():
    """'svc' hosted on a slow laptop ('athena') and a fast desktop ('zeus'),
    with a separate caller device."""
    home = VideoPipe(seed=0)
    home.add_device(DeviceSpec(name="athena", kind="laptop", cpu_factor=4.0,
                               cores=4, supports_containers=True))
    home.add_device(DeviceSpec(name="zeus", kind="desktop", cpu_factor=1.0,
                               cores=8, supports_containers=True))
    home.add_device(DeviceSpec(name="caller", kind="phone", cpu_factor=2.5,
                               cores=8))
    for device in ("athena", "zeus"):
        home.deploy_service(
            FunctionService("svc", lambda p, c: p, reference_cost_s=0.040,
                            default_port=7700),
            device,
        )
    return home


class TestSelectHost:
    def test_first_follows_registration_order(self, multi_home):
        host = select_host(multi_home.registry, "svc", policy=FIRST)
        assert host.device.name == "athena"

    def test_fastest_picks_quick_device(self, multi_home):
        host = select_host(multi_home.registry, "svc", policy=FASTEST)
        assert host.device.name == "zeus"

    def test_expected_service_time_scales(self, multi_home):
        times = {
            h.device.name: expected_service_time(h)
            for h in multi_home.registry.hosts_of("svc")
        }
        assert times["athena"] == pytest.approx(0.160)
        assert times["zeus"] == pytest.approx(0.040)

    def test_least_loaded_prefers_idle_replica(self, multi_home):
        zeus_host = multi_home.registry.host_on("svc", "zeus")
        # saturate zeus with queued calls
        for _ in range(5):
            zeus_host.call_local({})
        multi_home.kernel.run(until=0.001)  # let requests take workers
        host = select_host(multi_home.registry, "svc", policy=LEAST_LOADED)
        assert host.device.name == "athena"

    def test_unknown_service_rejected(self):
        with pytest.raises(ServiceError):
            select_host(ServiceRegistry(), "ghost")

    def test_unknown_policy_rejected(self, multi_home):
        with pytest.raises(ServiceError):
            select_host(multi_home.registry, "svc", policy="random")


class TestTieBreaking:
    @pytest.fixture
    def twin_home(self):
        """'svc' on two identical desktops, registered beta-before-alpha."""
        home = VideoPipe(seed=0)
        for name in ("beta", "alpha"):
            home.add_device(DeviceSpec(name=name, kind="desktop",
                                       cpu_factor=1.0, cores=8,
                                       supports_containers=True))
            home.deploy_service(
                FunctionService("svc", lambda p, c: p, reference_cost_s=0.040,
                                default_port=7700),
                name,
            )
        return home

    def test_fastest_ties_break_by_device_name(self, twin_home):
        host = select_host(twin_home.registry, "svc", policy=FASTEST)
        assert host.device.name == "alpha"  # not registration order

    def test_least_loaded_ties_break_by_device_name(self, twin_home):
        host = select_host(twin_home.registry, "svc", policy=LEAST_LOADED)
        assert host.device.name == "alpha"

    def test_tie_break_is_stable_across_calls(self, twin_home):
        picks = {
            select_host(twin_home.registry, "svc", policy=FASTEST).device.name
            for _ in range(5)
        }
        assert picks == {"alpha"}


class BatchySvc(FunctionService):
    max_batch = 4
    batch_marginal_cost_frac = 0.5


class TestBatchAwareEstimate:
    @pytest.fixture
    def batchy_host(self):
        home = VideoPipe(seed=0)
        home.add_device(DeviceSpec(name="zeus", kind="desktop", cpu_factor=1.0,
                                   cores=8, supports_containers=True))
        return home.deploy_service(
            BatchySvc("svc", lambda p, c: p, reference_cost_s=0.040,
                      default_port=7700),
            "zeus",
        )

    def test_unbatched_host_reproduces_plain_estimate(self, batchy_host):
        assert expected_service_time(batchy_host) == pytest.approx(0.040)

    def test_observed_batch_size_shrinks_estimate(self, batchy_host):
        batchy_host.batch_size_counts[2] += 10  # as if it had batched
        est = expected_service_time(batchy_host)
        # a steady batch of 2 at 0.5 marginal frac: 0.75x per item
        assert est == pytest.approx(0.040 * 0.75)

    def test_hypothetical_batch_size_overrides_observed(self, batchy_host):
        assert expected_service_time(batchy_host, batch_size=4) < \
            expected_service_time(batchy_host, batch_size=2) < \
            expected_service_time(batchy_host, batch_size=1)
        assert expected_service_time(batchy_host, batch_size=1) == \
            pytest.approx(0.040)

    def test_estimate_clamped_to_service_max_batch(self, batchy_host):
        assert expected_service_time(batchy_host, batch_size=100) == \
            pytest.approx(expected_service_time(batchy_host, batch_size=4))


class TestMakeStubBalancing:
    def test_remote_stub_dials_fastest_by_default(self, multi_home):
        caller = multi_home.device("caller")
        stub = make_stub(multi_home.kernel, multi_home._get_transport(),
                         multi_home.registry, caller, "svc")
        assert isinstance(stub, RemoteServiceStub)
        assert stub.target_address.device == "zeus"

    def test_local_still_preferred_over_fast_remote(self, multi_home):
        # host the service on the caller too: locality beats speed
        caller = multi_home.device("caller")
        multi_home.deploy_service(
            FunctionService("svc", lambda p, c: p, reference_cost_s=0.040,
                            default_port=7700),
            "caller", native=True,
        )
        stub = make_stub(multi_home.kernel, multi_home._get_transport(),
                         multi_home.registry, caller, "svc")
        assert stub.is_local

    def test_policy_first_available(self, multi_home):
        caller = multi_home.device("caller")
        stub = make_stub(multi_home.kernel, multi_home._get_transport(),
                         multi_home.registry, caller, "svc", balancing=FIRST)
        assert stub.target_address.device == "athena"
