"""Shared fixtures: a small home with a phone and a desktop."""

import pytest

from repro.devices import Device, desktop, flagship_phone_2018
from repro.net import BrokerlessTransport, LinkSpec, Topology
from repro.sim import Kernel, RngStreams


class MiniHome:
    """Bare two-device testbed without the full VideoPipe facade."""

    def __init__(self, seed=1, wifi=None):
        self.kernel = Kernel()
        self.rng = RngStreams(seed=seed)
        self.topology = Topology(self.kernel, self.rng)
        self.topology.add_wifi(
            "wifi", wifi or LinkSpec(latency_s=0.0012, jitter_cv=0.0, bandwidth_bps=120e6)
        )
        self.devices = {}
        for spec in (flagship_phone_2018(), desktop()):
            self.topology.attach(spec.name, "wifi")
            self.devices[spec.name] = Device(self.kernel, spec, self.rng)
        self.transport = BrokerlessTransport(self.kernel, self.topology)

    @property
    def phone(self):
        return self.devices["phone"]

    @property
    def desktop(self):
        return self.devices["desktop"]


@pytest.fixture
def home():
    return MiniHome()
