"""Adaptive micro-batching on the service host."""

import pytest

from repro.errors import ServiceError
from repro.services import FunctionService, Service, ServiceHost


class BatchEchoService(Service):
    """Echoes payloads; records every handle/handle_batch invocation."""

    name = "becho"
    reference_cost_s = 0.050
    max_batch = 4
    batch_marginal_cost_frac = 0.5

    def __init__(self):
        self.batch_sizes = []
        self.solo_calls = 0

    def handle(self, payload, ctx):
        self.solo_calls += 1
        if isinstance(payload, dict) and payload.get("poison"):
            raise RuntimeError("poisoned payload")
        return payload

    def handle_batch(self, payloads, ctx):
        if any(isinstance(p, dict) and p.get("poison") for p in payloads):
            raise RuntimeError("batch refused")  # forces per-item fallback
        self.batch_sizes.append(len(payloads))
        return list(payloads)


def batching_host(home, service=None, replicas=1, max_batch=4,
                  max_wait_s=0.004):
    service = service or BatchEchoService()
    host = ServiceHost(home.kernel, home.desktop, service, home.transport,
                       replicas=replicas)
    host.enable_batching(max_batch=max_batch, max_wait_s=max_wait_s)
    return host, service


class TestBatchFormation:
    def test_same_instant_arrivals_coalesce(self, home):
        """Two requests issued at the same simulated instant share one
        dispatch — the zero-delay flush, with no added latency."""
        host, service = batching_host(home)
        first = host.call_local({"i": 1})
        second = host.call_local({"i": 2})
        home.kernel.run()
        assert first.value == {"i": 1} and second.value == {"i": 2}
        assert service.batch_sizes == [2]
        assert host.batch_size_counts == {2: 1}
        # batch of 2 at 0.5 marginal cost ~= 1.5x solo, well under 2x serial
        assert home.kernel.now < 2 * 0.050

    def test_requests_accumulate_while_workers_busy(self, home):
        host, service = batching_host(home)
        host.call_local({"i": 0})  # takes the only worker solo
        home.kernel.schedule(0.010, lambda: host.call_local({"i": 1}))
        home.kernel.schedule(0.020, lambda: host.call_local({"i": 2}))
        home.kernel.run()
        assert sorted(service.batch_sizes) == [1, 2]
        assert host.avg_batch_size() == pytest.approx(1.5)
        assert host.batched_calls == 2

    def test_company_timer_batches_out_of_phase_arrivals(self, home):
        """A lone request at a free host waits up to max_wait_s for company
        instead of going out alone."""
        host, service = batching_host(home, max_wait_s=0.030)
        host.call_local({"i": 0})
        # lands while the worker is busy -> pending; on release the company
        # timer arms, and the next arrival falls into the window
        home.kernel.schedule(0.030, lambda: host.call_local({"i": 1}))
        home.kernel.schedule(0.060, lambda: host.call_local({"i": 2}))
        home.kernel.run()
        assert 2 in service.batch_sizes

    def test_dispatch_capped_at_max_batch(self, home):
        host, service = batching_host(home, max_batch=4)
        for i in range(5):
            host.call_local({"i": i})
        home.kernel.run()
        assert max(service.batch_sizes) == 4
        assert sum(service.batch_sizes) == 5

    def test_host_cap_bounded_by_service_cap(self, home):
        host, service = batching_host(home, max_batch=32)
        for i in range(6):
            host.call_local({"i": i})
        home.kernel.run()
        assert max(service.batch_sizes) == service.max_batch == 4

    def test_pending_requests_count_as_queued_load(self, home):
        host, _ = batching_host(home)
        host.call_local({"i": 0})
        home.kernel.run(until=0.010)  # worker busy with the solo dispatch
        host.call_local({"i": 1})
        assert host.queue_length == 1

    def test_parameter_validation(self, home):
        host, _ = batching_host(home)
        with pytest.raises(ServiceError):
            host.enable_batching(max_batch=0)
        with pytest.raises(ServiceError):
            host.enable_batching(max_wait_s=-1.0)


class TestBatchExecution:
    def test_batch_cost_amortized(self, home):
        """A batch of 4 at 0.5 marginal frac costs 2.5x solo, not 4x."""
        host, service = batching_host(home)
        dones = [host.call_local({"i": i}) for i in range(4)]
        home.kernel.run()
        assert all(d.succeeded for d in dones)
        assert service.batch_sizes == [4]
        assert home.kernel.now < 3.2 * 0.050  # serial would be >= 4x

    def test_poisoned_item_fails_alone(self, home):
        host, service = batching_host(home)
        good = host.call_local({"i": 1})
        bad = host.call_local({"poison": True})
        home.kernel.run()
        assert good.succeeded and good.value == {"i": 1}
        assert bad.failed and isinstance(bad.exception, ServiceError)
        assert host.errors == 1
        assert host.busy_workers == 0  # worker not leaked by the fallback

    def test_service_without_batch_support_never_batches(self, home):
        service = FunctionService("plain", lambda p, c: p,
                                  reference_cost_s=0.050)
        host = ServiceHost(home.kernel, home.desktop, service, home.transport)
        host.enable_batching(max_batch=4)
        first = host.call_local({"i": 1})
        second = host.call_local({"i": 2})
        home.kernel.run()
        assert first.succeeded and second.succeeded
        assert host.batched_calls == 0
        assert host.batch_wait_s == 0.0  # callers see no batching delay

    def test_crash_fails_pending_batch_requests(self, home):
        host, _ = batching_host(home)
        host.call_local({"i": 0})
        home.kernel.run(until=0.010)
        pending = host.call_local({"i": 1})  # accumulating behind the worker
        host.crash()
        home.kernel.run()
        assert pending.failed
        assert host.dropped_in_flight >= 1
        assert not host._batch_pending

    def test_close_fails_pending_batch_requests(self, home):
        host, _ = batching_host(home)
        host.call_local({"i": 0})
        home.kernel.run(until=0.010)
        pending = host.call_local({"i": 1})
        host.close()
        home.kernel.run()
        assert pending.failed


class TestBatchCostModel:
    def test_batch_compute_cost_shape(self):
        service = BatchEchoService()
        solo = service.compute_cost({})
        assert service.batch_compute_cost([]) == 0.0
        assert service.batch_compute_cost([{}]) == pytest.approx(solo)
        assert service.batch_compute_cost([{}] * 3) == pytest.approx(2.0 * solo)

    def test_amortized_item_cost_monotone(self):
        service = BatchEchoService()
        costs = [service.amortized_item_cost_s(n) for n in (1, 2, 4)]
        assert costs[0] == pytest.approx(service.reference_cost_s)
        assert costs[0] > costs[1] > costs[2]
        # clamped to the service's own max batch
        assert service.amortized_item_cost_s(64) == pytest.approx(costs[2])
