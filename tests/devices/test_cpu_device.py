"""Unit tests for the CPU model and Device."""

import pytest

from repro.devices import Cpu, Device, DeviceSpec, desktop, smart_tv_4k
from repro.errors import DeviceError
from repro.sim import Kernel, RngStreams


@pytest.fixture
def kernel():
    return Kernel()


def make_cpu(kernel, factor=1.0, cores=2, jitter=0.0):
    spec = DeviceSpec(name="dev", cpu_factor=factor, cores=cores,
                      compute_jitter_cv=jitter)
    return Cpu(kernel, spec, RngStreams(seed=1).stream("cpu"))


class TestCpu:
    def test_job_takes_scaled_time(self, kernel):
        cpu = make_cpu(kernel, factor=2.5)
        done = cpu.execute(0.040)
        kernel.run()
        assert done.value == pytest.approx(0.100)
        assert kernel.now == pytest.approx(0.100)

    def test_fixed_jobs_ignore_cpu_factor(self, kernel):
        cpu = make_cpu(kernel, factor=2.5)
        done = cpu.execute_fixed(0.040)
        kernel.run()
        assert done.value == pytest.approx(0.040)

    def test_zero_cost_jobs_complete_instantly(self, kernel):
        cpu = make_cpu(kernel)
        done = cpu.execute(0.0)
        kernel.run()
        assert done.value == 0.0

    def test_contention_queues_beyond_cores(self, kernel):
        cpu = make_cpu(kernel, cores=2)
        jobs = [cpu.execute(1.0) for _ in range(4)]
        kernel.run()
        assert all(j.succeeded for j in jobs)
        # 4 one-second jobs on 2 cores = 2 seconds
        assert kernel.now == pytest.approx(2.0)

    def test_jitter_varies_durations(self, kernel):
        cpu = make_cpu(kernel, cores=100, jitter=0.2)
        jobs = [cpu.execute(0.05) for _ in range(50)]
        kernel.run()
        durations = {j.value for j in jobs}
        assert len(durations) > 40

    def test_stats(self, kernel):
        cpu = make_cpu(kernel)
        cpu.execute(0.5)
        cpu.execute(0.25)
        kernel.run()
        assert cpu.jobs_completed == 2
        assert cpu.busy_seconds == pytest.approx(0.75)


class TestDevice:
    def test_device_wiring(self, kernel):
        device = Device(kernel, desktop(), RngStreams(seed=0))
        assert device.name == "desktop"
        assert device.supports_containers
        assert device.frame_store.device == "desktop"

    def test_local_rng_is_deterministic_per_purpose(self, kernel):
        a = Device(kernel, desktop(), RngStreams(seed=0)).local_rng("x").random(3)
        b = Device(Kernel(), desktop(), RngStreams(seed=0)).local_rng("x").random(3)
        assert list(a) == list(b)

    def test_container_service_rejected_on_tv(self, kernel):
        device = Device(kernel, smart_tv_4k(), RngStreams(seed=0))

        class FakeHost:
            service_name = "pose"

        with pytest.raises(DeviceError, match="cannot run containers"):
            device.register_service_host(FakeHost())

    def test_native_service_allowed_anywhere(self, kernel):
        device = Device(kernel, smart_tv_4k(), RngStreams(seed=0))

        class FakeHost:
            service_name = "display"

        device.register_native_service_host(FakeHost())
        assert device.has_service("display")

    def test_duplicate_service_rejected(self, kernel):
        device = Device(kernel, desktop(), RngStreams(seed=0))

        class FakeHost:
            service_name = "pose"

        device.register_service_host(FakeHost())
        with pytest.raises(DeviceError, match="already hosted"):
            device.register_service_host(FakeHost())
