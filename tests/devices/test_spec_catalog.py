"""Unit tests for device specs and the catalog."""

import pytest

from repro.devices import (
    CATALOG,
    DeviceSpec,
    desktop,
    flagship_phone_2018,
    make_spec,
    smart_tv_4k,
)
from repro.errors import DeviceError


class TestDeviceSpec:
    def test_validation(self):
        with pytest.raises(DeviceError):
            DeviceSpec(name="")
        with pytest.raises(DeviceError):
            DeviceSpec(name="x", cpu_factor=0)
        with pytest.raises(DeviceError):
            DeviceSpec(name="x", cores=0)
        with pytest.raises(DeviceError):
            DeviceSpec(name="x", memory_mb=0)

    def test_compute_time_scales_by_factor(self):
        spec = DeviceSpec(name="slow", cpu_factor=2.5)
        assert spec.compute_time(0.040) == pytest.approx(0.100)

    def test_negative_compute_rejected(self):
        with pytest.raises(DeviceError):
            DeviceSpec(name="x").compute_time(-1.0)


class TestCatalog:
    def test_paper_phone_matches_section_5_1(self):
        phone = flagship_phone_2018()
        assert phone.memory_mb == 6144  # "6GB of main memory"
        assert phone.kind == "phone"
        assert not phone.supports_containers

    def test_desktop_is_the_reference_machine(self):
        spec = desktop()
        assert spec.cpu_factor == 1.0
        assert spec.supports_containers

    def test_tv_runs_modules_but_not_containers(self):
        tv = smart_tv_4k()
        assert not tv.supports_containers
        assert tv.cpu_factor > 1.0

    def test_constrained_devices_are_slower(self):
        order = [make_spec(k).cpu_factor for k in ("desktop", "laptop", "phone", "tv", "fridge", "watch")]
        assert order == sorted(order)

    def test_make_spec_renames(self):
        assert make_spec("phone", name="pixel").name == "pixel"

    def test_make_spec_unknown_kind(self):
        with pytest.raises(ValueError):
            make_spec("mainframe")

    def test_every_catalog_entry_constructs(self):
        for kind in CATALOG:
            spec = make_spec(kind)
            assert spec.cores >= 1
