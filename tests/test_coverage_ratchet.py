"""The coverage ratchet's gate logic (the CI job runs the real thing)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "coverage_ratchet",
    Path(__file__).parent.parent / "tools" / "coverage_ratchet.py",
)
ratchet = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(ratchet)


def _files(tmp_path, measured: float, baseline: float, tolerance=0.5):
    report = tmp_path / "coverage.json"
    report.write_text(json.dumps(
        {"totals": {"percent_covered": measured}}
    ))
    base = tmp_path / "baseline.json"
    base.write_text(json.dumps(
        {"percent_covered": baseline, "tolerance_pts": tolerance,
         "seeded": True}
    ))
    return report, base


def test_pass_within_tolerance(tmp_path, capsys):
    report, base = _files(tmp_path, measured=74.8, baseline=75.0)
    assert ratchet.main([str(report), "--baseline", str(base)]) == 0
    assert "OK" in capsys.readouterr().out


def test_fail_on_drop_beyond_tolerance(tmp_path, capsys):
    report, base = _files(tmp_path, measured=74.4, baseline=75.0)
    assert ratchet.main([str(report), "--baseline", str(base)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_hints_ratchet_up_when_above(tmp_path, capsys):
    report, base = _files(tmp_path, measured=80.0, baseline=75.0)
    assert ratchet.main([str(report), "--baseline", str(base)]) == 0
    assert "ratchet it up" in capsys.readouterr().out


def test_update_rewrites_baseline_and_clears_seeded(tmp_path):
    report, base = _files(tmp_path, measured=80.17, baseline=75.0)
    assert ratchet.main([str(report), "--baseline", str(base),
                         "--update"]) == 0
    updated = json.loads(base.read_text())
    assert updated == {"percent_covered": 80.1, "tolerance_pts": 0.5,
                       "seeded": False}


def test_malformed_report_exits(tmp_path):
    report = tmp_path / "coverage.json"
    report.write_text(json.dumps({"totals": {}}))
    with pytest.raises(SystemExit):
        ratchet.read_measured(report)


def test_committed_baseline_is_valid():
    baseline = json.loads(ratchet.BASELINE_PATH.read_text())
    assert 0.0 < baseline["percent_covered"] <= 100.0
    assert baseline["tolerance_pts"] == 0.5
