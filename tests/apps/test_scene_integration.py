"""Integration: the scene-analytics (detect + track) pipeline (§4.3)."""

import pytest

from repro.apps import scene_pipeline_config
from repro.apps.scene import MovingObject, SceneCamera, default_scene
from repro.core import VideoPipe
from repro.devices import DeviceSpec
from repro.services import ObjectDetectionService, ObjectTrackingService

import numpy as np


def build_home(seed=17):
    home = VideoPipe.paper_testbed(seed=seed)
    home.add_device(DeviceSpec(name="camera", kind="phone", cpu_factor=2.5,
                               cores=8))
    home.deploy_service(ObjectDetectionService(), "desktop")
    home.deploy_service(ObjectTrackingService(), "desktop")
    return home


class TestSceneCamera:
    def test_frames_carry_pixels_and_truth(self):
        camera = SceneCamera("cam", rng=np.random.default_rng(0))
        frame = camera.capture(1, 0.0)
        assert frame.pixels.shape == (120, 160, 3)
        assert len(frame.metadata["truth_objects"]) == 3

    def test_objects_move_between_frames(self):
        camera = SceneCamera("cam", rng=np.random.default_rng(0))
        early = camera.capture(1, 0.0).metadata["truth_objects"]
        later = camera.capture(2, 1.0).metadata["truth_objects"]
        assert early != later

    def test_bounce_stays_in_frame(self):
        obj = MovingObject(kind="cup", x=10, y=10, vx=50, vy=40, size=16)
        for t in np.linspace(0, 20, 101):
            scene_obj = obj.at(float(t), 160, 120)
            assert scene_obj.bbox.x0 >= -1e-9
            assert scene_obj.bbox.x1 <= 160 + 1e-9
            assert scene_obj.bbox.y0 >= -1e-9
            assert scene_obj.bbox.y1 <= 120 + 1e-9

    def test_default_scene_distinct_kinds(self):
        objects = default_scene(np.random.default_rng(0), 160, 120, count=3)
        assert len({o.kind for o in objects}) == 3


class TestScenePipeline:
    @pytest.fixture(scope="class")
    def run(self):
        home = build_home()
        pipeline = home.deploy_pipeline(
            scene_pipeline_config(fps=10.0, duration_s=10.0)
        )
        home.run(until=11.0)
        return home, pipeline

    def test_placement_follows_services(self, run):
        _, pipeline = run
        assert pipeline.device_of("scene_camera_module") == "camera"
        assert pipeline.device_of("object_detection_module") == "desktop"
        assert pipeline.device_of("object_tracking_module") == "desktop"

    def test_tracks_follow_the_objects(self, run):
        """3 objects drift for ~100 frames; identities stay stable except
        for brief merges when two blobs touch (the detector sees one
        component then — honest CV behaviour)."""
        _, pipeline = run
        tracker = pipeline.module_instance("object_tracking_module")
        assert pipeline.metrics.counter("frames_completed") > 50
        assert 2 <= len(tracker.tracks) <= 4
        assert pipeline.metrics.counter("tracks_created") <= 8
        labels = {t["label"] for t in tracker.tracks}
        assert len(labels) >= 2

    def test_long_lived_identities_exist(self, run):
        _, pipeline = run
        tracker = pipeline.module_instance("object_tracking_module")
        # the stable objects accumulated long hit streaks
        assert max(t["hits"] for t in tracker.tracks) > 50

    def test_no_errors_no_leaks(self, run):
        home, pipeline = run
        for name in pipeline.module_names():
            assert pipeline.module(name).errors == [], name
        home.run(until=12.0)
        for device in home.devices.values():
            assert len(device.frame_store) <= 1, device.name


class TestTrackingServiceUnit:
    def test_stateless_roundtrip(self):
        """The service keeps no state: identical requests give identical
        answers, and identity continuity comes only from shipped state."""
        from repro.services import ServiceCallContext
        from repro.frames import FrameStore
        from repro.sim import Kernel

        ctx = ServiceCallContext("d", FrameStore("d"),
                                 np.random.default_rng(0), Kernel())
        service = ObjectTrackingService()
        request = {
            "detections": [{"label": "cup", "bbox": (10, 10, 30, 30),
                            "score": 0.9}],
            "tracks": [],
            "next_track_id": 1,
        }
        first = service.handle(dict(request), ctx)
        again = service.handle(dict(request), ctx)
        assert first == again  # no hidden state between calls
        assert first["tracks"][0]["track_id"] == 1
        # continuity: feeding the state back continues the same identity
        followup = service.handle({
            "detections": [{"label": "cup", "bbox": (12, 11, 32, 31),
                            "score": 0.9}],
            "tracks": first["tracks"],
            "next_track_id": first["next_track_id"],
        }, ctx)
        assert followup["tracks"][0]["track_id"] == 1
        assert followup["tracks"][0]["hits"] == 2

    def test_bad_payload_rejected(self):
        from repro.errors import ServiceError
        from repro.services import ServiceCallContext
        from repro.frames import FrameStore
        from repro.sim import Kernel

        ctx = ServiceCallContext("d", FrameStore("d"),
                                 np.random.default_rng(0), Kernel())
        with pytest.raises(ServiceError):
            ObjectTrackingService().handle({"nope": 1}, ctx)
