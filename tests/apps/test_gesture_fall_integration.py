"""Integration tests: gesture control (§4.2), fall detection (§4.3), and
service sharing across pipelines (§5.2.2)."""

import pytest

from repro.apps import (
    FitnessApp,
    fall_pipeline_config,
    fitness_pipeline_config,
    gesture_pipeline_config,
    install_fitness_services,
    install_gesture_services,
)
from repro.core import VideoPipe
from repro.devices import DeviceSpec


def gesture_camera():
    return DeviceSpec(name="camera", kind="phone", cpu_factor=2.5, cores=8,
                      supports_containers=False)


def build_home(fitness_recognizer, gesture_recognizer, seed=3):
    home = VideoPipe.paper_testbed(seed=seed)
    home.add_device(gesture_camera())
    fitness = install_fitness_services(home, recognizer=fitness_recognizer)
    gesture = install_gesture_services(home, recognizer=gesture_recognizer)
    return home, fitness, gesture


class TestGestureControl:
    @pytest.fixture(scope="class")
    def run(self, fitness_recognizer, gesture_recognizer):
        home, fitness, gesture = build_home(fitness_recognizer, gesture_recognizer)
        pipeline = home.deploy_pipeline(
            gesture_pipeline_config(fps=10.0, duration_s=10.0, motion="clap")
        )
        home.run(until=11.0)
        return home, gesture, pipeline

    def test_clapping_toggles_the_light(self, run):
        _, gesture, pipeline = run
        toggles = [e for e in gesture.fleet.log if e.target == "living_room_light"]
        assert toggles  # the §4.2 scenario: clap -> light
        assert pipeline.metrics.counter("gesture_triggers") == len(toggles)

    def test_cooldown_limits_trigger_rate(self, run):
        _, gesture, _ = run
        toggles = [e.at for e in gesture.fleet.log if e.target == "living_room_light"]
        gaps = [b - a for a, b in zip(toggles, toggles[1:])]
        assert all(gap >= 2.0 for gap in gaps)

    def test_wave_binding_untouched_by_claps(self, run):
        _, gesture, _ = run
        assert not [e for e in gesture.fleet.log if e.target == "doorbell_camera"]

    def test_no_module_errors(self, run):
        _, _, pipeline = run
        for name in pipeline.module_names():
            assert pipeline.module(name).errors == [], name

    def test_waving_toggles_doorbell(self, fitness_recognizer, gesture_recognizer):
        home, _, gesture = build_home(fitness_recognizer, gesture_recognizer, seed=4)
        home.deploy_pipeline(
            gesture_pipeline_config(fps=10.0, duration_s=8.0, motion="wave")
        )
        home.run(until=9.0)
        assert [e for e in gesture.fleet.log if e.target == "doorbell_camera"]


class TestFallDetection:
    def test_fall_raises_alert(self, fitness_recognizer, gesture_recognizer):
        home, _, gesture = build_home(fitness_recognizer, gesture_recognizer, seed=5)
        pipeline = home.deploy_pipeline(
            fall_pipeline_config(fps=10.0, duration_s=6.0, motion="fall")
        )
        home.run(until=7.0)
        assert pipeline.metrics.counter("falls_detected") >= 1
        assert gesture.fleet.states["caregiver_alert"] is True
        detector = pipeline.module_instance("fall_detector_module")
        # the synthetic fall completes ~0.9 s in; detection soon after
        assert detector.falls_detected[0] < 3.0

    def test_exercise_does_not_false_alarm(self, fitness_recognizer,
                                           gesture_recognizer):
        """Squats drop the hips too — the posture check must reject them."""
        home, _, gesture = build_home(fitness_recognizer, gesture_recognizer, seed=6)
        pipeline = home.deploy_pipeline(
            fall_pipeline_config(fps=10.0, duration_s=8.0, motion="squat")
        )
        home.run(until=9.0)
        assert pipeline.metrics.counter("falls_detected") == 0
        assert gesture.fleet.states["caregiver_alert"] is False


class TestServiceSharing:
    """§5.2.2: the two applications share one pose detector service."""

    @pytest.fixture(scope="class")
    def run(self, fitness_recognizer, gesture_recognizer):
        home, fitness, gesture = build_home(fitness_recognizer, gesture_recognizer)
        app = FitnessApp(home, fitness)
        p_fit = app.deploy(fitness_pipeline_config(fps=10.0, duration_s=12.0))
        p_gest = home.deploy_pipeline(
            gesture_pipeline_config(fps=10.0, duration_s=12.0)
        )
        home.run(until=13.0)
        return home, p_fit, p_gest

    def test_single_pose_host_serves_both(self, run):
        home, p_fit, p_gest = run
        hosts = home.registry.hosts_of("pose_detector")
        assert len(hosts) == 1
        served = hosts[0].local_calls + hosts[0].remote_calls
        fit_frames = p_fit.metrics.counter("frames_completed")
        gest_frames = p_gest.metrics.counter("frames_completed")
        assert served >= fit_frames + gest_frames

    def test_both_pipelines_make_progress(self, run):
        _, p_fit, p_gest = run
        f1 = p_fit.metrics.throughput_fps(13.0, warmup_s=2.0)
        f2 = p_gest.metrics.throughput_fps(13.0, warmup_s=2.0)
        assert f1 > 6.0
        assert f2 > 6.0

    def test_no_errors_anywhere(self, run):
        _, p_fit, p_gest = run
        for pipeline in (p_fit, p_gest):
            for name in pipeline.module_names():
                assert pipeline.module(name).errors == [], name

    def test_sharing_degrades_at_high_rate(self, fitness_recognizer,
                                           gesture_recognizer):
        """Table 2 col 4: at a 20 FPS source the shared pose service is the
        bottleneck and both pipelines fall below the solo saturation rate."""
        # solo
        home = VideoPipe.paper_testbed(seed=7)
        fitness = install_fitness_services(home, recognizer=fitness_recognizer)
        app = FitnessApp(home, fitness)
        p_solo = app.deploy(fitness_pipeline_config(fps=20.0, duration_s=12.0))
        home.run(until=13.0)
        solo_fps = p_solo.metrics.throughput_fps(13.0, warmup_s=2.0)

        # shared
        home2, fitness2, _ = build_home(fitness_recognizer, gesture_recognizer,
                                        seed=7)
        app2 = FitnessApp(home2, fitness2)
        p_fit = app2.deploy(fitness_pipeline_config(fps=20.0, duration_s=12.0))
        home2.deploy_pipeline(gesture_pipeline_config(fps=20.0, duration_s=12.0))
        home2.run(until=13.0)
        shared_fps = p_fit.metrics.throughput_fps(13.0, warmup_s=2.0)
        assert shared_fps < solo_fps
        assert shared_fps > solo_fps * 0.6  # degraded, not starved
