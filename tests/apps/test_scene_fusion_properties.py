"""Property-based scene-fusion tests over seeded random scenes.

Four fusion invariants, checked over hundreds of generated multi-view
scenes (``REPRO_FUZZ_N``, default 200), all driven by stdlib
``random.Random`` with fixed seeds (the same regime as
``tests/pipeline/strategies.py``):

* **order symmetry** — :func:`~repro.vision.reid.associate_tracklets` is
  invariant to any permutation of its input, and a full replay associates
  the same cross-camera clusters regardless of camera update order;
* **count bound** — live fused tracks never exceed the ground-truth actor
  count (noise-free, association may under-merge across rooms but can
  never invent a person);
* **provenance liveness** — every live fused track's provenance cites
  only live per-camera tracklets of the current snapshots;
* **single-camera identity** — a one-camera scene fuses to the identity
  mapping: one singleton fused track per local tracklet, a bijection.
"""

from __future__ import annotations

import os
import random

import numpy as np

from repro.apps.scenefusion import SceneTrackModule
from repro.motion.multiview import MultiViewScene, random_scene
from repro.motion.skeleton import Pose
from repro.vision.reid import (
    SceneFusionCore,
    associate_tracklets,
    pose_embedding,
)

FUZZ_N = int(os.environ.get("REPRO_FUZZ_N", "200"))


def _scene(rng: random.Random) -> MultiViewScene:
    return random_scene(
        rng,
        actor_count=rng.randint(1, 3),
        camera_count=rng.randint(2, 3),
    )


def _detections(scene: MultiViewScene, camera, t: float) -> list[dict]:
    """Noise-free detections in the pose-estimator service's shape."""
    detections = []
    for obs in scene.observe(camera, t):
        pose = Pose(np.asarray(obs.pose.keypoints, dtype=float))
        detections.append({
            "bbox": pose.bounding_box(margin=0.05),
            "keypoints": pose.keypoints,
            "actor_id": obs.actor_id,
        })
    detections.sort(key=lambda d: d["bbox"][0])
    return detections


def _replay(
    scene: MultiViewScene,
    ticks: int = 8,
    fps: float = 4.0,
    camera_order=None,
    checker=None,
):
    """Kernel-free replay: per-camera track modules feeding one fusion
    core, camera order per tick as given (scene order by default)."""
    modules = {}
    for camera in scene.cameras:
        module = SceneTrackModule()
        module._camera = camera
        modules[camera.name] = module
    core = SceneFusionCore()
    order = list(camera_order or scene.cameras)
    for tick in range(ticks):
        t = tick / fps
        for camera in order:
            fresh = modules[camera.name]._track(_detections(scene, camera, t))
            core.update(camera.name, t, fresh, room=camera.room)
            if checker is not None:
                checker(core, t)
    return modules, core


def _cluster_shapes(core: SceneFusionCore) -> set:
    """Fused-id-free view of the association: the set of provenance
    member groups (fused id numbering depends on claim order)."""
    return {track.provenance for track in core.live_tracks()}


def test_association_input_order_symmetry_fuzz():
    rng = random.Random(0xF010)
    for _ in range(FUZZ_N):
        scene = _scene(rng)
        t = rng.uniform(0.0, 5.0)
        tracklets = []
        for camera in scene.cameras:
            for tid, obs in enumerate(scene.observe(camera, t)):
                tracklets.append((camera.name, tid,
                                  pose_embedding(obs.pose)))
        baseline = associate_tracklets(tracklets, threshold=0.30)
        shuffled = list(tracklets)
        rng.shuffle(shuffled)
        assert associate_tracklets(shuffled, threshold=0.30) == baseline


def test_camera_update_order_symmetry_fuzz():
    """Replaying with the per-tick camera order reversed yields the same
    cross-camera clusters (fused-id numbering aside)."""
    rng = random.Random(0xF011)
    for _ in range(FUZZ_N // 4):
        seed = rng.getrandbits(32)
        scene_a = _scene(random.Random(seed))
        scene_b = _scene(random.Random(seed))
        _, forward = _replay(scene_a, ticks=6)
        _, reverse = _replay(scene_b, ticks=6,
                             camera_order=list(reversed(scene_b.cameras)))
        assert _cluster_shapes(forward) == _cluster_shapes(reverse)


def test_fused_count_never_exceeds_actor_count_fuzz():
    rng = random.Random(0xF012)
    for _ in range(FUZZ_N):
        scene = _scene(rng)
        actor_count = len(scene.actors)

        def check(core, t, actor_count=actor_count):
            assert len(core.live_tracks()) <= actor_count, t

        _replay(scene, ticks=6, checker=check)


def test_provenance_cites_live_members_fuzz():
    rng = random.Random(0xF013)
    for _ in range(FUZZ_N):
        scene = _scene(rng)

        def check(core, t):
            for track in core.live_tracks():
                assert track.provenance, track
                for camera, tid in track.provenance:
                    assert tid in core.live_member_ids(camera), (t, track)

        _replay(scene, ticks=6, checker=check)


def test_single_camera_scene_fuses_to_identity_fuzz():
    rng = random.Random(0xF014)
    for _ in range(FUZZ_N):
        scene = random_scene(rng, actor_count=rng.randint(1, 3),
                             camera_count=1)
        camera = scene.cameras[0]

        def check(core, t, camera=camera):
            live = core.live_tracks()
            members = core.live_member_ids(camera.name)
            # one singleton fused track per local tracklet — a bijection
            assert len(live) == len(members)
            provenance = sorted(m for track in live
                                for m in track.provenance)
            assert provenance == [(camera.name, tid) for tid in members]

        _replay(scene, ticks=6, checker=check)


def test_fuzz_replay_is_deterministic():
    """A failure above must reproduce from its seed alone: the same seed
    replays to a bit-identical association history."""
    def run(seed: int):
        scene = _scene(random.Random(seed))
        _, core = _replay(scene, ticks=6)
        return core.history

    assert run(0xF015) == run(0xF015)
