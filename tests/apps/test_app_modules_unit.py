"""Focused unit tests for the application modules' logic.

The integration suites exercise whole pipelines; these tests pin down the
tricky per-module behaviours: fan-out ref accounting, display overlay
merging, gesture debounce, and the fall-detector's posture math.
"""

import numpy as np
import pytest

from repro.apps.modules import (
    ActivityRecognitionModule,
    DisplayModule,
    FallDetectionModule,
    GestureControlModule,
)
from repro.motion import Fall, Squat, Stand, SubjectParams, subject_pose


class FakeContext:
    """A minimal ModuleContext double for pure-logic tests."""

    def __init__(self, next_modules=()):
        self.now = 0.0
        self._next = list(next_modules)
        self.sent = []  # (target, payload)
        self.released = []
        self.addrefs = []
        self.counters = {}

    @property
    def next_modules(self):
        return list(self._next)

    def call_module(self, target, payload, headers=None):
        self.sent.append((target, payload))

    def release(self, ref):
        self.released.append(ref)

    def add_ref(self, ref):
        self.addrefs.append(ref)
        return ref

    class _Metrics:
        def __init__(self, outer):
            self.outer = outer

        def increment(self, name, amount=1):
            self.outer.counters[name] = self.outer.counters.get(name, 0) + amount

    @property
    def metrics(self):
        return FakeContext._Metrics(self)


class TestActivityFanOut:
    def make(self):
        return ActivityRecognitionModule()

    def test_frame_goes_only_to_display_targets(self):
        ctx = FakeContext(next_modules=["rep_counter_module", "display_module"])
        module = self.make()
        module._fan_out(ctx, {"frame": "REF", "keypoints": 1})
        by_target = dict(ctx.sent)
        assert "frame" not in by_target["rep_counter_module"]
        assert by_target["display_module"]["frame"] == "REF"
        assert ctx.released == []  # the single hold moved to display

    def test_two_display_targets_take_extra_hold(self):
        ctx = FakeContext(next_modules=["display_a", "display_b"])
        self.make()._fan_out(ctx, {"frame": "REF"})
        assert ctx.addrefs == ["REF"]  # one extra hold for the second send
        assert len(ctx.sent) == 2

    def test_no_display_target_releases_frame(self):
        ctx = FakeContext(next_modules=["rep_counter_module"])
        self.make()._fan_out(ctx, {"frame": "REF"})
        assert ctx.released == ["REF"]
        assert "frame" not in ctx.sent[0][1]

    def test_frameless_payload_needs_no_accounting(self):
        ctx = FakeContext(next_modules=["display_module"])
        self.make()._fan_out(ctx, {"keypoints": 1})
        assert ctx.released == [] and ctx.addrefs == []
        assert len(ctx.sent) == 1


class TestDisplayOverlayState:
    def test_latest_label_and_reps_merge(self):
        module = DisplayModule()
        # a reps-only update and a label-only update arrive separately
        module.last_reps = None

        class Event:
            def __init__(self, payload):
                self.payload = payload

        # frameless events update state and return without a generator
        module.event_received(None, Event({"reps": 4, "frame_id": 1,
                                           "capture_time": 0.0}))
        assert module.last_reps == 4
        module.event_received(None, Event({"activity": "squat", "frame_id": 2,
                                           "capture_time": 0.0}))
        assert module.last_label == "squat"


class TestGestureDebounce:
    def make(self, **kwargs):
        return GestureControlModule(confirm_frames=3, cooldown_s=2.0, **kwargs)

    def test_streak_counting(self):
        module = self.make()
        labels = ["clap", "clap", "stand", "clap", "clap", "clap"]
        streaks = []
        for label in labels:
            if label == module._streak_label:
                module._streak += 1
            else:
                module._streak_label = label
                module._streak = 1
            streaks.append(module._streak)
        assert streaks == [1, 2, 1, 1, 2, 3]

    def test_default_bindings_match_paper(self):
        module = GestureControlModule()
        assert module.bindings["clap"] == "living_room_light"
        assert module.bindings["wave"] == "doorbell_camera"


class TestFallPosture:
    def posture_of(self, motion, t):
        module = FallDetectionModule()
        pose = subject_pose(motion, SubjectParams(), t)
        return module._posture(pose)

    def test_standing_is_tall_and_narrow(self):
        hip_y, height, aspect = self.posture_of(Stand(), 0.0)
        assert aspect < 0.6

    def test_fallen_is_wide_and_low(self):
        standing_hip, _, _ = self.posture_of(Fall(period_s=0.9), 0.0)
        fallen_hip, _, fallen_aspect = self.posture_of(Fall(period_s=0.9), 2.0)
        assert fallen_aspect > 1.1
        assert fallen_hip > standing_hip  # hips dropped (y grows downward)

    def test_squat_bottom_is_still_narrow(self):
        """The false-alarm guard: a deep squat lowers the hips but the
        posture stays closer to vertical than a fall."""
        _, _, squat_aspect = self.posture_of(Squat(period_s=2.0), 1.0)
        _, _, fall_aspect = self.posture_of(Fall(period_s=0.9), 2.0)
        assert squat_aspect < fall_aspect
