"""Ground-truth accuracy harness: the crossing scene pins re-ID's value.

The scenario: three cameras watch two differently-shaped actors walk
paths that cross mid-room. At the crossing, per-camera IoU tracking
*provably* loses identities (the trackers create far more local tracks
than there are actors — asserted, not assumed). The claim under test is
that cross-camera pose-embedding re-ID recovers the association exactly —
zero fused ID switches, every fused track mapped to the right actor —
while the degraded arm (re-ID off, world-position association) measurably
does worse on the identical detection stream.

Detector noise follows the pose-estimator service's fidelity model
(Gaussian per keypoint, sigma scaled to apparent body height) so the
kernel-free replay scores the same problem the deployed pipeline faces;
the final test runs the real pipeline end to end and holds it to the
same bar.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.scenefusion import SceneTrackModule
from repro.motion.multiview import crossing_scene
from repro.motion.skeleton import Pose
from repro.vision.reid import SceneFusionCore, fusion_accuracy

FPS = 8.0
DURATION_S = 6.0
SIGMA_FRAC = 0.008  # the service's detector noise model


def _noisy_detections(scene, camera, t, rng):
    detections = []
    for obs in scene.observe(camera, t):
        kp = np.asarray(obs.pose.keypoints, dtype=float)
        height_px = float(kp[:, 1].max() - kp[:, 1].min())
        sigma = max(0.35, SIGMA_FRAC * height_px)
        noisy = kp + rng.normal(0.0, sigma, size=kp.shape)
        pose = Pose(noisy)
        detections.append({
            "bbox": pose.bounding_box(margin=0.05),
            "keypoints": noisy,
            "actor_id": obs.actor_id,
        })
    detections.sort(key=lambda d: d["bbox"][0])
    return detections


def _run_arm(seed: int, use_reid: bool):
    """One arm of the harness: same scene, same noise stream shape, re-ID
    on or off end to end (branch appearance gate + fusion vector)."""
    scene = crossing_scene(cameras=3)
    rng = np.random.default_rng(seed)
    modules = {}
    for camera in scene.cameras:
        module = SceneTrackModule(reid_gate=0.45 if use_reid else None)
        module._camera = camera
        modules[camera.name] = module
    core = SceneFusionCore(use_reid=use_reid)
    for tick in range(int(DURATION_S * FPS)):
        t = tick / FPS
        for camera in scene.cameras:
            fresh = modules[camera.name]._track(
                _noisy_detections(scene, camera, t, rng)
            )
            core.update(camera.name, t, fresh, room=camera.room)
    return modules, core, fusion_accuracy(core.history)


@pytest.fixture(scope="module")
def arms():
    return {seed: {use_reid: _run_arm(seed, use_reid)
                   for use_reid in (True, False)}
            for seed in (3, 7)}


class TestCrossingGroundTruth:
    def test_per_camera_tracking_actually_id_switches(self, arms):
        """The scenario is only meaningful if local tracking fails: with
        2 actors, clean per-camera tracking would create exactly 2 tracks
        per camera — the crossing must force substantially more."""
        for seed, by_arm in arms.items():
            modules, _, _ = by_arm[False]  # degraded arm: raw IoU identity
            created = sum(len(m.created_track_ids)
                          for m in modules.values())
            assert created > 2 * len(modules), (seed, created)

    def test_reid_recovers_exact_association(self, arms):
        for seed, by_arm in arms.items():
            _, core, accuracy = by_arm[True]
            assert accuracy["id_switches"] == 0, (seed, accuracy)
            assert accuracy["precision"] >= 0.95, (seed, accuracy)
            assert accuracy["recall"] >= 0.95, (seed, accuracy)
            # exact fused-track-to-actor mapping: each live fused track
            # covers exactly one actor, and the mapping is a bijection
            actor_of = {}
            for track in core.live_tracks():
                actors = {
                    core._snapshots[cam]["tracklets"][tid]["actor_id"]
                    for cam, tid in track.provenance
                }
                assert len(actors) == 1, (seed, track)
                actor_of[track.fused_id] = actors.pop()
            assert sorted(actor_of.values()) == [0, 1], (seed, actor_of)

    def test_degraded_arm_provably_worse(self, arms):
        """Re-ID disabled (world-position association) on the identical
        scenario: fused identities switch at the crossing and pair
        precision drops below the re-ID arm's."""
        for seed, by_arm in arms.items():
            _, _, with_reid = (None, None, by_arm[True][2])
            _, _, degraded = (None, None, by_arm[False][2])
            assert degraded["id_switches"] >= 1, (seed, degraded)
            assert degraded["id_switches"] > with_reid["id_switches"]
            assert degraded["precision"] < with_reid["precision"], (
                seed, degraded, with_reid,
            )


def test_deployed_pipeline_meets_the_same_bar():
    """End to end through the real home: rig → branches → fusion over the
    kernel, same accuracy bar as the kernel-free replay."""
    from repro.apps import (
        install_scene_services,
        multi_camera_pipeline_config,
    )
    from repro.core import VideoPipe
    from repro.devices import DeviceSpec

    home = VideoPipe.paper_testbed(seed=7)
    home.add_device(DeviceSpec(name="camera", kind="phone", cpu_factor=2.5,
                               cores=8, supports_containers=False))
    home.enable_audit()
    install_scene_services(home, "desktop")
    pipeline = home.deploy_pipeline(
        multi_camera_pipeline_config(fps=FPS, duration_s=DURATION_S)
    )
    home.run(until=DURATION_S + 1.0)

    fusion = pipeline.module_instance("scene_fusion_module")
    metrics = pipeline.metrics
    completed = metrics.counter("frames_completed")
    # every tick either fused whole or dropped whole at the source (§2.3
    # credit gate); nothing is lost mid-pipeline and nothing stays in flight
    total = int(DURATION_S * FPS) * 3
    assert completed + metrics.counter("frames_dropped") == total
    assert completed >= 0.9 * total  # the occasional busy tick is fine
    assert metrics.frames_in_flight == 0
    accuracy = fusion_accuracy(fusion.history)
    assert accuracy["id_switches"] == 0, accuracy
    assert accuracy["precision"] >= 0.95, accuracy
    assert accuracy["recall"] >= 0.95, accuracy
    assert home.check_invariants() == []
