"""Integration tests: the fitness application end to end (§4.1, §5)."""

import pytest

from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.core import VideoPipe


def deploy_fitness(recognizer, arch="videopipe", fps=10.0, duration=10.0, seed=2):
    home = VideoPipe.paper_testbed(seed=seed)
    services = install_fitness_services(
        home, recognizer=recognizer, baseline_layout=(arch == "baseline")
    )
    app = FitnessApp(home, services, architecture=arch)
    pipeline = app.deploy(fitness_pipeline_config(fps=fps, duration_s=duration))
    return home, services, pipeline


class TestVideoPipeArchitecture:
    @pytest.fixture(scope="class")
    def run(self, fitness_recognizer):
        home, services, pipeline = deploy_fitness(fitness_recognizer)
        home.run(until=11.0)
        return home, services, pipeline

    def test_placement_matches_fig4(self, run):
        _, _, pipeline = run
        assert pipeline.device_of("video_streaming_module") == "phone"
        assert pipeline.device_of("pose_detector_module") == "desktop"
        assert pipeline.device_of("activity_detector_module") == "desktop"
        assert pipeline.device_of("rep_counter_module") == "tv"
        assert pipeline.device_of("display_module") == "tv"

    def test_frames_flow_to_display(self, run):
        _, services, pipeline = run
        assert services.sink.count > 50
        assert pipeline.metrics.counter("frames_completed") > 50

    def test_no_module_errors(self, run):
        _, _, pipeline = run
        for name in pipeline.module_names():
            assert pipeline.module(name).errors == [], name

    def test_no_frame_leaks(self, run):
        home, _, pipeline = run
        # run a little past the source's end so in-flight frames drain
        home.run(until=12.0)
        for device in home.devices.values():
            assert len(device.frame_store) <= 1, device.name

    def test_overlay_reaches_display(self, run):
        _, services, _ = run
        labelled = [f for f in services.sink.frames if f.label is not None]
        assert labelled
        assert all(f.label == "squat" for f in labelled[-10:])
        counted = [f for f in services.sink.frames if f.reps is not None]
        assert counted
        # ~10 s of 2 s squats: the final count should be close to 4-5
        assert 2 <= counted[-1].reps <= 6

    def test_stage_latencies_recorded(self, run):
        _, _, pipeline = run
        means = pipeline.metrics.stage_means_ms()
        for stage in ("load_frame", "pose_detection", "activity_detection",
                      "rep_count", "total_duration"):
            assert stage in means, stage
        assert means["pose_detection"] > means["activity_detection"]
        assert means["total_duration"] > means["pose_detection"]

    def test_glass_to_glass_latency_sane(self, run):
        _, services, _ = run
        lags = [f.glass_to_glass_s for f in services.sink.frames]
        # capture→screen including any source-side staleness
        assert 0.05 < sum(lags) / len(lags) < 0.5

    def test_pose_service_utilization_dominates(self, run):
        home, _, _ = run
        pose_host = home.registry.any_host("pose_detector")
        activity_host = home.registry.any_host("activity_classifier")
        assert pose_host.utilization() > activity_host.utilization()


class TestBaselineArchitecture:
    @pytest.fixture(scope="class")
    def run(self, fitness_recognizer):
        home, services, pipeline = deploy_fitness(fitness_recognizer,
                                                  arch="baseline")
        home.run(until=11.0)
        return home, services, pipeline

    def test_all_modules_on_phone(self, run):
        _, _, pipeline = run
        for name in pipeline.module_names():
            assert pipeline.device_of(name) == "phone", name

    def test_services_called_remotely(self, run):
        home, _, _ = run
        pose_host = home.registry.any_host("pose_detector")
        assert pose_host.remote_calls > 0
        assert pose_host.local_calls == 0

    def test_still_produces_output(self, run):
        _, services, pipeline = run
        assert services.sink.count > 30
        for name in pipeline.module_names():
            assert pipeline.module(name).errors == [], name


class TestArchitectureComparison:
    def test_videopipe_beats_baseline_on_throughput(self, fitness_recognizer):
        """§5.2.1: co-location wins once the source outruns the pipeline."""
        results = {}
        for arch in ("videopipe", "baseline"):
            home, _, pipeline = deploy_fitness(fitness_recognizer, arch=arch,
                                               fps=30.0, duration=12.0)
            home.run(until=13.0)
            results[arch] = pipeline.metrics.throughput_fps(13.0, warmup_s=2.0)
        assert results["videopipe"] > results["baseline"] * 1.15

    def test_videopipe_beats_baseline_on_every_stage(self, fitness_recognizer):
        """Fig. 6's per-stage ordering."""
        means = {}
        for arch in ("videopipe", "baseline"):
            home, _, pipeline = deploy_fitness(fitness_recognizer, arch=arch,
                                               fps=10.0, duration=10.0)
            home.run(until=11.0)
            means[arch] = pipeline.metrics.stage_means_ms()
        for stage in ("load_frame", "pose_detection", "activity_detection",
                      "rep_count", "total_duration"):
            assert means["videopipe"][stage] < means["baseline"][stage], stage

    def test_throughput_saturates_with_source_rate(self, fitness_recognizer):
        """Table 2: FPS tracks the source at low rates, then flattens."""
        fps_out = {}
        for fps in (5.0, 30.0, 60.0):
            home, _, pipeline = deploy_fitness(fitness_recognizer, fps=fps,
                                               duration=12.0)
            home.run(until=13.0)
            fps_out[fps] = pipeline.metrics.throughput_fps(13.0, warmup_s=2.0)
        assert fps_out[5.0] == pytest.approx(5.0, abs=0.6)
        assert fps_out[30.0] > 9.0
        # saturation: tripling the source rate changes nothing
        assert fps_out[60.0] == pytest.approx(fps_out[30.0], rel=0.1)

    def test_source_drops_frames_beyond_capacity(self, fitness_recognizer):
        home, _, pipeline = deploy_fitness(fitness_recognizer, fps=30.0,
                                           duration=10.0)
        home.run(until=11.0)
        source = pipeline.module_instance("video_streaming_module").source
        assert source.dropped_count > 100  # ~20 of 30 fps dropped at source
        assert source.drop_rate > 0.5
