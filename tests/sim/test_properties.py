"""Property-based tests for kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Kernel, Resource
from repro.sim.events import LOW, NORMAL, URGENT


@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50)
)
def test_execution_times_are_monotone(delays):
    """Events always execute in non-decreasing time order."""
    kernel = Kernel()
    times = []
    for d in delays:
        kernel.schedule(d, lambda: times.append(kernel.now))
    kernel.run()
    assert times == sorted(times)
    assert kernel.now == max(delays)


@given(
    entries=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0),
            st.sampled_from([URGENT, NORMAL, LOW]),
        ),
        min_size=1,
        max_size=50,
    )
)
def test_priority_then_fifo_within_same_time(entries):
    """At equal times, events run by priority then insertion order."""
    kernel = Kernel()
    order = []
    for i, (delay, priority) in enumerate(entries):
        kernel.schedule(
            delay, lambda i=i: order.append(i), priority=priority
        )
    kernel.run()
    keys = [(entries[i][0], entries[i][1], i) for i in order]
    assert keys == sorted(keys)


@given(
    holds=st.lists(st.floats(min_value=0.001, max_value=1.0), min_size=1, max_size=20),
    capacity=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=50)
def test_resource_never_exceeds_capacity(holds, capacity):
    """Concurrent holders never exceed capacity; all work completes."""
    kernel = Kernel()
    resource = Resource(kernel, capacity=capacity)
    active = {"count": 0, "max": 0}
    completed = []

    def worker(duration, tag):
        grant = yield resource.request()
        active["count"] += 1
        active["max"] = max(active["max"], active["count"])
        assert active["count"] <= capacity
        yield duration
        active["count"] -= 1
        resource.release(grant)
        completed.append(tag)

    for i, duration in enumerate(holds):
        kernel.process(worker(duration, i))
    kernel.run()
    assert sorted(completed) == list(range(len(holds)))
    assert active["max"] <= capacity
    assert resource.in_use == 0


@given(
    durations=st.lists(
        st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=15
    )
)
@settings(max_examples=50)
def test_single_slot_resource_serializes_total_time(durations):
    """With capacity 1, total elapsed time is the sum of hold times."""
    kernel = Kernel()
    resource = Resource(kernel, capacity=1)

    def worker(duration):
        grant = yield resource.request()
        yield duration
        resource.release(grant)

    for d in durations:
        kernel.process(worker(d))
    kernel.run()
    assert abs(kernel.now - sum(durations)) < 1e-9 * max(1.0, sum(durations))


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20)
def test_simulation_is_reproducible(seed):
    """The same seeded workload produces identical event traces."""
    from repro.sim import RngStreams

    def run_once():
        kernel = Kernel()
        rng = RngStreams(seed=seed).stream("workload")
        trace = []

        def proc():
            for _ in range(10):
                yield float(rng.exponential(0.1))
                trace.append(kernel.now)

        kernel.process(proc())
        kernel.run()
        return trace

    assert run_once() == run_once()
