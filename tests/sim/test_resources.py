"""Unit tests for resources and stores."""

import pytest

from repro.errors import SimulationError
from repro.sim import Kernel, Resource, Store


@pytest.fixture
def kernel():
    return Kernel()


def hold(kernel, resource, duration, log, tag, priority=0):
    """A process that holds one slot for *duration* seconds."""

    def proc():
        grant = yield resource.request(priority=priority)
        log.append((tag, "acquired", kernel.now))
        yield duration
        resource.release(grant)
        log.append((tag, "released", kernel.now))

    return kernel.process(proc(), name=tag)


class TestResource:
    def test_capacity_must_be_positive(self, kernel):
        with pytest.raises(SimulationError):
            Resource(kernel, capacity=0)

    def test_immediate_grant_when_free(self, kernel):
        res = Resource(kernel, capacity=1)
        sig = res.request()
        assert sig.succeeded  # granted synchronously
        assert res.in_use == 1
        assert res.available == 0

    def test_contention_serializes_holders(self, kernel):
        res = Resource(kernel, capacity=1)
        log = []
        hold(kernel, res, 1.0, log, "a")
        hold(kernel, res, 1.0, log, "b")
        kernel.run()
        assert ("a", "acquired", 0.0) in log
        assert ("b", "acquired", 1.0) in log
        assert kernel.now == 2.0

    def test_capacity_two_runs_in_parallel(self, kernel):
        res = Resource(kernel, capacity=2)
        log = []
        hold(kernel, res, 1.0, log, "a")
        hold(kernel, res, 1.0, log, "b")
        kernel.run()
        acquired = [t for (_, what, t) in log if what == "acquired"]
        assert acquired == [0.0, 0.0]
        assert kernel.now == 1.0

    def test_shrink_validation(self, kernel):
        res = Resource(kernel, capacity=2)
        with pytest.raises(SimulationError):
            res.shrink(0)
        with pytest.raises(SimulationError):
            res.shrink(2)  # would leave zero slots

    def test_shrink_is_lazy_for_busy_slots(self, kernel):
        res = Resource(kernel, capacity=2)
        log = []
        hold(kernel, res, 1.0, log, "a")
        hold(kernel, res, 1.0, log, "b")
        hold(kernel, res, 1.0, log, "c")  # queued behind a and b
        observed = {}

        def shrink_mid_run():
            res.shrink(1)
            # both holders keep their grants past the new capacity
            observed["in_use"] = res.in_use
            observed["capacity"] = res.capacity

        kernel.schedule(0.5, shrink_mid_run)
        kernel.run()
        assert observed == {"in_use": 2, "capacity": 1}
        # the waiter only got the single surviving slot after BOTH released
        assert ("c", "acquired", 1.0) in log
        assert res.in_use == 0

    def test_shrink_then_grow_round_trips(self, kernel):
        res = Resource(kernel, capacity=3)
        res.shrink(2)
        res.grow(1)
        assert res.capacity == 2

    def test_priority_order_served_first(self, kernel):
        res = Resource(kernel, capacity=1)
        log = []
        hold(kernel, res, 1.0, log, "holder")
        hold(kernel, res, 1.0, log, "low", priority=5)
        hold(kernel, res, 1.0, log, "high", priority=1)
        kernel.run()
        order = [tag for (tag, what, _) in log if what == "acquired"]
        assert order == ["holder", "high", "low"]

    def test_fifo_among_equal_priority(self, kernel):
        res = Resource(kernel, capacity=1)
        log = []
        for tag in ["holder", "x", "y", "z"]:
            hold(kernel, res, 1.0, log, tag)
        kernel.run()
        order = [tag for (tag, what, _) in log if what == "acquired"]
        assert order == ["holder", "x", "y", "z"]

    def test_double_release_rejected(self, kernel):
        res = Resource(kernel)
        sig = res.request()
        grant = sig.value
        res.release(grant)
        with pytest.raises(SimulationError):
            res.release(grant)

    def test_release_foreign_grant_rejected(self, kernel):
        res_a = Resource(kernel)
        res_b = Resource(kernel)
        grant = res_a.request().value
        with pytest.raises(SimulationError):
            res_b.release(grant)

    def test_grant_wait_time_measured(self, kernel):
        res = Resource(kernel, capacity=1)
        log = []
        hold(kernel, res, 2.0, log, "holder")
        waits = []

        def waiter():
            grant = yield res.request()
            waits.append(grant.wait_time)
            res.release(grant)

        kernel.process(waiter())
        kernel.run()
        assert waits == [2.0]

    def test_utilization_integral(self, kernel):
        res = Resource(kernel, capacity=1)
        log = []
        hold(kernel, res, 1.0, log, "a")

        def end():
            yield 4.0

        kernel.process(end())
        kernel.run()
        # busy 1s of 4s total
        assert res.utilization() == pytest.approx(0.25)

    def test_queue_length_reflects_waiters(self, kernel):
        res = Resource(kernel, capacity=1)
        res.request()
        res.request()
        res.request()
        assert res.queue_length == 2


class TestStore:
    def test_put_then_get_immediate(self, kernel):
        store = Store(kernel)
        store.put("item")
        sig = store.get()
        assert sig.succeeded
        assert sig.value == "item"

    def test_get_blocks_until_put(self, kernel):
        store = Store(kernel)
        results = []

        def consumer():
            item = yield store.get()
            results.append((item, kernel.now))

        kernel.process(consumer())
        kernel.schedule(2.0, store.put, "late-item")
        kernel.run()
        assert results == [("late-item", 2.0)]

    def test_fifo_order(self, kernel):
        store = Store(kernel)
        for item in [1, 2, 3]:
            store.put(item)
        assert [store.get().value for _ in range(3)] == [1, 2, 3]

    def test_getters_served_in_order(self, kernel):
        store = Store(kernel)
        first = store.get()
        second = store.get()
        store.put("a")
        store.put("b")
        assert first.value == "a"
        assert second.value == "b"

    def test_len_counts_buffered_items(self, kernel):
        store = Store(kernel)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2

    def test_drain_empties_store(self, kernel):
        store = Store(kernel)
        store.put(1)
        store.put(2)
        assert store.drain() == [1, 2]
        assert len(store) == 0
