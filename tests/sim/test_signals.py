"""Unit tests for one-shot signals and composite waits."""

import pytest

from repro.errors import SimulationError
from repro.sim import Kernel, all_of, any_of


@pytest.fixture
def kernel():
    return Kernel()


class TestSignalLifecycle:
    def test_initial_state(self, kernel):
        sig = kernel.signal("s")
        assert sig.pending and not sig.resolved
        assert not sig.succeeded and not sig.failed

    def test_value_of_pending_signal_raises(self, kernel):
        with pytest.raises(SimulationError):
            kernel.signal().value

    def test_succeed_stores_value(self, kernel):
        sig = kernel.signal().succeed(7)
        assert sig.succeeded
        assert sig.value == 7

    def test_fail_stores_exception(self, kernel):
        err = ValueError("boom")
        sig = kernel.signal().fail(err)
        assert sig.failed
        assert sig.exception is err
        with pytest.raises(ValueError):
            sig.value

    def test_double_resolution_rejected(self, kernel):
        sig = kernel.signal().succeed(1)
        with pytest.raises(SimulationError):
            sig.succeed(2)
        with pytest.raises(SimulationError):
            sig.fail(ValueError())

    def test_fail_requires_exception_instance(self, kernel):
        with pytest.raises(TypeError):
            kernel.signal().fail("not an exception")


class TestWaiters:
    def test_waiter_fires_on_success(self, kernel):
        sig = kernel.signal()
        seen = []
        sig.wait(lambda v, e: seen.append((v, e)))
        sig.succeed("x")
        kernel.run()
        assert seen == [("x", None)]

    def test_waiter_attached_after_resolution_still_fires(self, kernel):
        sig = kernel.signal().succeed("x")
        seen = []
        sig.wait(lambda v, e: seen.append(v))
        kernel.run()
        assert seen == ["x"]

    def test_waiters_never_fire_synchronously(self, kernel):
        sig = kernel.signal()
        seen = []
        sig.wait(lambda v, e: seen.append(v))
        sig.succeed("x")
        assert seen == []  # not yet: fires on next kernel step
        kernel.run()
        assert seen == ["x"]

    def test_discard_removes_waiter(self, kernel):
        sig = kernel.signal()
        seen = []

        def waiter(v, e):
            seen.append(v)

        sig.wait(waiter)
        sig.discard(waiter)
        sig.succeed(1)
        kernel.run()
        assert seen == []

    def test_multiple_waiters_all_fire_in_order(self, kernel):
        sig = kernel.signal()
        seen = []
        sig.wait(lambda v, e: seen.append("first"))
        sig.wait(lambda v, e: seen.append("second"))
        sig.succeed(None)
        kernel.run()
        assert seen == ["first", "second"]


class TestAllOf:
    def test_collects_all_values_in_order(self, kernel):
        sigs = [kernel.signal() for _ in range(3)]
        combined = all_of(kernel, sigs)
        sigs[2].succeed("c")
        sigs[0].succeed("a")
        sigs[1].succeed("b")
        kernel.run()
        assert combined.value == ["a", "b", "c"]

    def test_empty_input_succeeds_immediately(self, kernel):
        assert all_of(kernel, []).value == []

    def test_first_failure_propagates(self, kernel):
        sigs = [kernel.signal() for _ in range(2)]
        combined = all_of(kernel, sigs)
        sigs[0].fail(RuntimeError("x"))
        kernel.run()
        assert combined.failed

    def test_late_failure_after_resolution_is_ignored(self, kernel):
        sigs = [kernel.signal() for _ in range(2)]
        combined = all_of(kernel, sigs)
        sigs[0].succeed(1)
        sigs[1].fail(RuntimeError("x"))
        kernel.run()
        assert combined.failed  # failure won because both resolved pre-run


class TestAnyOf:
    def test_first_resolution_wins_with_index(self, kernel):
        sigs = [kernel.signal() for _ in range(3)]
        combined = any_of(kernel, sigs)
        kernel.schedule(1.0, sigs[1].succeed, "winner")
        kernel.schedule(2.0, sigs[0].succeed, "loser")
        kernel.run()
        assert combined.value == (1, "winner")

    def test_empty_input_rejected(self, kernel):
        with pytest.raises(SimulationError):
            any_of(kernel, [])

    def test_failure_propagates_if_first(self, kernel):
        sigs = [kernel.signal() for _ in range(2)]
        combined = any_of(kernel, sigs)
        sigs[0].fail(RuntimeError("x"))
        kernel.run()
        assert combined.failed


class TestCancelTimer:
    def test_abandoned_timeout_does_not_hold_the_clock(self, kernel):
        sig = kernel.timeout(100.0)
        sig.cancel_timer()
        kernel.schedule(1.0, lambda: None)
        kernel.run()
        assert kernel.now == 1.0
        assert sig.pending  # cancelled, never fires

    def test_cancel_timer_on_plain_signal_is_noop(self, kernel):
        sig = kernel.signal()
        sig.cancel_timer()  # no timer attached: must not raise
        sig.succeed(1)
        assert sig.value == 1

    def test_cancel_after_resolution_is_noop(self, kernel):
        sig = kernel.timeout(0.5)
        kernel.run()
        assert sig.succeeded
        sig.cancel_timer()  # must not raise
