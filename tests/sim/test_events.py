"""Unit tests for the event queue primitives."""

import pytest

from repro.sim.events import LOW, NORMAL, URGENT, Event, EventQueue


def make_event(time, priority=NORMAL, seq=0):
    return Event(time, priority, seq, lambda: None, ())


class TestEventOrdering:
    def test_earlier_time_first(self):
        assert make_event(1.0) < make_event(2.0)

    def test_priority_breaks_time_ties(self):
        assert make_event(1.0, URGENT, 5) < make_event(1.0, NORMAL, 1)
        assert make_event(1.0, NORMAL, 5) < make_event(1.0, LOW, 1)

    def test_sequence_breaks_full_ties(self):
        assert make_event(1.0, NORMAL, 1) < make_event(1.0, NORMAL, 2)


class TestEventQueue:
    def test_starts_empty(self):
        q = EventQueue()
        assert len(q) == 0
        assert not q
        assert q.peek_time() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_pop_returns_in_order(self):
        q = EventQueue()
        events = [make_event(t, seq=i) for i, t in enumerate([3.0, 1.0, 2.0])]
        for e in events:
            q.push(e)
        assert [q.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        first = make_event(1.0, seq=1)
        second = make_event(2.0, seq=2)
        q.push(first)
        q.push(second)
        q.cancel(first)
        assert len(q) == 1
        assert q.pop() is second

    def test_cancel_twice_counts_once(self):
        q = EventQueue()
        e = make_event(1.0)
        q.push(e)
        q.cancel(e)
        q.cancel(e)
        assert len(q) == 0

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        first = make_event(1.0, seq=1)
        q.push(first)
        q.push(make_event(5.0, seq=2))
        q.cancel(first)
        assert q.peek_time() == 5.0

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(make_event(1.0))
        assert q.peek_time() == 1.0
        assert len(q) == 1
