"""Unit tests for the discrete-event kernel."""

import time as wall_time

import pytest

from repro.errors import SimulationError
from repro.sim import Kernel, RealtimeKernel


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert Kernel().now == 0.0

    def test_schedule_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Kernel().schedule(-0.1, lambda: None)

    def test_events_run_in_time_order(self):
        k = Kernel()
        seen = []
        k.schedule(2.0, seen.append, "b")
        k.schedule(1.0, seen.append, "a")
        k.schedule(3.0, seen.append, "c")
        k.run()
        assert seen == ["a", "b", "c"]
        assert k.now == 3.0

    def test_same_time_events_run_in_insertion_order(self):
        k = Kernel()
        seen = []
        for tag in "abc":
            k.schedule(1.0, seen.append, tag)
        k.run()
        assert seen == ["a", "b", "c"]

    def test_cancel_prevents_execution(self):
        k = Kernel()
        seen = []
        event = k.schedule(1.0, seen.append, "x")
        k.cancel(event)
        k.run()
        assert seen == []

    def test_run_until_stops_clock_at_limit(self):
        k = Kernel()
        seen = []
        k.schedule(1.0, seen.append, "early")
        k.schedule(10.0, seen.append, "late")
        k.run(until=5.0)
        assert seen == ["early"]
        assert k.now == 5.0
        k.run()
        assert seen == ["early", "late"]

    def test_run_without_events_returns_current_time(self):
        k = Kernel()
        assert k.run() == 0.0

    def test_run_until_with_no_events_advances_clock(self):
        k = Kernel()
        k.run(until=7.0)
        assert k.now == 7.0

    def test_events_scheduled_during_run_execute(self):
        k = Kernel()
        seen = []

        def outer():
            seen.append("outer")
            k.schedule(1.0, seen.append, "inner")

        k.schedule(1.0, outer)
        k.run()
        assert seen == ["outer", "inner"]
        assert k.now == 2.0

    def test_stop_halts_run(self):
        k = Kernel()
        seen = []
        k.schedule(1.0, lambda: (seen.append("a"), k.stop()))
        k.schedule(2.0, seen.append, "b")
        k.run()
        assert seen == ["a"]
        k.run()
        assert seen == ["a", "b"]


class Recorder:
    def __init__(self):
        self.calls = []

    def on_schedule(self, now, event):
        self.calls.append(("S", now, event.time, event.seq))

    def on_execute(self, now, event):
        self.calls.append(("X", now, event.time, event.seq))


class TestObservers:
    def test_observer_sees_every_schedule_and_execute(self):
        kernel = Kernel()
        recorder = Recorder()
        kernel.add_observer(recorder)
        kernel.schedule(0.1, lambda: None)
        kernel.schedule(0.2, lambda: None)
        kernel.run()
        assert [c[0] for c in recorder.calls] == ["S", "S", "X", "X"]
        # execute order follows event time, schedule order follows seq
        assert recorder.calls[2][2] == 0.1
        assert recorder.calls[3][2] == 0.2

    def test_add_observer_is_idempotent(self):
        kernel = Kernel()
        recorder = Recorder()
        kernel.add_observer(recorder)
        kernel.add_observer(recorder)
        kernel.schedule(0.1, lambda: None)
        assert len(recorder.calls) == 1

    def test_remove_observer_stops_notifications(self):
        kernel = Kernel()
        recorder = Recorder()
        kernel.add_observer(recorder)
        kernel.schedule(0.1, lambda: None)
        kernel.remove_observer(recorder)
        kernel.run()
        assert [c[0] for c in recorder.calls] == ["S"]

    def test_observation_does_not_perturb_event_sequencing(self):
        def build(observed):
            kernel = Kernel()
            if observed:
                kernel.add_observer(Recorder())
            log = []

            def worker(tag, period):
                for _ in range(3):
                    log.append((kernel.now, tag))
                    yield period

            kernel.process(worker("a", 0.1))
            kernel.process(worker("b", 0.15))
            kernel.run()
            return log, kernel._seq

        assert build(observed=True) == build(observed=False)


class TestTimeout:
    def test_timeout_resolves_with_value(self):
        k = Kernel()
        sig = k.timeout(1.5, "payload")
        assert sig.pending
        k.run()
        assert sig.value == "payload"
        assert k.now == 1.5

    def test_zero_timeout_resolves_at_current_time(self):
        k = Kernel()
        sig = k.timeout(0.0)
        k.run()
        assert sig.succeeded
        assert k.now == 0.0


class TestRunUntilResolved:
    def test_returns_signal_value(self):
        k = Kernel()
        sig = k.timeout(2.0, "done")
        assert k.run_until_resolved(sig) == "done"
        assert k.now == 2.0

    def test_does_not_run_past_resolution_unnecessarily(self):
        k = Kernel()
        sig = k.timeout(1.0)
        k.timeout(100.0)
        k.run_until_resolved(sig)
        assert k.now == 1.0

    def test_raises_when_queue_drains_first(self):
        k = Kernel()
        sig = k.signal()
        with pytest.raises(SimulationError, match="drained"):
            k.run_until_resolved(sig)

    def test_raises_at_time_limit(self):
        k = Kernel()
        sig = k.timeout(10.0)
        with pytest.raises(SimulationError, match="time limit"):
            k.run_until_resolved(sig, limit=1.0)


class TestRealtimeKernel:
    def test_rejects_nonpositive_speed(self):
        with pytest.raises(SimulationError):
            RealtimeKernel(speed=0)

    def test_paces_against_wall_clock(self):
        k = RealtimeKernel(speed=50.0)  # 50x fast: 0.5 sim-sec ~ 10 wall-ms
        seen = []
        k.schedule(0.5, seen.append, "x")
        start = wall_time.monotonic()
        k.run()
        elapsed = wall_time.monotonic() - start
        assert seen == ["x"]
        assert elapsed >= 0.008

    def test_flag_distinguishes_modes(self):
        assert RealtimeKernel().realtime
        assert not Kernel().realtime
