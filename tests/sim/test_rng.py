"""Unit tests for deterministic named RNG streams."""

import numpy as np
import pytest

from repro.sim import RngStreams, lognormal_around


class TestRngStreams:
    def test_same_name_returns_same_generator(self):
        streams = RngStreams(seed=1)
        assert streams.stream("a") is streams.stream("a")

    def test_same_seed_and_name_reproduce_draws(self):
        first = RngStreams(seed=42).stream("link/wifi").random(5)
        second = RngStreams(seed=42).stream("link/wifi").random(5)
        np.testing.assert_array_equal(first, second)

    def test_different_names_are_independent(self):
        streams = RngStreams(seed=42)
        a = streams.stream("a").random(5)
        b = streams.stream("b").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(seed=1).stream("x").random(5)
        b = RngStreams(seed=2).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_adding_streams_does_not_perturb_existing(self):
        plain = RngStreams(seed=7)
        expected = plain.stream("svc/pose").random(3)

        noisy = RngStreams(seed=7)
        noisy.stream("svc/other").random(100)  # extra stream created first
        actual = noisy.stream("svc/pose").random(3)
        np.testing.assert_array_equal(expected, actual)

    def test_scoped_rng_namespaces(self):
        root = RngStreams(seed=3)
        scope = root.spawn("deviceA")
        direct = RngStreams(seed=3).stream("deviceA/cpu").random(4)
        np.testing.assert_array_equal(scope.stream("cpu").random(4), direct)

    def test_nested_scopes(self):
        root = RngStreams(seed=3)
        nested = root.spawn("a").spawn("b")
        direct = RngStreams(seed=3).stream("a/b/c").random(2)
        np.testing.assert_array_equal(nested.stream("c").random(2), direct)


class TestLognormalAround:
    def test_zero_cv_is_deterministic(self):
        rng = RngStreams(seed=0).stream("t")
        assert lognormal_around(rng, 0.05, 0.0) == 0.05

    def test_zero_mean_returns_zero(self):
        rng = RngStreams(seed=0).stream("t")
        assert lognormal_around(rng, 0.0, 0.5) == 0.0

    def test_negative_inputs_rejected(self):
        rng = RngStreams(seed=0).stream("t")
        with pytest.raises(ValueError):
            lognormal_around(rng, -1.0, 0.1)
        with pytest.raises(ValueError):
            lognormal_around(rng, 1.0, -0.1)

    def test_sample_mean_and_cv_match_parameters(self):
        rng = RngStreams(seed=11).stream("t")
        samples = np.array([lognormal_around(rng, 0.050, 0.2) for _ in range(20000)])
        assert samples.mean() == pytest.approx(0.050, rel=0.02)
        assert samples.std() / samples.mean() == pytest.approx(0.2, rel=0.05)
        assert (samples > 0).all()
