"""Unit tests for generator-based processes."""

import pytest

from repro.errors import Interrupt, SimulationError
from repro.sim import Kernel


@pytest.fixture
def kernel():
    return Kernel()


class TestBasicExecution:
    def test_return_value_resolves_done(self, kernel):
        def proc():
            yield 1.0
            return "result"

        p = kernel.process(proc())
        kernel.run()
        assert p.done.value == "result"
        assert kernel.now == 1.0

    def test_yield_number_is_timeout(self, kernel):
        def proc():
            yield 0.25
            yield 0.75

        kernel.process(proc())
        kernel.run()
        assert kernel.now == 1.0

    def test_yield_signal_receives_value(self, kernel):
        sig = kernel.signal()
        results = []

        def proc():
            value = yield sig
            results.append(value)

        kernel.process(proc())
        kernel.schedule(1.0, sig.succeed, "payload")
        kernel.run()
        assert results == ["payload"]

    def test_failed_signal_raises_inside_process(self, kernel):
        sig = kernel.signal()

        def proc():
            try:
                yield sig
            except RuntimeError as e:
                return f"caught {e}"

        p = kernel.process(proc())
        kernel.schedule(1.0, sig.fail, RuntimeError("boom"))
        kernel.run()
        assert p.done.value == "caught boom"

    def test_escaping_exception_fails_done(self, kernel):
        def proc():
            yield 1.0
            raise ValueError("oops")

        p = kernel.process(proc())
        kernel.run()
        assert p.done.failed
        assert isinstance(p.done.exception, ValueError)

    def test_yield_process_joins_it(self, kernel):
        def child():
            yield 2.0
            return "child-result"

        def parent():
            result = yield kernel.process(child())
            return result

        p = kernel.process(parent())
        kernel.run()
        assert p.done.value == "child-result"
        assert kernel.now == 2.0

    def test_yield_invalid_object_fails_process(self, kernel):
        def proc():
            yield "not awaitable"

        p = kernel.process(proc())
        kernel.run()
        assert p.done.failed
        assert isinstance(p.done.exception, SimulationError)

    def test_requires_generator(self, kernel):
        with pytest.raises(SimulationError):
            kernel.process(lambda: None)

    def test_alive_reflects_lifecycle(self, kernel):
        def proc():
            yield 1.0

        p = kernel.process(proc())
        assert p.alive
        kernel.run()
        assert not p.alive

    def test_starts_at_current_time_not_immediately(self, kernel):
        order = []

        def proc():
            order.append(("start", kernel.now))
            yield 0.0

        kernel.schedule(5.0, lambda: kernel.process(proc()))
        kernel.run()
        assert order == [("start", 5.0)]


class TestInterrupt:
    def test_interrupt_raises_in_process(self, kernel):
        causes = []

        def proc():
            try:
                yield 100.0
            except Interrupt as intr:
                causes.append(intr.cause)
            return "survived"

        p = kernel.process(proc())
        kernel.schedule(1.0, p.interrupt, "reason")
        kernel.run()
        assert causes == ["reason"]
        assert p.done.value == "survived"
        assert kernel.now == 1.0  # long timeout abandoned

    def test_unhandled_interrupt_fails_process(self, kernel):
        def proc():
            yield 100.0

        p = kernel.process(proc())
        kernel.schedule(1.0, p.interrupt)
        kernel.run()
        assert p.done.failed
        assert isinstance(p.done.exception, Interrupt)

    def test_interrupt_after_completion_is_noop(self, kernel):
        def proc():
            yield 1.0

        p = kernel.process(proc())
        kernel.run()
        p.interrupt()  # must not raise
        kernel.run()
        assert p.done.succeeded

    def test_stale_wakeup_after_interrupt_is_dropped(self, kernel):
        sig = kernel.signal()
        resumed = []

        def proc():
            try:
                value = yield sig
                resumed.append(value)
            except Interrupt:
                yield 10.0  # keep living after the interrupt
            return "ok"

        p = kernel.process(proc())
        kernel.schedule(1.0, p.interrupt)
        kernel.schedule(2.0, sig.succeed, "late")  # resolves the abandoned wait
        kernel.run()
        assert resumed == []  # the abandoned wait never delivered
        assert p.done.value == "ok"
