"""The enable_data_plane facade: arenas and pools, current and future."""

import pytest

from repro import DataPlaneConfig, VideoPipe
from repro.errors import ConfigError
from repro.services import FunctionService


def echo(name="echo"):
    return FunctionService(name, lambda payload, ctx: payload,
                           reference_cost_s=0.010)


class TestConfig:
    def test_defaults_turn_both_features_on(self):
        config = DataPlaneConfig()
        assert config.arena and config.replica_pool
        assert config.any_enabled

    def test_validation(self):
        with pytest.raises(ConfigError):
            DataPlaneConfig(arena_capacity_bytes=0)
        with pytest.raises(ConfigError):
            DataPlaneConfig(pool_slots=0)


class TestFacade:
    def test_applies_to_current_and_future_devices(self):
        home = VideoPipe.paper_testbed(seed=1)
        home.enable_data_plane()
        for device in home.devices.values():
            assert device.arena is not None
            assert device.replica_pool is not None
        late = home.add_device("laptop")
        assert late.arena is not None
        assert late.replica_pool is not None

    def test_future_hosts_join_the_device_pool(self):
        home = VideoPipe.paper_testbed(seed=1)
        home.enable_data_plane()
        host = home.deploy_service(echo(), "desktop")
        assert host.pool is home.device("desktop").replica_pool

    def test_existing_hosts_join_on_enable(self):
        home = VideoPipe.paper_testbed(seed=1)
        host = home.deploy_service(echo(), "desktop")
        home.enable_data_plane()
        assert host.pool is home.device("desktop").replica_pool

    def test_pool_sized_by_config(self):
        home = VideoPipe.paper_testbed(seed=1)
        home.enable_data_plane(DataPlaneConfig(pool_slots=3))
        assert home.device("desktop").replica_pool.base_slots == 3

    def test_halves_compose(self):
        home = VideoPipe.paper_testbed(seed=1)
        home.enable_arena()
        assert home.device("desktop").arena is not None
        assert home.device("desktop").replica_pool is None
        home.enable_replica_pool()
        assert home.device("desktop").arena is not None  # arena kept
        assert home.device("desktop").replica_pool is not None

    def test_all_off_config_is_a_noop(self):
        home = VideoPipe.paper_testbed(seed=1)
        home.enable_data_plane(DataPlaneConfig(arena=False, replica_pool=False))
        assert home.device("desktop").arena is None
        assert home.device("desktop").replica_pool is None

    def test_audit_watches_arenas_both_orders(self):
        first = VideoPipe.paper_testbed(seed=1)
        first.enable_audit()
        first.enable_data_plane()
        assert first.device("desktop").arena.auditor is first.auditor
        second = VideoPipe.paper_testbed(seed=1)
        second.enable_data_plane()
        second.enable_audit()
        assert second.device("desktop").arena.auditor is second.auditor

    def test_stats_aggregate_across_devices(self):
        home = VideoPipe.paper_testbed(seed=1)
        stats = home.data_plane_stats()
        assert stats["arena"]["allocs"] == 0  # all zeros while off
        home.enable_data_plane()
        stats = home.data_plane_stats()
        assert set(stats["arena"]["by_device"]) == set(home.devices)
        assert stats["pool"]["grants"] == 0
