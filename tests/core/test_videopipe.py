"""Unit tests for the VideoPipe home facade."""

import pytest

from repro.core import VideoPipe
from repro.devices import DeviceSpec
from repro.errors import ConfigError, DeviceError
from repro.net import BrokeredTransport, BrokerlessTransport
from repro.services import FunctionService, ScalingPolicy


class TestHomeConstruction:
    def test_paper_testbed_devices(self):
        home = VideoPipe.paper_testbed()
        assert sorted(home.devices) == ["desktop", "phone", "tv"]
        assert home.device("phone").spec.memory_mb == 6144

    def test_add_device_by_kind_and_spec(self):
        home = VideoPipe()
        home.add_device("laptop")
        home.add_device(DeviceSpec(name="cam2", kind="phone", cpu_factor=2.0))
        assert sorted(home.devices) == ["cam2", "laptop"]

    def test_duplicate_device_rejected(self):
        home = VideoPipe.paper_testbed()
        with pytest.raises(DeviceError):
            home.add_device("phone")

    def test_unknown_device_lookup(self):
        with pytest.raises(DeviceError):
            VideoPipe().device("ghost")

    def test_devices_joined_to_wifi(self):
        home = VideoPipe.paper_testbed()
        links = home.topology.path_links("phone", "tv")
        assert len(links) == 2  # via the access point

    def test_default_transport_is_brokerless(self):
        home = VideoPipe.paper_testbed()
        assert isinstance(home._get_transport(), BrokerlessTransport)

    def test_broker_transport(self):
        home = VideoPipe(transport="broker", broker_device="hub")
        home.add_device(DeviceSpec(name="hub", kind="desktop", cpu_factor=1.0,
                                   supports_containers=True))
        assert isinstance(home._get_transport(), BrokeredTransport)

    def test_broker_without_device_rejected(self):
        home = VideoPipe(transport="broker")
        with pytest.raises(ConfigError):
            home.add_device("phone")

    def test_unknown_transport_rejected(self):
        home = VideoPipe(transport="pigeon")
        with pytest.raises(ConfigError):
            home.add_device("phone")


class TestServiceDeployment:
    def test_container_service_placement_enforced(self):
        home = VideoPipe.paper_testbed()
        service = FunctionService("svc", lambda p, c: p, default_port=7300)
        with pytest.raises(DeviceError):
            home.deploy_service(service, "tv")  # TVs can't run containers
        host = home.deploy_service(service, "desktop")
        assert home.registry.any_host("svc") is host

    def test_native_service_runs_anywhere(self):
        home = VideoPipe.paper_testbed()
        service = FunctionService("disp", lambda p, c: p, default_port=7301)
        host = home.deploy_service(service, "tv", native=True)
        assert host.native

    def test_replicas_passed_through(self):
        home = VideoPipe.paper_testbed()
        host = home.deploy_service(
            FunctionService("svc", lambda p, c: p, default_port=7300),
            "desktop", replicas=3,
        )
        assert host.replicas == 3


class TestAutoscaling:
    def test_enable_watches_existing_and_future_hosts(self):
        home = VideoPipe.paper_testbed()
        home.deploy_service(FunctionService("a", lambda p, c: p,
                                            default_port=7300), "desktop")
        scaler = home.enable_autoscaling(ScalingPolicy(check_interval_s=0.1))
        home.deploy_service(FunctionService("b", lambda p, c: p,
                                            default_port=7301), "desktop")
        assert len(scaler._hosts) == 2

    def test_enable_is_idempotent(self):
        home = VideoPipe.paper_testbed()
        first = home.enable_autoscaling()
        assert home.enable_autoscaling() is first


class TestExecution:
    def test_run_for_advances_clock(self):
        home = VideoPipe.paper_testbed()
        home.run_for(2.5)
        assert home.now == pytest.approx(2.5)
        home.run_for(1.0)
        assert home.now == pytest.approx(3.5)

    def test_plan_strategies(self):
        from repro.pipeline import ModuleConfig, PipelineConfig

        home = VideoPipe.paper_testbed()
        config = PipelineConfig(
            name="p",
            modules=[ModuleConfig(name="m", include="./M.js",
                                  endpoint="bind#tcp://*:6000")],
        )
        colocated = home.plan(config, default_device="phone")
        assert colocated.strategy == "colocated"
        single = home.plan(config, strategy="single-host", host_device="phone")
        assert single.strategy == "single-host"
        with pytest.raises(ConfigError):
            home.plan(config, strategy="scatter")
