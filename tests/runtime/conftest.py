"""Shared runtime fixtures: two devices with module runtimes."""

import pytest

from repro.devices import Device, desktop, flagship_phone_2018
from repro.metrics import MetricsCollector
from repro.net import Address, BrokerlessTransport, LinkSpec, Topology
from repro.runtime import ModuleRuntime, PipelineWiring
from repro.sim import Kernel, RngStreams


class RuntimeHome:
    def __init__(self, seed=1):
        self.kernel = Kernel()
        self.rng = RngStreams(seed=seed)
        self.topology = Topology(self.kernel, self.rng)
        self.topology.add_wifi(
            "wifi", LinkSpec(latency_s=0.0012, jitter_cv=0.0, bandwidth_bps=120e6)
        )
        self.devices = {}
        self.runtimes = {}
        self.transport = None
        for spec in (flagship_phone_2018(), desktop()):
            self.topology.attach(spec.name, "wifi")
            device = Device(self.kernel, spec, self.rng)
            self.devices[spec.name] = device
        self.transport = BrokerlessTransport(self.kernel, self.topology)
        for name, device in self.devices.items():
            self.runtimes[name] = ModuleRuntime(self.kernel, device, self.transport)

    def wiring(self, addresses, next_modules=None, source=None):
        wiring = PipelineWiring("test", metrics=MetricsCollector("test"))
        wiring.addresses = {
            name: Address(dev, port) for name, (dev, port) in addresses.items()
        }
        wiring.next_modules = next_modules or {}
        wiring.source_module = source
        return wiring


@pytest.fixture
def home():
    return RuntimeHome()
