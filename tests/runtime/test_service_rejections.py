"""The ``service_rejections`` counter: breaker-open rejections, attributed
to the calling pipeline and surfaced by the monitor's pipeline probe."""

import pytest

from repro.core.videopipe import VideoPipe
from repro.apps import train_activity_recognizer
from repro.apps.fitness import (
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.faults import FaultPlan
from repro.monitor import pipeline_probe
from repro.pipeline.placement import SINGLE_HOST


@pytest.fixture(scope="module")
def recognizer():
    return train_activity_recognizer(seed=1, train_subjects=4)


def deploy_remote_calls(home, recognizer):
    """Single-host placement on the phone: every pose/activity call is a
    remote RPC to the desktop — the path the circuit breaker guards."""
    install_fitness_services(home, recognizer=recognizer)
    return home.deploy_pipeline(
        fitness_pipeline_config(fps=10.0),
        strategy=SINGLE_HOST, host_device="phone",
        prefer_local_services=False,
    )


class TestServiceRejections:
    def test_partition_trips_the_breaker_and_counts(self, recognizer):
        home = VideoPipe.paper_testbed(seed=9)
        pipeline = deploy_remote_calls(home, recognizer)
        # the desktop (hosting pose+activity) drops off Wi-Fi for 4 s:
        # enough consecutive transport failures to open the breaker, then
        # enough paced calls to hit the open circuit
        home.enable_fault_injection(
            FaultPlan().partition(2.0, "desktop", heal_after=4.0))
        home.run(until=10.0)
        rejections = pipeline.metrics.counter("service_rejections")
        assert rejections > 0
        # rejections are a strict subset of the calls made
        calls = pipeline.metrics.counter("service_calls.pose_detector")
        assert 0 < rejections < calls

    def test_healthy_run_counts_nothing(self, recognizer):
        home = VideoPipe.paper_testbed(seed=9)
        pipeline = deploy_remote_calls(home, recognizer)
        home.run(until=4.0)
        assert pipeline.metrics.counter("service_rejections") == 0

    def test_pipeline_probe_surfaces_the_counter(self, recognizer):
        home = VideoPipe.paper_testbed(seed=9)
        pipeline = deploy_remote_calls(home, recognizer)
        home.enable_fault_injection(
            FaultPlan().partition(2.0, "desktop", heal_after=4.0))
        home.run(until=10.0)
        sample = pipeline_probe(pipeline)()
        assert sample["service_rejections"] == float(
            pipeline.metrics.counter("service_rejections"))
        assert sample["service_rejections"] > 0
