"""Unit tests for the module class registry."""

import pytest

from repro.errors import ConfigError
from repro.runtime import (
    Module,
    create_module,
    is_registered,
    register_module,
    registered_modules,
)


class TestRegisterModule:
    def test_register_and_create(self):
        @register_module("./TestOnlyModuleA.js")
        class ModuleA(Module):
            def __init__(self, value=1):
                self.value = value

            def event_received(self, ctx, event):
                pass

        assert is_registered("./TestOnlyModuleA.js")
        instance = create_module("./TestOnlyModuleA.js", value=7)
        assert isinstance(instance, ModuleA)
        assert instance.value == 7

    def test_reregistering_same_class_is_idempotent(self):
        @register_module("./TestOnlyModuleB.js")
        class ModuleB(Module):
            def event_received(self, ctx, event):
                pass

        register_module("./TestOnlyModuleB.js")(ModuleB)  # no error

    def test_conflicting_registration_rejected(self):
        @register_module("./TestOnlyModuleC.js")
        class ModuleC(Module):
            def event_received(self, ctx, event):
                pass

        with pytest.raises(ConfigError, match="already registered"):
            @register_module("./TestOnlyModuleC.js")
            class Other(Module):
                def event_received(self, ctx, event):
                    pass

    def test_non_module_rejected(self):
        with pytest.raises(ConfigError):
            register_module("./NotAModule.js")(dict)

    def test_unknown_include_raises(self):
        with pytest.raises(ConfigError, match="no module registered"):
            create_module("./Ghost.js")

    def test_paper_modules_are_registered(self):
        import repro.apps  # noqa: F401 - triggers registration

        for include in (
            "./VideoStreamingModule.js",
            "./PoseDetectorModule.js",
            "./ActivityDetectorModule.js",
            "./RepCounterModule.js",
            "./DisplayModule.js",
            "./GestureControlModule.js",
            "./FallDetectorModule.js",
        ):
            assert is_registered(include), include

    def test_registry_copy_is_isolated(self):
        snapshot = registered_modules()
        snapshot["./Fake.js"] = Module
        assert not is_registered("./Fake.js")
