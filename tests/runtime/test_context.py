"""Unit tests for the module context API."""

import pytest

from repro.errors import ServiceError
from repro.frames import SyntheticCamera
from repro.motion import Squat
from repro.runtime import FunctionModule
from repro.services import FunctionService, LocalServiceStub, ServiceHost


def frame():
    return SyntheticCamera("phone", Squat()).capture(1, 0.0)


def deploy_with_ctx(home, name="m", device="phone", stubs=None, wiring=None,
                    addresses=None, next_modules=None, source=None):
    wiring = wiring or home.wiring(
        addresses or {name: (device, 5000)}, next_modules=next_modules, source=source
    )
    holder = {}
    home.runtimes[device].deploy(
        name,
        FunctionModule(lambda c, e: None, init_fn=lambda c: holder.update(ctx=c)),
        wiring.address_of(name),
        wiring,
        stubs or {},
    )
    return holder["ctx"], wiring


class TestIdentity:
    def test_basic_properties(self, home):
        ctx, wiring = deploy_with_ctx(home)
        assert ctx.module_name == "m"
        assert ctx.device_name == "phone"
        assert ctx.pipeline_name == "test"
        assert ctx.now == home.kernel.now
        assert ctx.metrics is wiring.metrics

    def test_rng_deterministic(self, home):
        ctx, _ = deploy_with_ctx(home)
        a = ctx.rng("noise").random(3)
        from .conftest import RuntimeHome

        other = RuntimeHome()
        ctx2, _ = deploy_with_ctx(other)
        assert list(a) == list(ctx2.rng("noise").random(3))


class TestServices:
    def make_stub(self, home, result=None):
        service = FunctionService("svc", lambda p, c: result or {"ok": True})
        host = ServiceHost(home.kernel, home.devices["phone"], service,
                           home.transport)
        return LocalServiceStub(host)

    def test_call_service_through_stub(self, home):
        stub = self.make_stub(home)
        ctx, wiring = deploy_with_ctx(home, stubs={"svc": stub})
        done = ctx.call_service("svc", {"q": 1})
        home.kernel.run()
        assert done.value == {"ok": True}
        assert wiring.metrics.counter("service_calls.svc") == 1

    def test_undeclared_service_rejected(self, home):
        ctx, _ = deploy_with_ctx(home)
        with pytest.raises(ServiceError, match="did not declare"):
            ctx.call_service("ghost", {})

    def test_service_introspection(self, home):
        stub = self.make_stub(home)
        ctx, _ = deploy_with_ctx(home, stubs={"svc": stub})
        assert ctx.has_service("svc")
        assert not ctx.has_service("ghost")
        assert ctx.service_is_local("svc")
        assert ctx.service_prepare_s("svc") == 0.0
        assert ctx.service_prepare_s("ghost") == 0.0


class TestFrames:
    def test_store_get_release_cycle(self, home):
        ctx, _ = deploy_with_ctx(home)
        f = frame()
        ref = ctx.store_frame(f)
        assert ctx.get_frame(ref) is f
        ctx.add_ref(ref)
        ctx.release(ref)
        ctx.release(ref)
        assert not home.devices["phone"].frame_store.contains(ref)


class TestFanOut:
    def test_call_next_delivers_to_all_targets(self, home):
        got = []
        wiring = home.wiring(
            {"a": ("phone", 5000), "b": ("phone", 5001), "c": ("desktop", 5002)},
            next_modules={"a": ["b", "c"]},
        )
        ctx, _ = deploy_with_ctx(home, name="a", wiring=wiring)
        for name, dev in (("b", "phone"), ("c", "desktop")):
            home.runtimes[dev].deploy(
                name, FunctionModule(lambda c, e: got.append((c.module_name, e.payload))),
                wiring.address_of(name), wiring,
            )
        ref = ctx.store_frame(frame())
        ctx.call_next({"frame": ref, "n": 1})
        home.kernel.run()
        assert sorted(name for name, _ in got) == ["b", "c"]
        # fan-out balanced the holds: b's ref lives on phone, c's landed on
        # desktop, and nothing leaked
        assert len(home.devices["phone"].frame_store) == 1
        assert len(home.devices["desktop"].frame_store) == 1

    def test_call_next_without_downstream_is_noop(self, home):
        ctx, _ = deploy_with_ctx(home)
        assert ctx.call_next({"x": 1}) == []

    def test_next_modules_listed(self, home):
        wiring = home.wiring(
            {"a": ("phone", 5000), "b": ("phone", 5001)},
            next_modules={"a": ["b"]},
        )
        ctx, _ = deploy_with_ctx(home, name="a", wiring=wiring)
        assert ctx.next_modules == ["b"]


class TestSignalsAndLogs:
    def test_signal_source_without_source_is_none(self, home):
        ctx, _ = deploy_with_ctx(home)
        assert ctx.signal_source() is None

    def test_log_records_time_and_module(self, home):
        ctx, wiring = deploy_with_ctx(home)
        ctx.log("hello")
        assert wiring.logs == [(0.0, "m", "hello")]

    def test_record_stage(self, home):
        ctx, wiring = deploy_with_ctx(home)
        ctx.record_stage("pose", 0.05)
        assert wiring.metrics.stage_samples("pose") == [0.05]
