"""Unit tests for pipeline wiring and module events."""

import pytest

from repro.errors import DeploymentError
from repro.metrics import MetricsCollector
from repro.net import Address
from repro.runtime import DATA, READY_SIGNAL, ModuleEvent, PipelineWiring


class TestPipelineWiring:
    def make(self):
        wiring = PipelineWiring("p", metrics=MetricsCollector("p"))
        wiring.addresses = {
            "a": Address("phone", 5000),
            "b": Address("desktop", 5001),
        }
        wiring.next_modules = {"a": ["b"], "b": []}
        wiring.source_module = "a"
        return wiring

    def test_address_lookup(self):
        wiring = self.make()
        assert wiring.address_of("a") == Address("phone", 5000)
        assert wiring.device_of("b") == "desktop"

    def test_unknown_module_raises_with_candidates(self):
        wiring = self.make()
        with pytest.raises(DeploymentError, match="known: \\['a', 'b'\\]"):
            wiring.address_of("ghost")

    def test_downstream_is_a_copy(self):
        wiring = self.make()
        downstream = wiring.downstream_of("a")
        downstream.append("evil")
        assert wiring.downstream_of("a") == ["b"]

    def test_downstream_of_unknown_is_empty(self):
        assert self.make().downstream_of("ghost") == []

    def test_describe(self):
        info = self.make().describe()
        assert info["pipeline"] == "p"
        assert info["modules"]["a"] == "phone:5000"
        assert info["edges"] == {"a": ["b"], "b": []}
        assert info["source"] == "a"


class TestModuleEvent:
    def test_queueing_delay(self):
        event = ModuleEvent(kind=DATA, enqueued_at=1.0)
        event.dequeued_at = 1.25
        assert event.queueing_delay == pytest.approx(0.25)

    def test_kinds(self):
        assert DATA == "data"
        assert READY_SIGNAL == "ready"

    def test_default_fields(self):
        event = ModuleEvent(kind=DATA)
        assert event.payload is None
        assert event.headers == {}
        assert event.source_module is None
