"""Unit tests for the per-device module runtime."""

import pytest

from repro.errors import DeploymentError
from repro.frames import SyntheticCamera
from repro.motion import Squat
from repro.runtime import DATA, READY_SIGNAL, FunctionModule, Module


def frame():
    return SyntheticCamera("phone", Squat()).capture(1, 0.0)


class TestDeployment:
    def test_deploy_calls_init(self, home):
        initialized = []
        module = FunctionModule(lambda ctx, e: None,
                                init_fn=lambda ctx: initialized.append(ctx.module_name))
        wiring = home.wiring({"m": ("phone", 5000)})
        home.runtimes["phone"].deploy("m", module, wiring.address_of("m"), wiring)
        assert initialized == ["m"]

    def test_deploy_wrong_device_rejected(self, home):
        wiring = home.wiring({"m": ("desktop", 5000)})
        with pytest.raises(DeploymentError):
            home.runtimes["phone"].deploy(
                "m", FunctionModule(lambda c, e: None), wiring.address_of("m"), wiring
            )

    def test_duplicate_name_rejected(self, home):
        wiring = home.wiring({"m": ("phone", 5000)})
        runtime = home.runtimes["phone"]
        runtime.deploy("m", FunctionModule(lambda c, e: None),
                       wiring.address_of("m"), wiring)
        with pytest.raises(DeploymentError):
            runtime.deploy("m", FunctionModule(lambda c, e: None),
                           wiring.address_of("m"), wiring)

    def test_undeploy_frees_address(self, home):
        wiring = home.wiring({"m": ("phone", 5000)})
        runtime = home.runtimes["phone"]
        runtime.deploy("m", FunctionModule(lambda c, e: None),
                       wiring.address_of("m"), wiring)
        runtime.undeploy("m")
        assert runtime.deployed_names() == []
        runtime.deploy("m", FunctionModule(lambda c, e: None),
                       wiring.address_of("m"), wiring)  # rebind works

    def test_deployed_lookup(self, home):
        wiring = home.wiring({"m": ("phone", 5000)})
        runtime = home.runtimes["phone"]
        deployed = runtime.deploy("m", FunctionModule(lambda c, e: None),
                                  wiring.address_of("m"), wiring)
        assert runtime.deployed("m") is deployed
        with pytest.raises(DeploymentError):
            runtime.deployed("ghost")


class TestEventDelivery:
    def deploy_pair(self, home, receiver_fn, src_dev="phone", dst_dev="desktop"):
        wiring = home.wiring(
            {"a": (src_dev, 5000), "b": (dst_dev, 5001)},
            next_modules={"a": ["b"], "b": []},
        )
        sender_ctx = {}

        def sender(ctx, event):
            sender_ctx["ctx"] = ctx

        runtime_a = home.runtimes[src_dev]
        runtime_b = home.runtimes[dst_dev]
        a = runtime_a.deploy("a", FunctionModule(sender, init_fn=lambda c: sender_ctx.setdefault("ctx", c)),
                             wiring.address_of("a"), wiring)
        b = runtime_b.deploy("b", FunctionModule(receiver_fn),
                             wiring.address_of("b"), wiring)
        return sender_ctx, a, b

    def test_same_device_payload_passes_by_reference(self, home):
        got = []
        sender_ctx, a, b = self.deploy_pair(home, lambda ctx, e: got.append(e),
                                            dst_dev="phone")
        ctx = sender_ctx["ctx"]
        ref = ctx.store_frame(frame())
        ctx.call_module("b", {"frame": ref})
        home.kernel.run()
        assert got[0].payload["frame"] == ref  # still a ref, same store
        assert home.devices["phone"].frame_store.contains(ref)

    def test_cross_device_frame_rematerialized(self, home):
        got = []
        sender_ctx, a, b = self.deploy_pair(home, lambda ctx, e: got.append(e))
        ctx = sender_ctx["ctx"]
        ref = ctx.store_frame(frame())
        ctx.call_module("b", {"frame": ref})
        home.kernel.run()
        landed = got[0].payload["frame"]
        assert landed.device == "desktop"  # new local ref on arrival
        assert home.devices["desktop"].frame_store.contains(landed)
        # ownership moved: the phone-side hold was released
        assert not home.devices["phone"].frame_store.contains(ref)

    def test_cross_device_transfer_takes_network_time(self, home):
        got = []
        sender_ctx, a, b = self.deploy_pair(home, lambda ctx, e: got.append(ctx.now))
        ctx = sender_ctx["ctx"]
        ref = ctx.store_frame(frame())
        ctx.call_module("b", {"frame": ref})
        home.kernel.run()
        assert got[0] > 0.005  # encode + 2 wifi hops + decode

    def test_generator_handlers_serialize_per_module(self, home):
        """A module is a single-threaded context: event N+1 waits for the
        generator of event N to finish."""
        order = []

        def slow_handler(ctx, event):
            def flow():
                order.append(("start", event.payload))
                yield 0.050
                order.append(("end", event.payload))

            return flow()

        sender_ctx, a, b = self.deploy_pair(home, slow_handler)
        ctx = sender_ctx["ctx"]
        ctx.call_module("b", {"n": 1})
        ctx.call_module("b", {"n": 2})
        home.kernel.run()
        assert order == [
            ("start", {"n": 1}), ("end", {"n": 1}),
            ("start", {"n": 2}), ("end", {"n": 2}),
        ]

    def test_handler_crash_recorded_not_fatal(self, home):
        def bad(ctx, event):
            raise RuntimeError("module bug")

        sender_ctx, a, b = self.deploy_pair(home, bad)
        ctx = sender_ctx["ctx"]
        ctx.call_module("b", {"n": 1})
        ctx.call_module("b", {"n": 2})
        home.kernel.run()
        assert len(b.errors) == 2
        assert b.events_processed == 2  # runtime kept going
        assert b.ctx.metrics.counter("module_errors") == 2

    def test_ready_signal_routes_to_hook(self, home):
        signals = []

        class Source(Module):
            def event_received(self, ctx, event):
                pass

            def on_ready_signal(self, ctx, event):
                signals.append(ctx.now)

        wiring = home.wiring(
            {"src": ("phone", 5000), "sink": ("desktop", 5001)},
            next_modules={"src": ["sink"]},
            source="src",
        )
        home.runtimes["phone"].deploy("src", Source(), wiring.address_of("src"), wiring)
        sink_ctx = {}
        home.runtimes["desktop"].deploy(
            "sink",
            FunctionModule(lambda c, e: None, init_fn=lambda c: sink_ctx.update(ctx=c)),
            wiring.address_of("sink"),
            wiring,
        )
        sink_ctx["ctx"].signal_source()
        home.kernel.run()
        assert len(signals) == 1
        assert wiring.metrics.counter("ready_signals") == 1

    def test_event_kind_survives_transport(self, home):
        kinds = []
        sender_ctx, a, b = self.deploy_pair(home, lambda ctx, e: kinds.append(e.kind))
        sender_ctx["ctx"].call_module("b", {"x": 1})
        home.kernel.run()
        assert kinds == [DATA]

    def test_send_to_unknown_module_raises(self, home):
        sender_ctx, a, b = self.deploy_pair(home, lambda ctx, e: None)
        with pytest.raises(Exception):
            sender_ctx["ctx"].call_module("ghost", {})

    def test_mailbox_depth_tracked(self, home):
        def slow_handler(ctx, event):
            def flow():
                yield 1.0

            return flow()

        sender_ctx, a, b = self.deploy_pair(home, slow_handler, dst_dev="phone")
        ctx = sender_ctx["ctx"]
        for i in range(5):
            ctx.call_module("b", {"n": i})
        home.kernel.run()
        assert b.max_mailbox_depth >= 3
