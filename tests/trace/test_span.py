"""Unit tests for the span model and context propagation encoding."""

import pytest

from repro.trace import (
    CAT_COMPUTE,
    CAT_FRAME,
    Span,
    SpanContext,
    trace_id_for,
)


class TestTraceId:
    def test_combines_pipeline_and_frame(self):
        assert trace_id_for("fitness", 7) == "fitness/7"

    def test_distinct_pipelines_never_collide(self):
        assert trace_id_for("fitness", 1) != trace_id_for("scene", 1)


class TestSpanContext:
    def test_header_round_trip(self):
        ctx = SpanContext("fitness/3", 42, parent_id=17)
        restored = SpanContext.from_header(ctx.header())
        assert restored is not None
        assert restored.trace_id == "fitness/3"
        assert restored.span_id == 42
        # parent_id is link-local; it does not cross the wire
        assert restored.parent_id is None

    def test_header_is_wire_friendly(self):
        header = SpanContext("fitness/3", 42).header()
        assert header == ["fitness/3", 42]

    @pytest.mark.parametrize("bad", [
        None,
        "fitness/3",
        42,
        [],
        ["fitness/3"],
        ["fitness/3", 1, 2],
        ["fitness/3", "not-an-int"],
        {"trace_id": "fitness/3", "span_id": 1},
    ])
    def test_malformed_header_returns_none(self, bad):
        assert SpanContext.from_header(bad) is None

    def test_frozen(self):
        ctx = SpanContext("t", 1)
        with pytest.raises(AttributeError):
            ctx.span_id = 2


class TestSpan:
    def test_duration(self):
        span = Span("t", 1, None, "frame", CAT_FRAME, start=1.0, end=3.5)
        assert span.duration == pytest.approx(2.5)

    def test_context_mirrors_identity(self):
        span = Span("t", 9, 4, "module.x", CAT_COMPUTE, start=0.0, end=1.0)
        ctx = span.context
        assert ctx == SpanContext("t", 9, 4)

    def test_attrs_default_to_empty_and_independent(self):
        a = Span("t", 1, None, "a", CAT_COMPUTE, 0.0, 1.0)
        b = Span("t", 2, None, "b", CAT_COMPUTE, 0.0, 1.0)
        a.attrs["k"] = "v"
        assert b.attrs == {}
