"""Unit tests for the Chrome trace-event exporter."""

import json

import pytest

from repro.trace import (
    CAT_COMPUTE,
    CAT_FRAME,
    CAT_MARK,
    Span,
    chrome_trace_events,
    to_chrome_trace,
    write_chrome_trace,
)


def make_spans():
    return [
        Span("p/1", 1, None, "frame", CAT_FRAME, 0.0, 0.010,
             device="camera", actor="module:source",
             attrs={"outcome": "completed"}),
        Span("p/1", 2, 1, "module.pose", CAT_COMPUTE, 0.001, 0.004,
             device="desktop", actor="module:pose"),
        Span("p/1", 3, 1, "cache.hit", CAT_MARK, 0.004, 0.004,
             device="desktop", actor="service:pose_detector"),
    ]


class TestEvents:
    def test_metadata_names_processes_and_threads(self):
        events = chrome_trace_events(make_spans())
        meta = [e for e in events if e["ph"] == "M"]
        process_names = {e["args"]["name"] for e in meta
                         if e["name"] == "process_name"}
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert process_names == {"camera", "desktop"}
        assert thread_names == {"module:source", "module:pose",
                                "service:pose_detector"}

    def test_timed_spans_become_complete_events_in_microseconds(self):
        events = chrome_trace_events(make_spans())
        (pose,) = [e for e in events if e["name"] == "module.pose"]
        assert pose["ph"] == "X"
        assert pose["cat"] == CAT_COMPUTE
        assert pose["ts"] == pytest.approx(1000.0)
        assert pose["dur"] == pytest.approx(3000.0)

    def test_zero_duration_spans_become_thread_instants(self):
        events = chrome_trace_events(make_spans())
        (hit,) = [e for e in events if e["name"] == "cache.hit"]
        assert hit["ph"] == "i"
        assert hit["s"] == "t"
        assert "dur" not in hit

    def test_args_carry_span_identity_and_attrs(self):
        events = chrome_trace_events(make_spans())
        (frame,) = [e for e in events if e["name"] == "frame"]
        assert frame["args"]["trace_id"] == "p/1"
        assert frame["args"]["span_id"] == 1
        assert frame["args"]["parent_id"] is None
        assert frame["args"]["outcome"] == "completed"

    def test_lane_assignment_is_stable(self):
        spans = make_spans()
        first = chrome_trace_events(spans)
        second = chrome_trace_events(list(reversed(spans)))
        lanes = lambda events: {  # noqa: E731
            e["name"]: (e["pid"], e["tid"])
            for e in events if e["ph"] != "M"
        }
        assert lanes(first) == lanes(second)

    def test_spans_sharing_a_device_share_a_pid(self):
        events = chrome_trace_events(make_spans())
        by_name = {e["name"]: e for e in events if e["ph"] != "M"}
        assert by_name["module.pose"]["pid"] == by_name["cache.hit"]["pid"]
        assert by_name["module.pose"]["tid"] != by_name["cache.hit"]["tid"]

    def test_missing_device_and_actor_get_placeholders(self):
        events = chrome_trace_events([
            Span("p/1", 1, None, "frame", CAT_FRAME, 0.0, 1.0),
        ])
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {"home", "-"}


class TestDocument:
    def test_to_chrome_trace_shape(self):
        doc = to_chrome_trace(make_spans())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["exporter"] == "repro.trace"
        # metadata (3 lanes + 2 processes) + 3 span events
        assert len(doc["traceEvents"]) == 8

    def test_write_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        returned = write_chrome_trace(make_spans(), str(path))
        assert returned == str(path)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 8
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X", "i"}

    def test_write_accepts_a_recorder_like_source(self, tmp_path):
        class FakeRecorder:
            spans = make_spans()

        path = tmp_path / "trace.json"
        write_chrome_trace(FakeRecorder(), str(path))
        doc = json.loads(path.read_text())
        assert any(e["name"] == "frame" for e in doc["traceEvents"])
