"""Unit tests for the TraceRecorder frame lifecycle and span bookkeeping."""

import pytest

from repro.trace import (
    CAT_COMPUTE,
    CAT_FRAME,
    CAT_MARK,
    CAT_QUEUE,
    SpanContext,
    TraceRecorder,
)


class FakeKernel:
    """The recorder only reads the clock; a settable `now` is enough."""

    def __init__(self):
        self.now = 0.0


@pytest.fixture
def kernel():
    return FakeKernel()


@pytest.fixture
def recorder(kernel):
    return TraceRecorder(kernel)


def root_spans(recorder):
    return [s for s in recorder.spans if s.category == CAT_FRAME]


class TestFrameLifecycle:
    def test_started_opens_root_and_annotates_admission(self, kernel, recorder):
        kernel.now = 1.5
        ctx = recorder.frame_started("fitness", 3, device="camera",
                                     actor="module:source")
        assert ctx.trace_id == "fitness/3"
        assert ctx.parent_id is None
        assert recorder.open_frame_count == 1
        assert recorder.frames_started == 1
        # the admission marker is recorded immediately, under the root
        (admit,) = recorder.spans
        assert admit.name == "source.admit"
        assert admit.category == CAT_MARK
        assert admit.parent_id == ctx.span_id
        assert admit.start == admit.end == 1.5

    def test_finished_closes_root_with_completion_outcome(self, kernel, recorder):
        kernel.now = 1.0
        ctx = recorder.frame_started("fitness", 3)
        kernel.now = 2.25
        recorder.frame_finished(ctx.trace_id, latency_s=1.25)
        assert recorder.open_frame_count == 0
        assert recorder.frames_finished == 1
        (root,) = root_spans(recorder)
        assert root.span_id == ctx.span_id
        assert (root.start, root.end) == (1.0, 2.25)
        assert root.attrs["outcome"] == "completed"
        assert root.attrs["latency_s"] == 1.25

    def test_dropped_closes_root_with_dropped_outcome(self, kernel, recorder):
        ctx = recorder.frame_started("fitness", 3)
        kernel.now = 0.5
        recorder.frame_dropped(ctx.trace_id, reason="chaos")
        assert recorder.frames_dropped == 1
        (root,) = root_spans(recorder)
        assert root.attrs == {"outcome": "dropped", "reason": "chaos"}

    def test_finish_of_untraced_frame_is_a_noop(self, recorder):
        # tracing enabled mid-run: completions of pre-tracing frames arrive
        recorder.frame_finished("fitness/99")
        recorder.frame_dropped("fitness/98")
        assert recorder.spans == []
        assert recorder.frames_finished == 0
        assert recorder.frames_dropped == 0

    def test_duplicate_admission_supersedes_stale_root(self, kernel, recorder):
        first = recorder.frame_started("fitness", 3)
        kernel.now = 1.0
        second = recorder.frame_started("fitness", 3)
        assert second.span_id != first.span_id
        assert recorder.open_frame_count == 1
        (stale,) = root_spans(recorder)
        assert stale.span_id == first.span_id
        assert stale.attrs["outcome"] == "superseded"
        kernel.now = 2.0
        recorder.frame_finished("fitness/3")
        completed = [s for s in root_spans(recorder)
                     if s.attrs["outcome"] == "completed"]
        assert [s.span_id for s in completed] == [second.span_id]


class TestRecording:
    def test_record_parents_to_given_context(self, recorder):
        root = recorder.frame_started("fitness", 1)
        child = recorder.record("module.sink", CAT_COMPUTE, parent=root,
                                start=0.1, end=0.4, device="phone",
                                actor="module:sink", ok=True)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        span = recorder.spans[-1]
        assert span.name == "module.sink"
        assert span.device == "phone"
        assert span.attrs == {"ok": True}

    def test_record_span_uses_preminted_identity(self, recorder):
        root = recorder.frame_started("fitness", 1)
        ctx = recorder.child_context(root)
        # a grandchild can parent to ctx before ctx itself is recorded
        recorder.record("service.queue", CAT_QUEUE, parent=ctx,
                        start=0.2, end=0.3)
        recorder.record_span(ctx, "service.call:pose", CAT_COMPUTE,
                             start=0.1, end=0.5)
        by_name = {s.name: s for s in recorder.spans}
        assert by_name["service.queue"].parent_id == ctx.span_id
        assert by_name["service.call:pose"].span_id == ctx.span_id
        assert by_name["service.call:pose"].parent_id == root.span_id

    def test_child_context_ids_are_unique(self, recorder):
        root = recorder.frame_started("fitness", 1)
        ids = {recorder.child_context(root).span_id for _ in range(100)}
        assert len(ids) == 100

    def test_annotate_is_zero_duration_at_now(self, kernel, recorder):
        root = recorder.frame_started("fitness", 1)
        kernel.now = 3.25
        recorder.annotate("cache.hit", parent=root, key="pose:abc")
        mark = recorder.spans[-1]
        assert mark.category == CAT_MARK
        assert mark.start == mark.end == 3.25
        assert mark.duration == 0.0
        assert mark.attrs["key"] == "pose:abc"


class TestCapacity:
    def test_spans_past_the_cap_are_dropped_and_counted(self, kernel):
        recorder = TraceRecorder(kernel, max_spans=3)
        root = recorder.frame_started("fitness", 1)  # admission mark = span 1
        recorder.record("a", CAT_COMPUTE, parent=root, start=0, end=1)
        recorder.record("b", CAT_COMPUTE, parent=root, start=0, end=1)
        recorder.record("c", CAT_COMPUTE, parent=root, start=0, end=1)
        assert recorder.span_count == 3
        assert recorder.dropped_spans == 1
        # the open frame still closes correctly (counted, not stored)
        recorder.frame_finished("fitness/1")
        assert recorder.open_frame_count == 0
        assert recorder.frames_finished == 1
        assert recorder.dropped_spans == 2

    def test_config_rejects_nonpositive_cap(self):
        from repro.errors import ConfigError
        from repro.pipeline.config import TraceConfig
        assert TraceConfig().max_spans == 1_000_000
        with pytest.raises(ConfigError):
            TraceConfig(max_spans=0)


class TestIntrospection:
    def test_traces_groups_by_trace_id(self, recorder):
        a = recorder.frame_started("fitness", 1)
        b = recorder.frame_started("fitness", 2)
        recorder.record("x", CAT_COMPUTE, parent=a, start=0, end=1)
        recorder.record("y", CAT_COMPUTE, parent=b, start=0, end=1)
        recorder.frame_finished(a.trace_id)
        recorder.frame_finished(b.trace_id)
        grouped = recorder.traces()
        assert set(grouped) == {"fitness/1", "fitness/2"}
        assert [s.name for s in grouped["fitness/1"]] == \
            ["source.admit", "x", "frame"]

    def test_stats_roll_up(self, recorder):
        for frame_id in range(3):
            recorder.frame_started("fitness", frame_id)
        recorder.frame_finished("fitness/0")
        recorder.frame_dropped("fitness/1")
        assert recorder.frames_started == 3
        assert recorder.frames_finished == 1
        assert recorder.frames_dropped == 1
        assert recorder.open_frame_count == 1
