"""Unit tests for the critical-path walk, on hand-built span trees."""

import pytest

from repro.trace import (
    CAT_COMPUTE,
    CAT_FRAME,
    CAT_MARK,
    CAT_QUEUE,
    CAT_SERVICE,
    CAT_STAGE,
    CAT_WIRE,
    Span,
    critical_path,
)


def span(span_id, parent_id, name, category, start, end,
         trace_id="p/1", **attrs):
    return Span(trace_id, span_id, parent_id, name, category,
                start, end, attrs=attrs)


def root(start, end, trace_id="p/1", outcome="completed"):
    return Span(trace_id, 1, None, "frame", CAT_FRAME, start, end,
                attrs={"outcome": outcome})


class TestDecomposition:
    def test_partition_sums_to_root_duration(self):
        # root [0, 10]: queue [0,2] -> compute [2,7] -> wire [7,9], gap [9,10]
        spans = [
            root(0.0, 10.0),
            span(2, 1, "mailbox.wait", CAT_QUEUE, 0.0, 2.0),
            span(3, 1, "module.x", CAT_COMPUTE, 2.0, 7.0),
            span(4, 1, "wire.transfer", CAT_WIRE, 7.0, 9.0),
        ]
        report = critical_path(spans)
        (frame,) = report.frames
        assert frame.total_s == pytest.approx(10.0)
        assert frame.by_category[CAT_QUEUE] == pytest.approx(2.0)
        assert frame.by_category[CAT_COMPUTE] == pytest.approx(5.0)
        assert frame.by_category[CAT_WIRE] == pytest.approx(2.0)
        # the uncovered [9, 10] tail is charged to the root's own category
        assert frame.by_category[CAT_FRAME] == pytest.approx(1.0)
        assert sum(frame.by_category.values()) == pytest.approx(10.0)

    def test_nested_children_attribute_to_leaf_categories(self):
        # handler [1, 9] under root [0, 10]; inside it a service call
        # envelope [2, 8] that is mostly queue [3, 7].
        spans = [
            root(0.0, 10.0),
            span(2, 1, "module.x", CAT_COMPUTE, 1.0, 9.0),
            span(3, 2, "service.call:pose", CAT_SERVICE, 2.0, 8.0),
            span(4, 3, "service.queue", CAT_QUEUE, 3.0, 7.0),
        ]
        (frame,) = critical_path(spans).frames
        assert frame.by_category[CAT_FRAME] == pytest.approx(2.0)  # [0,1]+[9,10]
        assert frame.by_category[CAT_COMPUTE] == pytest.approx(2.0)  # [1,2]+[8,9]
        assert frame.by_category[CAT_SERVICE] == pytest.approx(2.0)  # [2,3]+[7,8]
        assert frame.by_category[CAT_QUEUE] == pytest.approx(4.0)  # [3,7]
        assert sum(frame.by_category.values()) == pytest.approx(10.0)

    def test_gap_between_children_charged_to_parent(self):
        spans = [
            root(0.0, 6.0),
            span(2, 1, "module.a", CAT_COMPUTE, 0.0, 2.0),
            span(3, 1, "module.b", CAT_COMPUTE, 4.0, 6.0),
        ]
        (frame,) = critical_path(spans).frames
        assert frame.by_category[CAT_COMPUTE] == pytest.approx(4.0)
        assert frame.by_category[CAT_FRAME] == pytest.approx(2.0)  # [2,4]

    def test_child_outliving_root_is_clipped(self):
        # the sink handler keeps running after it marked the frame complete
        spans = [
            root(0.0, 5.0),
            span(2, 1, "module.sink", CAT_COMPUTE, 3.0, 8.0),
        ]
        (frame,) = critical_path(spans).frames
        assert frame.total_s == pytest.approx(5.0)
        assert frame.by_category[CAT_COMPUTE] == pytest.approx(2.0)  # [3,5]
        assert sum(frame.by_category.values()) == pytest.approx(5.0)

    def test_faster_parallel_branch_is_skipped(self):
        # two children overlap; the one ending later owns the window and
        # the faster sibling contributes nothing.
        spans = [
            root(0.0, 10.0),
            span(2, 1, "module.slow", CAT_COMPUTE, 0.0, 10.0),
            span(3, 1, "module.fast", CAT_WIRE, 0.0, 4.0),
        ]
        (frame,) = critical_path(spans).frames
        assert frame.by_category == {CAT_COMPUTE: pytest.approx(10.0)}

    def test_marks_are_ignored_by_the_walk(self):
        spans = [
            root(0.0, 4.0),
            span(2, 1, "cache.hit", CAT_MARK, 2.0, 2.0),
        ]
        (frame,) = critical_path(spans).frames
        assert frame.by_category == {CAT_FRAME: pytest.approx(4.0)}


class TestStageSamples:
    def test_stage_spans_aggregate_separately(self):
        spans = [
            root(0.0, 4.0),
            span(2, 1, "stage.pose_detection", CAT_STAGE, 1.0, 2.0),
            span(3, 1, "stage.pose_detection", CAT_STAGE, 2.0, 4.0),
            span(4, 1, "stage.total_duration", CAT_STAGE, 0.0, 4.0),
        ]
        report = critical_path(spans)
        assert report.stage_samples["pose_detection"] == \
            pytest.approx([1.0, 2.0])
        assert report.stage_means_ms() == {
            "pose_detection": pytest.approx(1500.0),
            "total_duration": pytest.approx(4000.0),
        }
        # stage spans do not perturb the walk
        (frame,) = report.frames
        assert frame.by_category == {CAT_FRAME: pytest.approx(4.0)}


class TestRootSelection:
    def test_dropped_and_open_roots_count_as_unfinished(self):
        spans = [
            root(0.0, 4.0, trace_id="p/1"),
            root(0.0, 2.0, trace_id="p/2", outcome="dropped"),
            # p/3 has activity but no root span at all (still in flight)
            span(9, 1, "module.x", CAT_COMPUTE, 0.0, 1.0, trace_id="p/3"),
        ]
        report = critical_path(spans)
        assert report.frame_count == 1
        assert report.unfinished == 2

    def test_pipeline_filter_selects_by_prefix(self):
        spans = [
            root(0.0, 4.0, trace_id="fitness/1"),
            root(0.0, 2.0, trace_id="scene/1"),
        ]
        report = critical_path(spans, pipeline="fitness")
        assert [f.trace_id for f in report.frames] == ["fitness/1"]
        # exact prefix: "fit" is not the pipeline "fitness"
        assert critical_path(spans, pipeline="fit").frame_count == 0

    def test_accepts_a_recorder_like_source(self):
        class FakeRecorder:
            spans = [root(0.0, 1.0)]

        assert critical_path(FakeRecorder()).frame_count == 1


class TestReportAggregates:
    def test_category_means_average_over_frames(self):
        spans = [
            root(0.0, 2.0, trace_id="p/1"),
            Span("p/1", 2, 1, "module.x", CAT_COMPUTE, 0.0, 2.0),
            root(0.0, 4.0, trace_id="p/2"),
            Span("p/2", 3, 1, "module.x", CAT_COMPUTE, 0.0, 4.0),
        ]
        report = critical_path(spans)
        assert report.mean_total_ms() == pytest.approx(3000.0)
        assert report.category_means_ms() == {
            CAT_COMPUTE: pytest.approx(3000.0),
        }
        assert report.category_totals_s() == {CAT_COMPUTE: pytest.approx(6.0)}

    def test_empty_report(self):
        report = critical_path([])
        assert report.frame_count == 0
        assert report.mean_total_ms() == 0.0
        assert report.category_means_ms() == {}
        assert report.stage_means_ms() == {}

    def test_share(self):
        (frame,) = critical_path([
            root(0.0, 4.0),
            span(2, 1, "module.x", CAT_COMPUTE, 0.0, 3.0),
        ]).frames
        assert frame.share(CAT_COMPUTE) == pytest.approx(0.75)
        assert frame.share(CAT_WIRE) == 0.0
