"""Arena handle conservation: the auditor's mirror of the frame plane.

Every auditor here is explicitly constructed, so the ``REPRO_AUDIT``
pytest gate ignores the intentional violations these tests provoke.
"""

import numpy as np
import pytest

from repro.audit import InvariantAuditor
from repro.errors import StaleHandleError
from repro.frames import EVICTED, FrameArena, FrameStore, VideoFrame
from repro.sim.kernel import Kernel


def make_frame(frame_id=1, fill=7):
    pixels = np.full((24, 32, 3), fill, dtype=np.uint8)
    return VideoFrame(frame_id=frame_id, source="cam", capture_time=0.0,
                      width=32, height=24, pixels=pixels)


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def auditor(kernel):
    return InvariantAuditor(kernel)


class TestArenaConservation:
    def test_clean_lifecycle_stays_clean(self, auditor):
        arena = FrameArena("phone")
        auditor.watch_arena(arena)
        handle = arena.alloc(1024)
        arena.free(handle)
        assert auditor.check_now() == []
        assert auditor.check_quiesce() == []

    def test_stale_access_trips_the_auditor(self, auditor):
        arena = FrameArena("phone")
        auditor.watch_arena(arena)
        handle = arena.alloc(64)
        arena.free(handle, reason=EVICTED)
        with pytest.raises(StaleHandleError):
            arena.check(handle)
        assert auditor.violation_count == 1
        violation = auditor.violations[0]
        assert violation.invariant == "arena-stale-access"
        assert violation.subject == "arena/phone"
        assert "evicted" in violation.detail

    def test_skipped_alloc_notification_flags_mirror_divergence(self, auditor):
        arena = FrameArena("phone")
        auditor.watch_arena(arena)
        arena.auditor = None  # a buggy alloc path that skips its report
        arena.alloc(64)
        arena.auditor = auditor
        violations = auditor.check_now()
        assert any(v.invariant == "arena-conservation" for v in violations)

    def test_use_after_evict_through_the_store_is_attributed(self, auditor):
        store = FrameStore("phone", dedup=True, retain_limit=1)
        arena = FrameArena("phone")
        store.attach_arena(arena)
        auditor.watch_store(store)
        auditor.watch_arena(arena)
        first = store.put(make_frame(fill=1))
        first_handle = store.handle_of(first)
        store.release(first)
        second = store.put(make_frame(fill=2))
        store.release(second)  # retention overflow evicts the first frame
        with pytest.raises(StaleHandleError) as exc:
            store.frame_by_handle(first_handle)
        assert exc.value.reason == EVICTED
        assert any(
            v.invariant == "arena-stale-access" for v in auditor.violations
        )

    def test_mid_run_watch_mirrors_existing_slots(self, auditor):
        arena = FrameArena("phone")
        keep = arena.alloc(64)
        auditor.watch_arena(arena)
        assert auditor.check_now() == []
        arena.free(keep)
        assert auditor.check_quiesce() == []

    def test_quiesce_flags_orphaned_slots(self, auditor):
        store = FrameStore("phone")
        arena = FrameArena("phone")
        store.attach_arena(arena)
        auditor.watch_store(store)
        auditor.watch_arena(arena)
        ref = store.put(make_frame())
        # simulate a buggy delete that forgets the arena: the store entry
        # dies but the slot stays live
        handle = store._handles.pop(ref.ref_id)
        store._by_handle.pop(handle)
        store.release(ref)
        violations = auditor.check_quiesce()
        assert any(
            v.invariant == "arena-conservation" and "orphan" in v.detail
            for v in violations
        )

    def test_quiesce_allows_retained_dedup_targets(self, auditor):
        store = FrameStore("phone", dedup=True, retain_limit=4)
        arena = FrameArena("phone")
        store.attach_arena(arena)
        auditor.watch_store(store)
        auditor.watch_arena(arena)
        ref = store.put(make_frame())
        store.release(ref)  # zero refcount, retained as a dedup target
        assert arena.live_count == 1  # the slot legitimately stays
        assert auditor.check_quiesce() == []
