"""Unit tests for the invariant auditor: config, recording, and each
invariant family against small hand-built components."""

import pytest

from repro.audit import InvariantAuditor, live_auditors
from repro.errors import AuditError, ConfigError
from repro.frames.framestore import FrameStore
from repro.metrics.collector import MetricsCollector
from repro.pipeline.config import AuditConfig
from repro.sim.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def auditor(kernel):
    return InvariantAuditor(kernel)


class TestConfig:
    def test_defaults(self):
        config = AuditConfig()
        assert config.max_violations == 1000
        assert config.strict is False

    def test_max_violations_must_be_positive(self):
        with pytest.raises(ConfigError):
            AuditConfig(max_violations=0)

    def test_registry_tracks_live_auditors(self, kernel):
        auditor = InvariantAuditor(kernel)
        assert auditor in live_auditors()
        assert auditor.source == "explicit"


class TestRecording:
    def test_record_appends_violation_with_kernel_time(self, auditor):
        auditor.record("kernel-hygiene", "kernel", "something broke")
        assert auditor.violation_count == 1
        violation = auditor.violations[0]
        assert violation.at == 0.0
        assert "kernel-hygiene" in violation.describe()
        assert "something broke" in violation.describe()

    def test_cap_counts_dropped_violations(self, kernel):
        auditor = InvariantAuditor(kernel, AuditConfig(max_violations=2))
        for n in range(5):
            auditor.record("kernel-hygiene", "kernel", f"v{n}")
        assert len(auditor.violations) == 2
        assert auditor.dropped_violations == 3
        assert auditor.violation_count == 5
        assert "past the cap" in auditor.report()

    def test_strict_mode_raises(self, kernel):
        auditor = InvariantAuditor(kernel, AuditConfig(strict=True))
        with pytest.raises(AuditError, match="kernel-hygiene"):
            auditor.record("kernel-hygiene", "kernel", "boom")

    def test_clean_report(self, auditor):
        assert "clean" in auditor.report()


class TestKernelHygiene:
    def test_clean_run_records_nothing(self, kernel, auditor):
        auditor.attach_kernel(kernel)
        order = []
        kernel.schedule(0.2, order.append, "b")
        kernel.schedule(0.1, order.append, "a")
        kernel.run()
        assert order == ["a", "b"]
        assert auditor.violations == []

    def test_observation_does_not_perturb_sequencing(self, kernel, auditor):
        plain = Kernel()
        auditor.attach_kernel(kernel)
        for k in (kernel, plain):
            k.schedule(0.1, lambda: None)
            k.schedule(0.2, lambda: None)
        e1 = kernel.schedule(0.3, lambda: None)
        e2 = plain.schedule(0.3, lambda: None)
        assert e1.seq == e2.seq

    def test_event_scheduled_in_the_past_is_flagged(self, kernel, auditor):
        auditor.attach_kernel(kernel)

        class Stuck:
            time = -1.0
            priority = 1
            seq = 99

        auditor.on_schedule(5.0, Stuck())
        assert auditor.violations
        assert auditor.violations[0].invariant == "kernel-hygiene"
        assert "scheduled in the past" in auditor.violations[0].detail

    def test_corrupted_queue_is_flagged_before_the_kernel_aborts(
            self, kernel, auditor):
        from repro.errors import SimulationError

        auditor.attach_kernel(kernel)
        kernel.schedule(1.0, lambda: None)
        event = kernel.schedule(2.0, lambda: None)
        kernel.step()  # now == 1.0
        event.time = 0.5  # corrupt the heap entry behind the kernel's back
        with pytest.raises(SimulationError):
            kernel.run()
        assert any("backwards" in v.detail or "non-monotonic" in v.detail
                   for v in auditor.violations)


class TestFrameRefConservation:
    def test_balanced_holds_leave_no_live_refs(self, auditor):
        store = FrameStore("phone", capacity=8)
        auditor.watch_store(store)
        ref = store.put(b"frame")
        ref2 = store.add_ref(ref)
        store.release(ref)
        store.release(ref2)
        assert auditor.check_quiesce() == []

    def test_leaked_ref_is_attributed_at_quiesce(self, auditor):
        store = FrameStore("phone", capacity=8)
        auditor.watch_store(store)
        store.put(b"leaked")
        violations = auditor.check_quiesce()
        assert len(violations) == 1
        v = violations[0]
        assert v.invariant == "frame-ref-conservation"
        assert v.subject == "framestore/phone"
        assert "held since" in v.detail
        assert "1 hold(s) / 0 release(s)" in v.detail

    def test_negative_refcount_is_flagged(self, auditor):
        store = FrameStore("phone", capacity=8)
        auditor.watch_store(store)
        # simulate a component double-releasing behind the store's back
        auditor.on_ref_release(store, 1, -1)
        assert auditor.violations
        assert "negative" in auditor.violations[0].detail

    def test_watch_is_idempotent_and_mirrors_existing_refs(self, auditor):
        store = FrameStore("phone", capacity=8)
        ref = store.put(b"pre-existing")
        auditor.watch_store(store)
        auditor.watch_store(store)
        assert len(auditor._stores) == 1
        store.release(ref)
        assert auditor.check_quiesce() == []


class TestMetricsConservation:
    def test_balanced_lifecycle_is_clean(self, auditor):
        collector = MetricsCollector("p")
        auditor.watch_metrics(collector)
        collector.frame_entered(1, 0.0)
        collector.frame_entered(2, 0.1)
        collector.frame_completed(1, 0.5)
        collector.frame_dropped(2, 0.6)
        collector.frame_dropped(3, 0.7)  # pre-admission drop: tolerated
        assert auditor.check_quiesce() == []

    def test_counter_moving_without_notification_is_flagged(self, auditor):
        collector = MetricsCollector("p")
        auditor.watch_metrics(collector)
        collector.increment("frames_entered", 3)
        violations = auditor.check_now()
        assert violations
        assert "notified 0 admissions" in violations[0].detail

    def test_unsettled_frame_is_flagged_at_quiesce(self, auditor):
        collector = MetricsCollector("p")
        auditor.watch_metrics(collector)
        collector.frame_entered(1, 0.0)
        violations = auditor.check_quiesce()
        assert any("still marked" in v.detail for v in violations)

    def test_check_now_returns_only_new_violations(self, auditor):
        collector = MetricsCollector("p")
        auditor.watch_metrics(collector)
        collector.increment("frames_entered")
        first = auditor.check_now()
        second = auditor.check_now()
        assert len(first) == 1
        assert len(second) == 1
        assert auditor.checks_run == 2
