"""Mutation tests: re-introduce each fixed bug and prove the auditor trips.

Every test seeds one of the failure classes this PR (or an earlier one)
fixed — a frame-ref leak, a silently lost message, the pre-fix
overlapping-window autoscaler, a collector that stops pruning its
in-flight table — and asserts the auditor reports it with an actionable
diagnostic. If a regression reopens one of these holes, the REPRO_AUDIT
sweep fails even where no functional assertion notices.
"""

import pytest

from repro.audit import InvariantAuditor
from repro.core import VideoPipe
from repro.devices import Device, desktop, flagship_phone_2018
from repro.metrics.collector import MetricsCollector
from repro.net import BrokerlessTransport, LinkSpec, Topology
from repro.net.address import Address
from repro.net.message import Message
from repro.services import FunctionService, ServiceHost
from repro.services.scaling import AutoScaler, ScalingPolicy
from repro.sim import Kernel, RngStreams


@pytest.fixture(autouse=True)
def _explicit_auditors_only(monkeypatch):
    """These tests *seed* violations; their auditors must be explicit so
    the REPRO_AUDIT sweep (which only asserts on env-enabled auditors)
    does not fail the test for finding exactly what it planted."""
    monkeypatch.delenv("REPRO_AUDIT", raising=False)


class MiniHome:
    """Two-device harness without the facade (mirrors tests/services)."""

    def __init__(self, seed=1):
        self.kernel = Kernel()
        self.rng = RngStreams(seed=seed)
        self.topology = Topology(self.kernel, self.rng)
        self.topology.add_wifi(
            "wifi",
            LinkSpec(latency_s=0.0012, jitter_cv=0.0, bandwidth_bps=120e6),
        )
        self.devices = {}
        for spec in (flagship_phone_2018(), desktop()):
            self.topology.attach(spec.name, "wifi")
            self.devices[spec.name] = Device(self.kernel, spec, self.rng)
        self.transport = BrokerlessTransport(self.kernel, self.topology)

    @property
    def desktop(self):
        return self.devices["desktop"]


class TestSeededRefcountLeak:
    def test_leak_is_caught_with_holder_attribution(self):
        home = VideoPipe(seed=3)
        home.enable_audit()
        home.add_device("phone")
        store = home.device("phone").frame_store
        store.put(b"the frame a buggy module never releases")
        home.run(until=1.0)
        violations = home.check_invariants()
        leaks = [v for v in violations
                 if v.invariant == "frame-ref-conservation"]
        assert len(leaks) == 1
        assert leaks[0].subject == "framestore/phone"
        # actionable: names the ref, its type, and how long it was held
        assert "#1 bytes x1" in leaks[0].detail
        assert "held since t=0.000s" in leaks[0].detail

    def test_clean_run_stays_clean(self):
        home = VideoPipe(seed=3)
        home.enable_audit()
        home.add_device("phone")
        store = home.device("phone").frame_store
        ref = store.put(b"balanced")
        store.release(ref)
        home.run(until=1.0)
        assert home.check_invariants() == []


class TestLostMessage:
    def _sender(self, home, count=5):
        received = []
        home.transport.bind(Address("desktop", 7000), received.append)

        def send_all():
            for n in range(count):
                home.transport.send(Message(
                    kind="data", dst=Address("desktop", 7000), payload=n,
                    src=Address("phone", 6000), size_bytes=1000,
                ))
                yield 0.05

        home.kernel.process(send_all())
        return received

    def test_silently_dropped_delivery_trips_conservation(self, monkeypatch):
        home = MiniHome()
        auditor = InvariantAuditor(home.kernel)
        auditor.watch_transport(home.transport)
        self._sender(home)

        original = BrokerlessTransport._deliver
        calls = {"n": 0}

        def lossy(self, message, done, exc):
            calls["n"] += 1
            if calls["n"] == 3:
                # the mutation: the arrival fires but delivery bookkeeping
                # vanishes — no handler call, no delivered/failed count
                self._pending_sends.pop(done, None)
                return
            original(self, message, done, exc)

        monkeypatch.setattr(BrokerlessTransport, "_deliver", lossy)
        home.kernel.run(until=2.0)

        violations = auditor.check_now()
        conservation = [v for v in violations
                        if v.invariant == "message-conservation"]
        assert conservation, auditor.report()
        # both sides of the cross-check fire: counters disagree, and the
        # auditor's mirror names the vanished message id
        details = " | ".join(v.detail for v in conservation)
        assert "vanished" in details
        assert "unsettled msg ids" in details

    def test_undropped_run_is_clean(self):
        home = MiniHome()
        auditor = InvariantAuditor(home.kernel)
        auditor.watch_transport(home.transport)
        received = self._sender(home)
        home.kernel.run(until=2.0)
        assert len(received) == 5
        assert auditor.check_quiesce() == []


class BuggyAutoScaler(AutoScaler):
    """The pre-fix sampler: a sliding window re-evaluated on every tick and
    no cooldown, so one sustained episode bursts replicas tick after tick."""

    def _sample(self, host):
        samples = self._samples[host]
        samples.append(host.queue_length)
        if len(samples) < self.policy.window:
            return
        del samples[:-self.policy.window]
        avg_queue = sum(samples) / len(samples)
        if (avg_queue >= self.policy.queue_threshold
                and host.replicas < self.policy.max_replicas):
            before = host.replicas
            host.add_replica(1)
            self._record(host, before, avg_queue, "scale_up")


class TestAutoscalerBurst:
    def _overload(self, home, host):
        def load():
            while home.kernel.now < 3.0:
                host.call_local({})
                yield 0.02

        home.kernel.process(load())

    def test_prefix_burst_trips_pacing(self):
        home = MiniHome()
        auditor = InvariantAuditor(home.kernel)
        service = FunctionService("busy", lambda p, c: p,
                                  reference_cost_s=0.100)
        host = ServiceHost(home.kernel, home.desktop, service, home.transport)
        policy = ScalingPolicy(check_interval_s=0.1, queue_threshold=1.0,
                               window=3, max_replicas=6, cooldown_s=1.0)
        scaler = BuggyAutoScaler(home.kernel, policy)
        auditor.watch_autoscaler(scaler)
        scaler.watch(host)
        scaler.start()
        self._overload(home, host)
        home.kernel.run(until=2.0)
        scaler.stop()

        pacing = [v for v in auditor.violations
                  if v.invariant == "autoscaler-pacing"]
        assert pacing, "the replica burst went unnoticed"
        assert "inside the 1.000s cooldown" in pacing[0].detail
        assert pacing[0].subject == "autoscaler/busy@desktop"

    def test_fixed_autoscaler_is_clean(self):
        home = MiniHome()
        auditor = InvariantAuditor(home.kernel)
        service = FunctionService("busy", lambda p, c: p,
                                  reference_cost_s=0.100)
        host = ServiceHost(home.kernel, home.desktop, service, home.transport)
        policy = ScalingPolicy(check_interval_s=0.1, queue_threshold=1.0,
                               window=3, max_replicas=6, cooldown_s=1.0)
        scaler = AutoScaler(home.kernel, policy)
        auditor.watch_autoscaler(scaler)
        scaler.watch(host)
        scaler.start()
        self._overload(home, host)
        home.kernel.run(until=4.0)
        scaler.stop()
        assert scaler.events  # it did scale...
        assert auditor.violations == []  # ...at the documented pace


class LeakyCollector(MetricsCollector):
    """The PR-3 bug class: completion stops pruning ``_frame_started``."""

    def frame_completed(self, frame_id, now):
        self.completions.tick(now)
        self._counters["frames_completed"] += 1
        if self.auditor is not None:
            self.auditor.on_frame_completed(self, frame_id)


class TestCollectorLeak:
    def test_unpruned_in_flight_table_is_flagged(self):
        kernel = Kernel()
        auditor = InvariantAuditor(kernel)
        collector = LeakyCollector("leaky")
        auditor.watch_metrics(collector)
        collector.frame_entered(1, 0.0)
        collector.frame_completed(1, 0.5)
        violations = auditor.check_now()
        assert violations, "the in-flight leak went unnoticed"
        assert "not pruning" in violations[0].detail
