"""Unit tests for the determinism harness: taps, diffing, reporting."""

from repro.audit import (
    EventTap,
    check_determinism,
    first_divergence,
    record_scenario,
)
from repro.sim import Kernel


def toy_scenario(seed):
    """A tiny deterministic scenario: two interleaved kernel processes."""
    kernel = Kernel()
    log = []

    def worker(name, period):
        for n in range(5):
            log.append((kernel.now, name, n))
            yield period

    kernel.process(worker("a", 0.1), name="a")
    kernel.process(worker("b", 0.15 + seed * 0.0), name="b")

    class Home:
        pass

    home = Home()
    home.kernel = kernel

    def run_fn():
        kernel.run()
        return list(log)

    return home, run_fn


_flaky_calls = {"n": 0}


def flaky_scenario(seed):
    """Deliberately nondeterministic: the delay changes between runs."""
    home, _ = toy_scenario(seed)
    kernel = home.kernel
    _flaky_calls["n"] += 1
    kernel.schedule(0.05 * _flaky_calls["n"], lambda: None)

    def run_fn():
        kernel.run()
        return kernel.now

    return home, run_fn


class TestEventTap:
    def test_records_schedule_and_execute_phases(self):
        kernel = Kernel()
        tap = EventTap()
        kernel.add_observer(tap)
        kernel.schedule(0.1, lambda: None)
        kernel.run()
        phases = [r[0] for r in tap.records]
        assert phases == ["S", "X"]

    def test_labels_name_the_callback_and_owner(self):
        kernel = Kernel()
        tap = EventTap()
        kernel.add_observer(tap)

        def gen():
            yield 0.1

        kernel.process(gen(), name="worker-7")
        kernel.run()
        assert any("worker-7" in r[4] for r in tap.records)

    def test_limit_counts_overflow_instead_of_growing(self):
        kernel = Kernel()
        tap = EventTap(limit=3)
        kernel.add_observer(tap)
        for n in range(4):
            kernel.schedule(0.1 * (n + 1), lambda: None)
        kernel.run()
        assert len(tap.records) == 3
        assert tap.overflow == 5  # 1 schedule + 4 executes past the cap


class TestDiff:
    def test_identical_streams_have_no_divergence(self):
        a = [("X", 0.1, 1, 1, "f"), ("X", 0.2, 1, 2, "g")]
        assert first_divergence(a, list(a)) is None

    def test_first_differing_record_is_reported(self):
        a = [("X", 0.1, 1, 1, "f"), ("X", 0.2, 1, 2, "g")]
        b = [("X", 0.1, 1, 1, "f"), ("X", 0.3, 1, 2, "g")]
        d = first_divergence(a, b)
        assert d.index == 1
        assert "t=0.200000000s" in d.describe()
        assert "t=0.300000000s" in d.describe()

    def test_length_mismatch_is_a_divergence(self):
        a = [("X", 0.1, 1, 1, "f")]
        d = first_divergence(a, a + [("X", 0.2, 1, 2, "g")])
        assert d.index == 1
        assert d.first is None
        assert "<stream ended>" in d.describe()


class TestCheckDeterminism:
    def test_deterministic_scenario_passes(self):
        report = check_determinism(toy_scenario, seed=7)
        assert report.ok
        assert report.event_count > 0
        assert "deterministic over" in report.describe()
        assert report.as_dict()["ok"] is True

    def test_nondeterministic_scenario_reports_divergence(self):
        report = check_determinism(flaky_scenario, seed=7, name="flaky")
        assert not report.ok
        assert report.divergence is not None
        text = report.describe()
        assert "NOT deterministic" in text
        assert "diverge at record" in text
        assert report.as_dict()["divergence"]

    def test_record_scenario_detaches_the_tap(self):
        home, _ = toy_scenario(3)
        record_scenario(lambda s: toy_scenario(s), 3)
        # a fresh scenario's kernel holds no observers after recording
        _, run_fn = toy_scenario(3)
        assert run_fn()  # still runs clean


class TestFixture:
    def test_assert_deterministic_fixture(self, assert_deterministic):
        report = assert_deterministic(toy_scenario, seed=5)
        assert report.ok
