"""Regression tests for eviction-hook accounting and re-entry.

The fixed bug: ``_make_room`` trusted the count a hook *returned* instead
of measuring how many slots it actually freed, so a lying hook satisfied
the room check while the store stayed full, and a hook calling ``put``
recursed back into eviction."""

import numpy as np
import pytest

from repro.errors import FrameStoreError
from repro.frames import FrameStore, VideoFrame


def make_frame(fill):
    pixels = np.full((24, 32, 3), fill, dtype=np.uint8)
    return VideoFrame(frame_id=fill, source="cam", capture_time=0.0,
                      width=32, height=24, pixels=pixels)


class TestHookAccounting:
    def test_lying_hook_does_not_satisfy_the_room_check(self):
        store = FrameStore("phone", capacity=2)
        store.put("a")
        store.put("b")

        def liar(st, needed):
            return needed  # claims to have freed everything, frees nothing

        store.add_eviction_hook(liar)
        with pytest.raises(FrameStoreError, match="full"):
            store.put("c")
        assert store.hook_evictions == 0

    def test_partial_eviction_is_measured_not_reported(self):
        store = FrameStore("phone", capacity=2)
        held = [store.put("a"), store.put("b")]

        def frees_one_claims_zero(st, needed):
            st.release(held.pop(0))
            return 0  # the return value must be ignored either way

        store.add_eviction_hook(frees_one_claims_zero)
        ref = store.put("c")
        assert store.contains(ref)
        assert store.hook_evictions == 1

    def test_hooks_run_in_order_until_enough_is_freed(self):
        store = FrameStore("phone", capacity=2)
        held = [store.put("a"), store.put("b")]
        calls = []

        def first(st, needed):
            calls.append("first")
            st.release(held.pop(0))

        def second(st, needed):
            calls.append("second")
            st.release(held.pop(0))

        store.add_eviction_hook(first)
        store.add_eviction_hook(second)
        store.put("c")
        # the first hook freed the needed slot; the second never ran
        assert calls == ["first"]

    def test_dedup_store_counts_releases_that_land_in_retained(self):
        """On a dedup store a hook's release parks the frame in the
        retained cache instead of freeing the slot outright; the measured
        delta must still credit the hook after the retained sweep."""
        store = FrameStore("phone", dedup=True, capacity=2, retain_limit=8)
        held = [store.put(make_frame(1)), store.put(make_frame(2))]

        def drop_mine(st, needed):
            st.release(held.pop(0))

        store.add_eviction_hook(drop_mine)
        ref = store.put(make_frame(3))
        assert store.contains(ref)
        assert store.hook_evictions == 1


class TestReentry:
    def test_hook_calling_put_is_rejected(self):
        store = FrameStore("phone", capacity=2)
        store.put("a")
        store.put("b")

        def reenters(st, needed):
            st.put("sneaky")

        store.add_eviction_hook(reenters)
        with pytest.raises(FrameStoreError, match="re-entered"):
            store.put("c")
        # the guard resets: the store still works afterwards
        assert store._evicting is False
