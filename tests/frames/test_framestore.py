"""Unit and property tests for the frame store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameStoreError
from repro.frames import FrameRef, FrameStore


class TestFrameStore:
    def test_put_get_roundtrip_no_copy(self):
        store = FrameStore("phone")
        obj = {"frame": 1}
        ref = store.put(obj)
        assert store.get(ref) is obj  # identity: zero-copy
        assert ref.device == "phone"

    def test_refs_are_small_on_the_wire(self):
        ref = FrameStore("phone").put(object())
        assert ref.wire_size < 100

    def test_release_reclaims_slot(self):
        store = FrameStore("phone")
        ref = store.put("x")
        assert len(store) == 1
        store.release(ref)
        assert len(store) == 0
        with pytest.raises(FrameStoreError):
            store.get(ref)

    def test_add_ref_delays_reclaim(self):
        store = FrameStore("phone")
        ref = store.put("x")
        store.add_ref(ref)
        assert store.refcount(ref) == 2
        store.release(ref)
        assert store.get(ref) == "x"  # still alive
        store.release(ref)
        assert not store.contains(ref)

    def test_double_release_rejected(self):
        store = FrameStore("phone")
        ref = store.put("x")
        store.release(ref)
        with pytest.raises(FrameStoreError):
            store.release(ref)

    def test_cross_device_refs_rejected(self):
        phone = FrameStore("phone")
        desktop = FrameStore("desktop")
        ref = phone.put("x")
        with pytest.raises(FrameStoreError, match="never cross devices"):
            desktop.get(ref)

    def test_capacity_enforced(self):
        store = FrameStore("phone", capacity=2)
        store.put("a")
        store.put("b")
        with pytest.raises(FrameStoreError, match="leaking"):
            store.put("c")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(FrameStoreError):
            FrameStore("phone", capacity=0)

    def test_ids_never_reused(self):
        store = FrameStore("phone")
        first = store.put("a")
        store.release(first)
        second = store.put("b")
        assert second.ref_id != first.ref_id

    def test_statistics(self):
        store = FrameStore("phone")
        refs = [store.put(i) for i in range(3)]
        store.get(refs[0])
        store.get(refs[0])
        assert store.stored_count == 3
        assert store.resolved_count == 2
        assert store.peak_occupancy == 3


@given(
    ops=st.lists(
        st.sampled_from(["put", "addref", "release", "get"]), min_size=1, max_size=200
    )
)
@settings(max_examples=60)
def test_property_refcounts_never_corrupt(ops):
    """Random op sequences: live objects always resolvable, dead never."""
    store = FrameStore("dev", capacity=1000)
    live = {}  # ref -> expected refcount
    counter = 0
    for op in ops:
        if op == "put":
            counter += 1
            ref = store.put(counter)
            live[ref] = 1
        elif live:
            ref = next(iter(live))
            if op == "addref":
                store.add_ref(ref)
                live[ref] += 1
            elif op == "release":
                store.release(ref)
                live[ref] -= 1
                if live[ref] == 0:
                    del live[ref]
            else:  # get
                assert store.get(ref) is not None
    assert len(store) == len(live)
    for ref, count in live.items():
        assert store.refcount(ref) == count
