"""Content-addressed frame store: dedup, retention, and eviction hooks."""

import numpy as np
import pytest

from repro.errors import FrameStoreError
from repro.frames import FrameStore, VideoFrame


def make_frame(frame_id=1, t=0.0, fill=7):
    pixels = np.full((24, 32, 3), fill, dtype=np.uint8)
    return VideoFrame(frame_id=frame_id, source="cam", capture_time=t,
                      width=32, height=24, pixels=pixels)


class TestDedup:
    def test_identical_frames_share_one_slot(self):
        store = FrameStore("phone", dedup=True)
        first = store.put(make_frame(frame_id=1, t=0.0))
        second = store.put(make_frame(frame_id=2, t=0.5))
        assert second.ref_id == first.ref_id
        assert len(store) == 1
        assert store.refcount(first) == 2
        assert store.dedup_hits == 1
        assert store.dedup_bytes_saved == make_frame().raw_size
        assert store.dedup_ratio() == pytest.approx(0.5)

    def test_different_content_gets_own_slot(self):
        store = FrameStore("phone", dedup=True)
        a = store.put(make_frame(fill=7))
        b = store.put(make_frame(fill=8))
        assert a.ref_id != b.ref_id
        assert store.dedup_hits == 0

    def test_dedup_off_by_default(self):
        store = FrameStore("phone")
        a = store.put(make_frame())
        b = store.put(make_frame())
        assert a.ref_id != b.ref_id
        assert store.dedup_hits == store.dedup_misses == 0

    def test_non_frames_never_dedup(self):
        store = FrameStore("phone", dedup=True)
        a = store.put({"x": 1})
        b = store.put({"x": 1})
        assert a.ref_id != b.ref_id

    def test_released_frame_is_retained_and_revived(self):
        store = FrameStore("phone", dedup=True)
        ref = store.put(make_frame())
        store.release(ref)
        assert store.retained_count == 1
        assert not store.contains(ref)  # retained = invisible to holders
        with pytest.raises(FrameStoreError):
            store.get(ref)
        revived = store.put(make_frame(frame_id=2))
        assert revived.ref_id == ref.ref_id  # same slot came back
        assert store.refcount(revived) == 1
        assert store.retained_count == 0

    def test_retain_limit_reclaims_oldest(self):
        store = FrameStore("phone", dedup=True, retain_limit=2)
        refs = [store.put(make_frame(fill=i)) for i in range(3)]
        for ref in refs:
            store.release(ref)
        assert store.retained_count == 2
        assert store.retained_evictions == 1
        # the oldest (fill=0) was reclaimed: re-putting it is a miss
        again = store.put(make_frame(fill=0))
        assert again.ref_id != refs[0].ref_id

    def test_retain_limit_zero_reclaims_immediately(self):
        store = FrameStore("phone", dedup=True, retain_limit=0)
        ref = store.put(make_frame())
        store.release(ref)
        assert len(store) == 0

    def test_digest_of_memoizes(self):
        store = FrameStore("phone")
        ref = store.put(make_frame())
        digest = store.digest_of(ref)
        assert digest is not None
        assert store.digest_of(ref) == digest
        assert store.digest_of(store.put(object())) is None


class TestCapacityPressure:
    def test_retained_evicted_before_failing(self):
        store = FrameStore("phone", dedup=True, capacity=2)
        parked = store.put(make_frame(fill=1))
        store.release(store.put(make_frame(fill=2)))  # now retained
        assert store.retained_count == 1
        extra = store.put(make_frame(fill=3))  # forces retained out
        assert store.contains(parked) and store.contains(extra)
        assert store.retained_count == 0
        assert store.retained_evictions == 1

    def test_eviction_hook_frees_slots(self):
        store = FrameStore("phone", capacity=2)
        held = [store.put("a"), store.put("b")]

        def drop_mine(st, needed):
            freed = 0
            while held and freed < needed:
                st.release(held.pop())
                freed += 1
            return freed

        store.add_eviction_hook(drop_mine)
        ref = store.put("c")  # would overflow without the hook
        assert store.contains(ref)
        assert store.hook_evictions == 1
        assert len(held) == 1

    def test_leak_diagnostic_names_top_holders(self):
        store = FrameStore("phone", capacity=2)
        ref = store.put("hog")
        for _ in range(4):
            store.add_ref(ref)
        store.put("b")
        with pytest.raises(FrameStoreError, match=r"top holders.*str x5"):
            store.put("c")

    def test_invalid_retain_limit_rejected(self):
        with pytest.raises(FrameStoreError):
            FrameStore("phone", retain_limit=-1)
