"""Unit tests for the paced video source and its credit-gated flow control."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.frames import SyntheticCamera, VideoFrame, VideoSource
from repro.motion import Squat
from repro.sim import Kernel


def simple_camera(frame_id, t):
    return VideoFrame(frame_id=frame_id, source="phone", capture_time=t)


class TestSyntheticCamera:
    def test_annotated_capture_carries_truth(self):
        camera = SyntheticCamera("phone", Squat())
        frame = camera.capture(1, 0.25)
        assert frame.truth is not None
        assert frame.pixels is None
        assert frame.metadata["activity"] == "squat"
        assert frame.capture_time == 0.25

    def test_rendered_capture_carries_pixels(self):
        camera = SyntheticCamera(
            "phone", Squat(), render=True, rng=np.random.default_rng(0)
        )
        frame = camera.capture(1, 0.0)
        assert frame.pixels is not None
        assert frame.pixels.shape == (120, 160)

    def test_motion_advances_with_time(self):
        camera = SyntheticCamera("phone", Squat(period_s=2.0))
        top = camera.capture(1, 0.0).truth.hip_center()[1]
        bottom = camera.capture(2, 1.0).truth.hip_center()[1]
        assert bottom > top


class TestVideoSourceValidation:
    def test_rejects_bad_fps(self):
        with pytest.raises(ConfigError):
            VideoSource(Kernel(), simple_camera, fps=0, deliver=lambda f: None)

    def test_rejects_bad_mode(self):
        with pytest.raises(ConfigError):
            VideoSource(Kernel(), simple_camera, fps=10, deliver=lambda f: None,
                        mode="best-effort")

    def test_jitter_requires_rng(self):
        with pytest.raises(ConfigError):
            VideoSource(Kernel(), simple_camera, fps=10, deliver=lambda f: None,
                        jitter_cv=0.1)

    def test_double_start_rejected(self):
        kernel = Kernel()
        source = VideoSource(kernel, simple_camera, fps=10, deliver=lambda f: None)
        source.start(max_frames=1)
        with pytest.raises(ConfigError):
            source.start(max_frames=1)


class TestSignalMode:
    def test_fast_sink_receives_every_frame(self):
        kernel = Kernel()
        received = []

        def deliver(frame):
            received.append(frame)
            # instant processing: grant the next credit immediately
            source.grant_credit()

        source = VideoSource(kernel, simple_camera, fps=10, deliver=deliver)
        source.start(duration_s=1.0)
        kernel.run()
        assert source.captured_count == 10
        assert len(received) == 10
        assert source.dropped_count == 0

    def test_slow_sink_drops_at_source(self):
        kernel = Kernel()
        received = []

        def deliver(frame):
            received.append(frame)
            # sink takes 250 ms per frame at a 10 fps source
            kernel.schedule(0.250, source.grant_credit)

        source = VideoSource(kernel, simple_camera, fps=10, deliver=deliver)
        source.start(duration_s=3.0)
        kernel.run()
        assert source.captured_count == 30
        # credit returns every 250 ms and the freshest buffered frame goes
        # out immediately: throughput tracks the sink, not the capture tick
        assert 10 <= len(received) <= 13
        assert source.dropped_count > 10
        assert source.drop_rate > 0.3
        # admitted frames are always the freshest available at credit time
        capture_times = [f.capture_time for f in received]
        assert capture_times == sorted(capture_times)

    def test_only_one_frame_in_flight(self):
        kernel = Kernel()
        in_flight = {"count": 0, "max": 0}

        def deliver(frame):
            in_flight["count"] += 1
            in_flight["max"] = max(in_flight["max"], in_flight["count"])

            def finish():
                in_flight["count"] -= 1
                source.grant_credit()

            kernel.schedule(0.150, finish)

        source = VideoSource(kernel, simple_camera, fps=30, deliver=deliver)
        source.start(duration_s=2.0)
        kernel.run()
        assert in_flight["max"] == 1

    def test_excess_credit_does_not_accumulate(self):
        kernel = Kernel()
        received = []
        source = VideoSource(kernel, simple_camera, fps=10,
                             deliver=lambda f: received.append(f))
        for _ in range(5):
            source.grant_credit()  # spurious extra grants
        source.start(duration_s=0.55)
        kernel.run()
        assert len(received) == 1  # one credit -> one frame, no burst


class TestPushMode:
    def test_push_mode_never_drops(self):
        kernel = Kernel()
        received = []
        source = VideoSource(kernel, simple_camera, fps=20,
                             deliver=lambda f: received.append(f), mode="push")
        source.start(duration_s=1.0)
        kernel.run()
        assert len(received) == 20
        assert source.dropped_count == 0


class TestPacing:
    def test_max_frames_limit(self):
        kernel = Kernel()
        received = []
        source = VideoSource(kernel, simple_camera, fps=100,
                             deliver=lambda f: received.append(f), mode="push")
        source.start(max_frames=7)
        kernel.run()
        assert len(received) == 7

    def test_stop_halts_capture(self):
        kernel = Kernel()
        source = VideoSource(kernel, simple_camera, fps=10,
                             deliver=lambda f: None, mode="push")
        source.start(duration_s=10.0)
        kernel.schedule(0.5, source.stop)
        kernel.run()
        assert source.captured_count <= 7

    def test_jittered_intervals_vary_but_average_out(self):
        kernel = Kernel()
        times = []
        source = VideoSource(
            kernel, simple_camera, fps=10, deliver=lambda f: times.append(kernel.now),
            mode="push", jitter_cv=0.2, rng=np.random.default_rng(0),
        )
        source.start(max_frames=200)
        kernel.run()
        intervals = np.diff(times)
        assert intervals.std() > 0
        assert intervals.mean() == pytest.approx(0.1, rel=0.1)


class TestCreditWatchdog:
    def test_lost_signal_recovers_after_timeout(self):
        """A sink that never signals back (crashed module, lost message):
        the watchdog regenerates credit so the stream keeps flowing."""
        kernel = Kernel()
        received = []
        source = VideoSource(kernel, simple_camera, fps=10,
                             deliver=received.append,
                             credit_timeout_s=0.5)
        source.start(duration_s=3.0)
        kernel.run()
        # one frame per ~0.5-0.6 s watchdog window instead of one total
        assert 4 <= len(received) <= 7
        assert source.watchdog_recoveries == len(received) - 1

    def test_watchdog_off_by_default(self):
        kernel = Kernel()
        received = []
        source = VideoSource(kernel, simple_camera, fps=10,
                             deliver=received.append)
        source.start(duration_s=3.0)
        kernel.run()
        assert len(received) == 1  # pure protocol: stalls without signals
        assert source.watchdog_recoveries == 0

    def test_watchdog_idle_when_signals_flow(self):
        kernel = Kernel()
        received = []

        def deliver(frame):
            received.append(frame)
            kernel.schedule(0.05, source.grant_credit)

        source = VideoSource(kernel, simple_camera, fps=10, deliver=deliver,
                             credit_timeout_s=0.5)
        source.start(duration_s=3.0)
        kernel.run()
        assert source.watchdog_recoveries == 0
        assert len(received) >= 25

    def test_timeout_validated(self):
        with pytest.raises(ConfigError):
            VideoSource(Kernel(), simple_camera, fps=10,
                        deliver=lambda f: None, credit_timeout_s=0.0)
