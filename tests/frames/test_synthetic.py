"""Unit tests for synthetic rendering and pixel-domain analysis."""

import numpy as np
import pytest

from repro.frames import (
    detect_foreground_bbox,
    foreground_fraction,
    render_pose,
    scale_pose,
)
from repro.motion import Squat, SubjectParams, place_in_image
from repro.motion.skeleton import Pose
from repro.motion.exercises import base_pose


def rendered_subject(width=160, height=120, t=0.0):
    subject = SubjectParams(
        height_px=height * 0.7, center_x=width / 2, ground_y=height * 0.92
    )
    pose = place_in_image(Squat(period_s=2.0).pose_at(t), subject)
    return pose, render_pose(pose, width, height)


class TestRenderPose:
    def test_shape_and_dtype(self):
        _, image = rendered_subject()
        assert image.shape == (120, 160)
        assert image.dtype == np.uint8

    def test_subject_pixels_are_bright(self):
        pose, image = rendered_subject()
        assert foreground_fraction(image) > 0.01
        # a hip keypoint should be on the torso line, hence bright
        hx, hy = pose.hip_center()
        assert image[int(hy), int(hx)] >= 120

    def test_background_is_dim(self):
        _, image = rendered_subject()
        corner = image[:10, :10]
        assert corner.max() < 120

    def test_noise_background_with_rng(self):
        pose, _ = rendered_subject()
        image = render_pose(pose, 160, 120, rng=np.random.default_rng(0))
        corner = image[:10, :10]
        assert corner.std() > 0  # noisy, not flat

    def test_offscreen_keypoints_handled(self):
        keypoints = base_pose() * 100 + np.array([500.0, 500.0])  # far off-frame
        image = render_pose(Pose(keypoints), 160, 120)
        assert foreground_fraction(image) == 0.0

    def test_invisible_limbs_not_drawn(self):
        pose, _ = rendered_subject()
        hidden = Pose(pose.keypoints, np.zeros(17, dtype=bool))
        image = render_pose(hidden, 160, 120)
        # only the head disc remains (nose position is keypoint-based)
        assert foreground_fraction(image) < 0.01


class TestDetectForegroundBbox:
    def test_box_covers_subject(self):
        pose, image = rendered_subject()
        box = detect_foreground_bbox(image)
        assert box is not None
        x0, y0, x1, y1 = box
        truth_x0, truth_y0, truth_x1, truth_y1 = pose.bounding_box(margin=0.0)
        # detected box within a few pixels of the truth box
        assert abs(x0 - truth_x0) < 8
        assert abs(x1 - truth_x1) < 8
        assert y0 <= truth_y0 + 8
        assert y1 >= truth_y1 - 8

    def test_empty_scene_returns_none(self):
        image = np.full((120, 160), 40, dtype=np.uint8)
        assert detect_foreground_bbox(image) is None

    def test_threshold_controls_sensitivity(self):
        image = np.full((10, 10), 40, dtype=np.uint8)
        image[5, 5] = 130
        assert detect_foreground_bbox(image, threshold=120) == (5, 5, 5, 5)
        assert detect_foreground_bbox(image, threshold=200) is None


class TestScalePose:
    def test_rescales_coordinates(self):
        pose = Pose(base_pose() * 100 + 200)
        scaled = scale_pose(pose, (640, 480), (160, 120))
        np.testing.assert_allclose(scaled.keypoints[:, 0], pose.keypoints[:, 0] / 4)
        np.testing.assert_allclose(scaled.keypoints[:, 1], pose.keypoints[:, 1] / 4)

    def test_identity_scale(self):
        pose = Pose(base_pose())
        scaled = scale_pose(pose, (640, 480), (640, 480))
        np.testing.assert_array_equal(scaled.keypoints, pose.keypoints)
