"""Property-based tests for the §2.3 no-queue flow-control protocol."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frames import VideoFrame, VideoSource
from repro.sim import Kernel


def camera(frame_id, t):
    return VideoFrame(frame_id=frame_id, source="cam", capture_time=t)


@given(
    fps=st.floats(min_value=2.0, max_value=60.0),
    processing_s=st.floats(min_value=0.001, max_value=0.5),
    duration_s=st.floats(min_value=1.0, max_value=5.0),
)
@settings(max_examples=60, deadline=None)
def test_invariants_hold_for_any_sink_speed(fps, processing_s, duration_s):
    """For any (source rate, sink speed): at most one frame in flight,
    conservation of frames, and throughput bounded by both the source and
    the sink."""
    kernel = Kernel()
    in_flight = {"count": 0, "max": 0}
    received = []

    def deliver(frame):
        in_flight["count"] += 1
        in_flight["max"] = max(in_flight["max"], in_flight["count"])
        received.append(frame)

        def finish():
            in_flight["count"] -= 1
            source.grant_credit()

        kernel.schedule(processing_s, finish)

    source = VideoSource(kernel, camera, fps=fps, deliver=deliver)
    source.start(duration_s=duration_s)
    kernel.run()

    # invariant 1: the one-frame-in-flight rule
    assert in_flight["max"] <= 1

    # invariant 2: conservation — every captured frame is emitted, dropped,
    # or (at most one) still buffered at shutdown
    buffered = 1 if source._pending is not None else 0
    assert source.captured_count == (
        source.emitted_count + source.dropped_count + buffered
    )

    # invariant 3: ordering and freshness — frames arrive in capture order
    ids = [f.frame_id for f in received]
    assert ids == sorted(ids)

    # invariant 4: throughput is bounded by source and sink capacity
    rate = len(received) / duration_s
    assert rate <= fps + 1.0
    assert rate <= 1.0 / processing_s + 2.0


@given(
    fps=st.floats(min_value=5.0, max_value=50.0),
    processing_s=st.floats(min_value=0.001, max_value=0.05),
)
@settings(max_examples=40, deadline=None)
def test_fast_sink_never_drops(fps, processing_s):
    """When the sink is faster than the source interval, nothing drops."""
    if processing_s >= 1.0 / fps:
        return  # not the fast-sink regime
    kernel = Kernel()
    received = []

    def deliver(frame):
        received.append(frame)
        kernel.schedule(processing_s, source.grant_credit)

    source = VideoSource(kernel, camera, fps=fps, deliver=deliver)
    source.start(duration_s=3.0)
    kernel.run()
    assert source.dropped_count == 0
    assert len(received) == source.captured_count - (
        1 if source._pending is not None else 0
    )
