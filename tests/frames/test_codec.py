"""Unit tests for the frame codec."""

import numpy as np
import pytest

from repro.frames import (
    VideoFrame,
    decode_frame,
    encode_frame,
    jpeg_bits_per_pixel,
    jpeg_size_model,
    psnr,
)


def make_frame(pixels=None, width=640, height=480):
    return VideoFrame(
        frame_id=1, source="phone", capture_time=0.0,
        width=width, height=height, pixels=pixels,
    )


class TestSizeModel:
    def test_vga_quality80_near_45kb(self):
        size = jpeg_size_model(640, 480, 80)
        assert 38000 < size < 55000

    def test_monotone_in_quality(self):
        sizes = [jpeg_size_model(640, 480, q) for q in (10, 40, 70, 95)]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1] / 2

    def test_scales_with_resolution(self):
        small = jpeg_size_model(320, 240, 80)
        large = jpeg_size_model(640, 480, 80)
        assert large > small * 3.5

    def test_quality_bounds(self):
        with pytest.raises(ValueError):
            jpeg_bits_per_pixel(0)
        with pytest.raises(ValueError):
            jpeg_bits_per_pixel(101)


class TestEncodeDecode:
    def test_annotated_frame_roundtrip_preserves_metadata(self):
        frame = make_frame()
        frame.metadata["activity"] = "squat"
        encoded = encode_frame(frame, quality=80)
        decoded = decode_frame(encoded)
        assert decoded.frame_id == 1
        assert decoded.metadata["activity"] == "squat"
        assert decoded.pixels is None

    def test_wire_size_matches_model(self):
        frame = make_frame()
        encoded = encode_frame(frame, quality=60)
        assert encoded.wire_size == jpeg_size_model(640, 480, 60)

    def test_costs_scale_with_pixel_count(self):
        small = encode_frame(make_frame(width=320, height=240))
        large = encode_frame(make_frame(width=640, height=480))
        assert large.encode_cost_s == pytest.approx(small.encode_cost_s * 4)
        assert large.decode_cost_s < large.encode_cost_s

    def test_pixel_frame_is_lossy_but_close(self):
        rng = np.random.default_rng(0)
        pixels = rng.integers(0, 256, (120, 160), dtype=np.uint8)
        frame = make_frame(pixels=pixels, width=160, height=120)
        decoded = decode_frame(encode_frame(frame, quality=80))
        assert decoded.pixels is not None
        assert decoded.pixels.dtype == np.uint8
        assert psnr(pixels, decoded.pixels) > 30.0
        assert not np.array_equal(pixels, decoded.pixels)  # genuinely lossy

    def test_lower_quality_degrades_more(self):
        rng = np.random.default_rng(0)
        pixels = rng.integers(0, 256, (60, 80), dtype=np.uint8)
        frame = make_frame(pixels=pixels, width=80, height=60)
        high = decode_frame(encode_frame(frame, quality=95)).pixels
        low = decode_frame(encode_frame(frame, quality=10)).pixels
        assert psnr(pixels, high) > psnr(pixels, low)

    def test_original_frame_pixels_untouched(self):
        pixels = np.full((60, 80), 100, dtype=np.uint8)
        frame = make_frame(pixels=pixels, width=80, height=60)
        encode_frame(frame, quality=10)
        assert (frame.pixels == 100).all()


class TestPsnr:
    def test_identical_images_infinite(self):
        image = np.zeros((4, 4), dtype=np.uint8)
        assert psnr(image, image) == float("inf")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((4, 4)), np.zeros((5, 5)))
