"""The shared-memory frame plane: arenas, handles, and stale detection."""

import numpy as np
import pytest

from repro.errors import FrameStoreError, StaleHandleError
from repro.frames import (
    EVICTED,
    MIGRATED,
    RELEASED,
    ArenaHandle,
    FrameArena,
    FrameStore,
    VideoFrame,
)


def make_frame(frame_id=1, t=0.0, fill=7):
    pixels = np.full((24, 32, 3), fill, dtype=np.uint8)
    return VideoFrame(frame_id=frame_id, source="cam", capture_time=t,
                      width=32, height=24, pixels=pixels)


class TestArenaCore:
    def test_alloc_free_roundtrip(self):
        arena = FrameArena("phone")
        handle = arena.alloc(1024)
        assert arena.is_live(handle)
        assert arena.live_count == 1
        assert arena.bytes_in_use == 1024
        arena.free(handle)
        assert not arena.is_live(handle)
        assert arena.live_count == 0
        assert arena.bytes_in_use == 0

    def test_handles_cost_zero_wire_bytes(self):
        handle = FrameArena("phone").alloc(640 * 480 * 3)
        assert handle.wire_size == 0

    def test_generation_bumps_on_free_not_realloc(self):
        arena = FrameArena("phone")
        first = arena.alloc(64)
        arena.free(first)
        # stale even before the slot is recycled
        with pytest.raises(StaleHandleError):
            arena.check(first)
        second = arena.alloc(64)
        assert second.offset == first.offset  # slot reused
        assert second.generation > first.generation

    def test_stale_handle_names_retire_reason(self):
        arena = FrameArena("phone")
        for reason in (EVICTED, MIGRATED, RELEASED):
            handle = arena.alloc(32)
            arena.free(handle, reason=reason)
            with pytest.raises(StaleHandleError) as exc:
                arena.check(handle)
            assert exc.value.reason == reason
        assert sum(arena.stale_accesses.values()) == 3

    def test_double_free_raises_stale(self):
        arena = FrameArena("phone")
        handle = arena.alloc(32)
        arena.free(handle)
        with pytest.raises(StaleHandleError) as exc:
            arena.free(handle)
        assert exc.value.reason == RELEASED
        assert arena.frees == 1  # the second free never counted

    def test_stale_handle_error_is_a_frame_store_error(self):
        # callers catching the store's generic error keep working
        assert issubclass(StaleHandleError, FrameStoreError)

    def test_cross_arena_handles_rejected(self):
        phone = FrameArena("phone")
        desktop = FrameArena("desktop")
        handle = phone.alloc(32)
        with pytest.raises(FrameStoreError, match="never cross devices"):
            desktop.check(handle)

    def test_byte_budget_enforced(self):
        arena = FrameArena("phone", capacity_bytes=100)
        arena.alloc(60)
        with pytest.raises(FrameStoreError, match="over byte budget"):
            arena.alloc(60)

    def test_unknown_retire_reason_rejected(self):
        arena = FrameArena("phone")
        handle = arena.alloc(32)
        with pytest.raises(FrameStoreError, match="retire reason"):
            arena.free(handle, reason="misplaced")


class TestStoreArenaIntegration:
    def store(self, **kwargs):
        store = FrameStore("phone", **kwargs)
        store.attach_arena(FrameArena("phone"))
        return store

    def test_stored_frames_get_handles(self):
        store = self.store()
        ref = store.put(make_frame())
        handle = store.handle_of(ref)
        assert isinstance(handle, ArenaHandle)
        assert handle.nbytes == make_frame().raw_size
        assert store.frame_by_handle(handle).frame_id == 1

    def test_non_frames_get_no_handle(self):
        store = self.store()
        ref = store.put({"not": "a frame"})
        assert store.handle_of(ref) is None

    def test_use_after_release_raises_stale(self):
        store = self.store()
        ref = store.put(make_frame())
        handle = store.handle_of(ref)
        store.release(ref)
        with pytest.raises(StaleHandleError) as exc:
            store.frame_by_handle(handle)
        assert exc.value.reason == RELEASED
        with pytest.raises(StaleHandleError) as exc:
            store.get(ref)
        assert exc.value.reason == RELEASED

    def test_use_after_migrate_raises_stale(self):
        store = self.store()
        ref = store.put(make_frame())
        handle = store.handle_of(ref)
        store.release(ref, reason=MIGRATED)
        with pytest.raises(StaleHandleError) as exc:
            store.frame_by_handle(handle)
        assert exc.value.reason == MIGRATED

    def test_use_after_evict_raises_stale(self):
        store = FrameStore("phone", dedup=True, retain_limit=1)
        store.attach_arena(FrameArena("phone"))
        first = store.put(make_frame(fill=1))
        first_handle = store.handle_of(first)
        store.release(first)  # retained as a dedup target
        second = store.put(make_frame(fill=2))
        store.release(second)  # retention overflow evicts the oldest
        with pytest.raises(StaleHandleError) as exc:
            store.frame_by_handle(first_handle)
        assert exc.value.reason == EVICTED

    def test_double_release_raises_stale(self):
        store = self.store()
        ref = store.put(make_frame())
        store.release(ref)
        with pytest.raises(StaleHandleError):
            store.release(ref)

    def test_attach_adopts_existing_frames(self):
        store = FrameStore("phone")
        ref = store.put(make_frame())
        arena = FrameArena("phone")
        store.attach_arena(arena)
        assert arena.live_count == 1
        assert store.handle_of(ref) is not None

    def test_attach_rejects_wrong_device_and_second_arena(self):
        store = FrameStore("phone")
        with pytest.raises(FrameStoreError, match="device-local"):
            store.attach_arena(FrameArena("desktop"))
        store.attach_arena(FrameArena("phone"))
        with pytest.raises(FrameStoreError, match="already has an arena"):
            store.attach_arena(FrameArena("phone"))

    def test_dedup_hit_allocates_no_new_slot(self):
        store = FrameStore("phone", dedup=True)
        arena = FrameArena("phone")
        store.attach_arena(arena)
        store.put(make_frame(frame_id=1))
        store.put(make_frame(frame_id=2))  # byte-identical -> same slot
        assert arena.allocs == 1
