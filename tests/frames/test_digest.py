"""Unit tests for content digests: the foundation of dedup and caching."""

import numpy as np

from repro.frames import FrameRef, VideoFrame, content_digest, encode_frame


def make_frame(frame_id=1, t=0.0, fill=7, w=32, h=24):
    pixels = np.full((h, w, 3), fill, dtype=np.uint8)
    return VideoFrame(frame_id=frame_id, source="cam", capture_time=t,
                      width=w, height=h, pixels=pixels)


class TestContentDigest:
    def test_bookkeeping_excluded(self):
        """Same scene, different capture: frame_id/capture_time don't count."""
        a = make_frame(frame_id=1, t=0.0)
        b = make_frame(frame_id=99, t=4.5)
        assert content_digest(a) == content_digest(b)

    def test_pixels_included(self):
        assert content_digest(make_frame(fill=7)) != content_digest(make_frame(fill=8))

    def test_geometry_included(self):
        assert content_digest(make_frame(w=32)) != content_digest(make_frame(w=16))

    def test_metadata_included(self):
        a = make_frame()
        b = make_frame()
        b.metadata["exercise"] = "squat"
        assert content_digest(a) != content_digest(b)

    def test_scalar_type_tags_distinct(self):
        """1, 1.0 are equal-but-distinct reprs; True gets its own tag."""
        assert content_digest(1) != content_digest(True)
        assert content_digest(0) != content_digest(None)
        assert content_digest("1") != content_digest(1)

    def test_container_shape_matters(self):
        assert content_digest([1, 2]) != content_digest((1, 2))
        assert content_digest({"a": 1}) != content_digest({"a": 2})
        # dict key order is canonicalized
        assert content_digest({"a": 1, "b": 2}) == content_digest({"b": 2, "a": 1})

    def test_arrays_digest_by_value(self):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert content_digest(a) == content_digest(a.copy())
        assert content_digest(a) != content_digest(a.astype(np.float32))

    def test_arbitrary_object_is_undigestable(self):
        assert content_digest(object()) is None
        assert content_digest({"frame": object()}) is None  # poisons the payload

    def test_ref_without_resolver_is_undigestable(self):
        assert content_digest({"frame": FrameRef("phone", 3)}) is None

    def test_ref_resolves_through_resolver(self):
        digests = {3: "aaaa", 4: "aaaa", 5: "bbbb"}
        resolver = lambda ref: digests.get(ref.ref_id)
        same_a = content_digest({"frame": FrameRef("phone", 3)}, resolve_ref=resolver)
        same_b = content_digest({"frame": FrameRef("phone", 4)}, resolve_ref=resolver)
        other = content_digest({"frame": FrameRef("phone", 5)}, resolve_ref=resolver)
        assert same_a == same_b  # key is stable across ref ids
        assert same_a != other
        assert content_digest(
            {"frame": FrameRef("phone", 9)}, resolve_ref=resolver
        ) is None  # resolver returning None poisons the payload

    def test_encoded_frame_quality_matters(self):
        frame = make_frame()
        q80 = encode_frame(frame, quality=80)
        q40 = encode_frame(frame, quality=40)
        assert content_digest(q80) is not None
        assert content_digest(q80) != content_digest(q40)

    def test_repeated_encodes_collide(self):
        """The remote-path cache key: same frame encoded twice hashes equal."""
        a = encode_frame(make_frame(frame_id=1), quality=80)
        b = encode_frame(make_frame(frame_id=2), quality=80)
        assert content_digest(a) == content_digest(b)
