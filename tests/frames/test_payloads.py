"""Unit and property tests for payload boundary transformations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frames import FrameStore, SyntheticCamera, VideoFrame
from repro.frames.codec import EncodedFrame
from repro.frames.payloads import (
    add_refs,
    collect_leaves,
    decode_frames_from_wire,
    decode_frames_inline,
    encode_refs_for_wire,
    frame_refs_in,
    map_leaves,
    release_refs,
    resolve_refs,
)
from repro.motion import Squat


def frame(frame_id=1):
    return SyntheticCamera("phone", Squat()).capture(frame_id, 0.0)


class TestMapLeaves:
    def test_rebuilds_nested_containers(self):
        payload = {"a": [1, (2, {"b": 3})], "c": None}
        doubled = map_leaves(payload, lambda v: v * 2 if isinstance(v, int) else v)
        assert doubled == {"a": [2, (4, {"b": 6})], "c": None}

    def test_preserves_container_types(self):
        out = map_leaves({"t": (1, 2)}, lambda v: v)
        assert isinstance(out["t"], tuple)

    def test_collect_leaves_in_order(self):
        payload = {"a": 1, "b": [2, 3], "c": {"d": 4}}
        assert collect_leaves(payload, lambda v: isinstance(v, int)) == [1, 2, 3, 4]


class TestShipAndLand:
    def test_ship_encodes_and_moves_ownership(self):
        store = FrameStore("phone")
        ref = store.put(frame())
        payload = {"frame": ref, "meta": 7}
        wire, cost, shipped = encode_refs_for_wire(payload, store)
        assert shipped == 1
        assert cost > 0
        assert isinstance(wire["frame"], EncodedFrame)
        assert wire["meta"] == 7
        assert len(store) == 0  # hold released: ownership moved

    def test_ship_borrowing_keeps_hold(self):
        store = FrameStore("phone")
        ref = store.put(frame())
        _, _, shipped = encode_refs_for_wire({"frame": ref}, store, release=False)
        assert shipped == 1
        assert store.contains(ref)

    def test_non_frame_objects_ship_as_plain_values(self):
        store = FrameStore("phone")
        ref = store.put({"not": "a frame"})
        wire, cost, shipped = encode_refs_for_wire({"x": ref}, store)
        assert wire["x"] == {"not": "a frame"}
        assert shipped == 0
        assert cost == 0

    def test_land_restores_local_refs(self):
        phone = FrameStore("phone")
        desktop = FrameStore("desktop")
        ref = phone.put(frame(5))
        wire, _, _ = encode_refs_for_wire({"frame": ref}, phone)
        landed, cost, count = decode_frames_from_wire(wire, desktop)
        assert count == 1
        assert cost > 0
        new_ref = landed["frame"]
        assert new_ref.device == "desktop"
        assert desktop.get(new_ref).frame_id == 5

    def test_land_inline_yields_bare_frames(self):
        phone = FrameStore("phone")
        ref = phone.put(frame(9))
        wire, _, _ = encode_refs_for_wire({"frame": ref}, phone)
        landed, cost = decode_frames_inline(wire)
        assert isinstance(landed["frame"], VideoFrame)
        assert landed["frame"].frame_id == 9
        assert cost > 0

    def test_roundtrip_preserves_truth_annotation(self):
        phone = FrameStore("phone")
        desktop = FrameStore("desktop")
        original = frame()
        wire, _, _ = encode_refs_for_wire({"frame": phone.put(original)}, phone)
        landed, _, _ = decode_frames_from_wire(wire, desktop)
        arrived = desktop.get(landed["frame"])
        assert arrived.truth is not None
        assert arrived.metadata["activity"] == "squat"


class TestRefHelpers:
    def test_frame_refs_in_finds_nested(self):
        store = FrameStore("phone")
        refs = [store.put(frame(i)) for i in range(3)]
        payload = {"a": refs[0], "b": [refs[1], {"c": refs[2]}], "d": 1}
        assert frame_refs_in(payload) == refs

    def test_resolve_refs_borrows(self):
        store = FrameStore("phone")
        f = frame()
        ref = store.put(f)
        resolved = resolve_refs({"frame": ref}, store)
        assert resolved["frame"] is f
        assert store.contains(ref)

    def test_add_and_release_balance(self):
        store = FrameStore("phone")
        ref = store.put(frame())
        payload = {"frame": ref}
        assert add_refs(payload, store) == 1
        assert store.refcount(ref) == 2
        assert release_refs(payload, store) == 1
        assert store.refcount(ref) == 1

    def test_release_ignores_foreign_refs(self):
        phone = FrameStore("phone")
        desktop = FrameStore("desktop")
        ref = phone.put(frame())
        assert release_refs({"frame": ref}, desktop) == 0
        assert phone.contains(ref)


payload_shapes = st.recursive(
    st.none() | st.integers(-100, 100) | st.text(max_size=8)
    | st.just("FRAME_SLOT"),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(min_size=1, max_size=6), children, max_size=4),
    max_leaves=12,
)


@given(shape=payload_shapes)
@settings(max_examples=80)
def test_property_ship_land_roundtrip_balances_stores(shape):
    """For any payload shape: shipping from one store and landing on another
    moves every frame exactly once and leaks nothing."""
    phone = FrameStore("phone", capacity=1000)
    desktop = FrameStore("desktop", capacity=1000)
    counter = {"n": 0}

    def fill(leaf):
        if leaf == "FRAME_SLOT":
            counter["n"] += 1
            return phone.put(frame(counter["n"]))
        return leaf

    payload = map_leaves(shape, fill)
    n_frames = counter["n"]
    assert len(phone) == n_frames

    wire, _, shipped = encode_refs_for_wire(payload, phone)
    assert shipped == n_frames
    assert len(phone) == 0

    landed, _, count = decode_frames_from_wire(wire, desktop)
    assert count == n_frames
    assert len(desktop) == n_frames

    # every landed ref resolves to a distinct frame id
    ids = {desktop.get(r).frame_id for r in frame_refs_in(landed)}
    assert len(ids) == n_frames


@given(shape=payload_shapes, extra_holds=st.integers(0, 3))
@settings(max_examples=50)
def test_property_add_release_never_corrupts(shape, extra_holds):
    """add_refs/release_refs cycles leave refcounts exactly balanced."""
    store = FrameStore("dev", capacity=1000)
    counter = {"n": 0}

    def fill(leaf):
        if leaf == "FRAME_SLOT":
            counter["n"] += 1
            return store.put(frame(counter["n"]))
        return leaf

    payload = map_leaves(shape, fill)
    for _ in range(extra_holds):
        add_refs(payload, store)
    for _ in range(extra_holds):
        release_refs(payload, store)
    for ref in frame_refs_in(payload):
        assert store.refcount(ref) == 1
