"""Integration tests for pipeline deployment through the facade."""

import pytest

from repro.core import VideoPipe
from repro.errors import ConfigError, DeploymentError
from repro.pipeline import ModuleConfig, PipelineConfig
from repro.runtime import FunctionModule, Module, register_module
from repro.services import FunctionService


@register_module("./DeployTestProducer.js")
class Producer(Module):
    def __init__(self, count=3):
        self.count = count

    def init(self, ctx):
        for i in range(self.count):
            ctx._runtime.kernel.schedule(0.01 * (i + 1),
                                         lambda i=i: ctx.call_next({"n": i}))

    def event_received(self, ctx, event):
        pass


@register_module("./DeployTestConsumer.js")
class Consumer(Module):
    def __init__(self):
        self.seen = []

    def event_received(self, ctx, event):
        def flow():
            result = yield ctx.call_service("echo", event.payload)
            self.seen.append(result)

        return flow()


@pytest.fixture
def home():
    home = VideoPipe.paper_testbed(seed=0)
    home.deploy_service(FunctionService("echo", lambda p, c: p,
                                        default_port=7200), "desktop")
    return home


def two_stage_config():
    return PipelineConfig(
        name="deploytest",
        modules=[
            ModuleConfig(name="producer", include="./DeployTestProducer.js",
                         next_modules=["consumer"], device="phone",
                         endpoint="bind#tcp://*:6100"),
            ModuleConfig(name="consumer", include="./DeployTestConsumer.js",
                         services=["echo"], endpoint="bind#tcp://*:6101"),
        ],
    )


class TestDeploy:
    def test_colocated_deploy_and_run(self, home):
        pipeline = home.deploy_pipeline(two_stage_config(),
                                        default_device="phone")
        assert pipeline.device_of("producer") == "phone"
        assert pipeline.device_of("consumer") == "desktop"  # follows echo
        home.run(until=1.0)
        consumer = pipeline.module_instance("consumer")
        assert consumer.seen == [{"n": 0}, {"n": 1}, {"n": 2}]

    def test_describe_structure(self, home):
        pipeline = home.deploy_pipeline(two_stage_config(),
                                        default_device="phone")
        home.run(until=1.0)
        info = pipeline.describe()
        assert info["pipeline"] == "deploytest"
        assert info["modules"]["consumer"]["events"] == 3
        assert info["modules"]["producer"]["next"] == ["consumer"]

    def test_module_instances_override_registry(self, home):
        seen = []
        override = FunctionModule(lambda ctx, e: seen.append(e.payload))
        pipeline = home.deploy_pipeline(
            two_stage_config(),
            default_device="phone",
            module_instances={"consumer": override},
        )
        home.run(until=1.0)
        assert len(seen) == 3
        assert pipeline.module_instance("consumer") is override

    def test_port_zero_assigns_ephemeral(self, home):
        config = two_stage_config()
        config.modules[1].endpoint = "bind#tcp://*:0"
        pipeline = home.deploy_pipeline(config, default_device="phone")
        assert pipeline.wiring.address_of("consumer").port >= 49152

    def test_explicit_host_endpoint_must_match_placement(self, home):
        config = two_stage_config()
        config.modules[1].endpoint = "bind#tcp://tv:6101"
        with pytest.raises(DeploymentError, match="placement"):
            home.deploy_pipeline(config, default_device="phone")

    def test_invalid_dag_rejected_before_deploy(self, home):
        config = two_stage_config()
        config.modules[0].next_modules = ["ghost"]
        with pytest.raises(ConfigError):
            home.deploy_pipeline(config, default_device="phone")

    def test_failed_deploy_rolls_back(self, home):
        config = two_stage_config()
        config.modules[1].include = "./GhostModule.js"  # unknown include
        with pytest.raises(ConfigError):
            home.deploy_pipeline(config, default_device="phone")
        # the producer deployed first must have been rolled back
        assert home.device("phone").runtime.deployed_names() == []

    def test_stop_undeploys_all(self, home):
        pipeline = home.deploy_pipeline(two_stage_config(),
                                        default_device="phone")
        pipeline.stop()
        assert home.device("phone").runtime.deployed_names() == []
        assert home.device("desktop").runtime.deployed_names() == []
        pipeline.stop()  # idempotent

    def test_two_pipelines_coexist(self, home):
        home.deploy_pipeline(two_stage_config(), default_device="phone")
        second = two_stage_config()
        second.name = "deploytest2"
        for i, module in enumerate(second.modules):
            module.name += "_2"
            module.endpoint = f"bind#tcp://*:{6200 + i}"
        second.modules[0].next_modules = ["consumer_2"]
        second.source = "producer_2"
        home.deploy_pipeline(second, default_device="phone")
        home.run(until=1.0)
        assert len(home.device("desktop").runtime.deployed_names()) == 2
