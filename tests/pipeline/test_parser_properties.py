"""Property-based tests: configuration serialization roundtrips."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import config_from_dict, parse_pipeline_json

module_names = st.from_regex(r"[a-z][a-z0-9_]{0,15}", fullmatch=True)


@st.composite
def pipeline_dicts(draw):
    """Random structurally-plausible pipeline dicts (unique module names)."""
    names = sorted(draw(st.sets(module_names, min_size=1, max_size=6)))
    edges: dict[str, list[str]] = {name: [] for name in names}
    for i, name in enumerate(names):
        # edges point forward only, so the DAG property holds by construction
        later = names[i + 1:]
        if later:
            edges[name] = draw(st.lists(st.sampled_from(later), unique=True,
                                        max_size=len(later)))
    # guarantee reachability from the source: every later module gets an
    # incoming edge from some earlier one if it has none yet
    for i, name in enumerate(names[1:], start=1):
        if not any(name in edges[p] for p in names[:i]):
            predecessor = names[draw(st.integers(0, i - 1))]
            edges[predecessor].append(name)
    modules = []
    for i, name in enumerate(names):
        modules.append({
            "name": name,
            "include": f"./{name}.js",
            "services": draw(st.lists(module_names, max_size=3, unique=True)),
            "endpoint": f"bind#tcp://*:{6000 + i}",
            "next_modules": edges[name],
            "device": draw(st.none() | module_names),
            "params": {},
        })
    return {"name": draw(module_names), "source": names[0], "modules": modules}


@given(data=pipeline_dicts())
@settings(max_examples=80)
def test_dict_roundtrip_is_lossless(data):
    config = config_from_dict(data)
    assert config_from_dict(config.as_dict()).as_dict() == config.as_dict()


@given(data=pipeline_dicts())
@settings(max_examples=80)
def test_json_roundtrip_is_lossless(data):
    config = config_from_dict(data)
    clone = parse_pipeline_json(json.dumps(config.as_dict()))
    assert clone.as_dict() == config.as_dict()


@given(data=pipeline_dicts())
@settings(max_examples=50)
def test_generated_dags_validate(data):
    """Forward-edge construction guarantees validity: validate() agrees."""
    from repro.pipeline import validate

    config = config_from_dict(data)
    validate(config)


@given(data=pipeline_dicts())
@settings(max_examples=50)
def test_topological_order_respects_edges(data):
    from repro.pipeline import topological_order

    config = config_from_dict(data)
    order = {name: i for i, name in enumerate(topological_order(config))}
    for module in config.modules:
        for target in module.next_modules:
            assert order[module.name] < order[target]
