"""Unit tests for configuration model and the Listing-1 parser."""

import pytest

from repro.errors import ConfigError
from repro.pipeline import (
    ModuleConfig,
    PipelineConfig,
    config_from_dict,
    parse_pipeline_json,
    parse_pipeline_text,
)

#: The paper's Listing 1, nearly verbatim.
LISTING_1 = """
// An Example of DAG Configuration for a Pipeline
modules : [
    { name: pose_detector_module
      include ("./PoseDetectorModule.js")
      service: ['pose_detector']
      endpoint: ["bind#tcp://*:5861"]
      next_module: activity_detector_module }
    { name: activity_detector_module
      include ("./ActivityDetectorModule.js")
      service: ['activity_detector']
      endpoint: ["bind#tcp://*:5862"]
      next_module: [rep_counter_module,
                    display_module] }
    { name: rep_counter_module
      include ("./RepCounterModule.js")
      service: ['rep_counter']
      endpoint: ["bind#tcp://*:5863"]
      next_module: display_module }
    { name: display_module
      include ("./DisplayModule.js")
      service: ['display']
      endpoint: ["bind#tcp://*:5864"]
      next_module: [] }
]
"""


class TestListingParser:
    def test_parses_paper_listing(self):
        config = parse_pipeline_text(LISTING_1, name="fitness")
        assert config.name == "fitness"
        assert config.module_names() == [
            "pose_detector_module",
            "activity_detector_module",
            "rep_counter_module",
            "display_module",
        ]
        pose = config.module("pose_detector_module")
        assert pose.include == "./PoseDetectorModule.js"
        assert pose.services == ["pose_detector"]
        assert pose.endpoint == "bind#tcp://*:5861"
        assert pose.next_modules == ["activity_detector_module"]

    def test_multi_target_next_module(self):
        config = parse_pipeline_text(LISTING_1)
        activity = config.module("activity_detector_module")
        assert activity.next_modules == ["rep_counter_module", "display_module"]

    def test_comment_lines_skipped(self):
        config = parse_pipeline_text(LISTING_1)
        assert len(config.modules) == 4

    def test_requires_modules_header(self):
        with pytest.raises(ConfigError):
            parse_pipeline_text("pipelines: []")

    def test_unterminated_entry_rejected(self):
        with pytest.raises(ConfigError):
            parse_pipeline_text("modules : [ { name: x ")

    def test_unknown_key_rejected(self):
        text = """
        modules : [
            { name: m include ("./M.js") flavour: spicy }
        ]
        """
        with pytest.raises(ConfigError, match="flavour"):
            parse_pipeline_text(text)

    def test_multi_endpoint_rejected(self):
        text = """
        modules : [
            { name: m include ("./M.js")
              endpoint: ["bind#tcp://*:1", "bind#tcp://*:2"] }
        ]
        """
        with pytest.raises(ConfigError, match="single value"):
            parse_pipeline_text(text)


class TestJsonParser:
    def test_roundtrip_through_dict(self):
        config = parse_pipeline_text(LISTING_1, name="fitness")
        import json

        clone = parse_pipeline_json(json.dumps(config.as_dict()))
        assert clone.as_dict() == config.as_dict()

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigError):
            parse_pipeline_json("{not json")
        with pytest.raises(ConfigError):
            parse_pipeline_json("[1, 2]")


class TestConfigModel:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            PipelineConfig(
                name="p",
                modules=[
                    ModuleConfig(name="m", include="./M.js"),
                    ModuleConfig(name="m", include="./M.js"),
                ],
            )

    def test_module_lookup(self):
        config = PipelineConfig(
            name="p", modules=[ModuleConfig(name="m", include="./M.js")]
        )
        assert config.module("m").include == "./M.js"
        with pytest.raises(ConfigError):
            config.module("ghost")

    def test_source_defaults_to_first_module(self):
        config = PipelineConfig(
            name="p",
            modules=[
                ModuleConfig(name="a", include="./A.js"),
                ModuleConfig(name="b", include="./B.js"),
            ],
        )
        assert config.source_module == "a"

    def test_explicit_source_wins(self):
        config = PipelineConfig(
            name="p",
            modules=[ModuleConfig(name="a", include="./A.js")],
            source="a",
        )
        assert config.source_module == "a"

    def test_declared_services_deduplicated(self):
        config = PipelineConfig(
            name="p",
            modules=[
                ModuleConfig(name="a", include="./A.js", services=["pose", "disp"]),
                ModuleConfig(name="b", include="./B.js", services=["pose"]),
            ],
        )
        assert config.declared_services() == ["disp", "pose"]

    def test_config_from_dict_validates_keys(self):
        with pytest.raises(ConfigError, match="unknown module config keys"):
            config_from_dict(
                {"name": "p", "modules": [{"name": "m", "include": "./M.js",
                                           "color": "red"}]}
            )

    def test_config_from_dict_needs_name(self):
        with pytest.raises(ConfigError):
            config_from_dict({"modules": []})

    def test_scalar_next_module_normalized(self):
        config = config_from_dict(
            {"name": "p", "modules": [
                {"name": "a", "include": "./A.js", "next_module": "b"},
                {"name": "b", "include": "./B.js"},
            ]}
        )
        assert config.module("a").next_modules == ["b"]
