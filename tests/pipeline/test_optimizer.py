"""The cost model, the search, and the online re-placement loop.

The recurring fixture is a home built to trap the co-located heuristic: a
service replicated on a slow device (``alpha``) and a fast one (``zeta``).
The heuristic tie-breaks alphabetically onto ``alpha``; anything that
actually models cost must land on ``zeta``.
"""

from __future__ import annotations

import pytest

from repro.core import VideoPipe
from repro.devices.spec import DeviceSpec
from repro.fleet.workload import FleetSinkModule, FleetStageModule  # noqa: F401  (registers modules)
from repro.pipeline import (
    COLOCATED,
    OPTIMIZED,
    CostModel,
    OptimizerConfig,
    observed_module_seconds,
    plan_optimized,
)
from repro.pipeline.config import ModuleConfig, PipelineConfig
from repro.services.base import FunctionService

HEAVY_COST_S = 0.05


def _trap_home(seed: int = 5) -> VideoPipe:
    home = VideoPipe(seed=seed)
    home.add_device("phone")
    home.add_device(DeviceSpec(name="alpha", kind="laptop", cpu_factor=6.0,
                               cores=2, memory_mb=2048,
                               supports_containers=True))
    home.add_device(DeviceSpec(name="zeta", kind="desktop", cpu_factor=0.8,
                               cores=8, memory_mb=16384,
                               supports_containers=True))
    for device, port in (("alpha", 7920), ("zeta", 7921)):
        home.deploy_service(
            FunctionService("heavy", lambda p, c: {"done": True},
                            reference_cost_s=HEAVY_COST_S),
            device, port=port,
        )
    return home


def _trap_config(fps: float = 8.0, duration_s: float = 3.0) -> PipelineConfig:
    return PipelineConfig(name="trap", modules=[
        ModuleConfig(name="camera", include="./VideoStreamingModule.js",
                     device="phone", next_modules=["stage"],
                     params={"fps": fps, "duration_s": duration_s,
                             "credit_timeout_s": 1.0}),
        ModuleConfig(name="stage", include="./FleetStageModule.js",
                     services=["heavy"], next_modules=["sink"],
                     params={"service": "heavy", "stage": "stage"}),
        ModuleConfig(name="sink", include="./FleetSinkModule.js"),
    ])


# -- CostModel ------------------------------------------------------------------

def test_search_beats_heuristic_on_replica_speed():
    home = _trap_home()
    config = _trap_config()
    heuristic = home.plan(config, strategy=COLOCATED, default_device="phone")
    assert heuristic.assignments["stage"] == "alpha"  # the alphabetical trap
    optimized = plan_optimized(config, home.devices, home.registry,
                               home.topology, "phone")
    assert optimized.strategy == OPTIMIZED
    assert optimized.assignments["stage"] == "zeta"
    model = CostModel(config, home.devices, home.registry, home.topology)
    assert (model.score(optimized.assignments).total
            < model.score(heuristic.assignments).total)


def test_local_search_finds_the_same_winner():
    """Force the local-search path (budget of 1 candidate) and check it
    reaches the exhaustive answer from its colocated/single-host/random
    starts."""
    home = _trap_home()
    config = _trap_config()
    plan = plan_optimized(
        config, home.devices, home.registry, home.topology,
        "phone", optimizer=OptimizerConfig(max_candidates=1, restarts=2),
    )
    assert plan.assignments["stage"] == "zeta"


def test_local_search_deterministic_under_seed():
    home = _trap_home()
    config = _trap_config()
    plans = [
        plan_optimized(
            config, home.devices, home.registry, home.topology, "phone",
            optimizer=OptimizerConfig(max_candidates=1, restarts=3, seed=9),
        ).assignments
        for _ in range(2)
    ]
    assert plans[0] == plans[1]


def test_capacity_penalty_rises_with_fps():
    home = _trap_home()
    config = _trap_config()
    assignments = {"camera": "phone", "stage": "alpha", "sink": "alpha"}
    calm = CostModel(config, home.devices, home.registry, home.topology,
                     optimizer=OptimizerConfig(fps=1.0))
    # alpha computes the heavy call at 6 x 0.05 s = 0.3 s/frame on 2 cores:
    # fine at 1 fps, far past saturation at 30 fps
    assert calm.capacity_penalty(assignments) == 0.0
    hot = CostModel(config, home.devices, home.registry, home.topology,
                    optimizer=OptimizerConfig(fps=30.0))
    assert hot.capacity_penalty(assignments) > 0.0
    assert hot.score(assignments).total > calm.score(assignments).total


def test_memory_penalty_on_small_devices():
    home = _trap_home()
    config = _trap_config()
    crowded = {"camera": "phone", "stage": "phone", "sink": "phone"}
    tight = CostModel(
        config, home.devices, home.registry, home.topology,
        optimizer=OptimizerConfig(module_footprint_mb=100_000),
    )
    assert tight.memory_penalty(crowded) > 0.0
    roomy = CostModel(config, home.devices, home.registry, home.topology)
    assert roomy.memory_penalty(crowded) == 0.0


def test_calibration_scales_and_clamps():
    home = _trap_home()
    config = _trap_config()
    base = CostModel(config, home.devices, home.registry, home.topology)
    stage = config.module("stage")
    modeled = base.module_cost(stage, "alpha")
    assert base.calibration("stage") == 1.0

    hot = CostModel(config, home.devices, home.registry, home.topology,
                    observed_module_s={"stage": (modeled * 2.0, "alpha")})
    assert hot.calibration("stage") == pytest.approx(2.0)
    assert hot.module_cost(stage, "alpha") == pytest.approx(modeled * 2.0)
    # the ratio applies on every candidate device, not just the measured one
    assert hot.module_cost(stage, "zeta") == pytest.approx(
        base.module_cost(stage, "zeta") * 2.0)

    wild = CostModel(config, home.devices, home.registry, home.topology,
                     observed_module_s={"stage": (modeled * 100.0, "alpha")})
    assert wild.calibration("stage") == 4.0  # clamped
    unknown_device = CostModel(
        config, home.devices, home.registry, home.topology,
        observed_module_s={"stage": (modeled * 2.0, "nas")})
    assert unknown_device.calibration("stage") == 1.0


def test_graceful_fallback_keeps_colocated_plan():
    """When co-location is already optimal (the paper testbed shape), the
    search returns the actual colocated plan object — provenance intact."""
    home = VideoPipe(seed=6)
    home.add_device("phone")
    home.add_device("desktop")
    home.deploy_service(
        FunctionService("heavy", lambda p, c: {}, reference_cost_s=HEAVY_COST_S),
        "desktop",
    )
    config = _trap_config()
    plan = plan_optimized(config, home.devices, home.registry,
                          home.topology, "phone")
    assert plan.strategy == COLOCATED
    assert plan.assignments["stage"] == "desktop"


# -- observed_module_seconds ----------------------------------------------------

def _run_trap(tracing: bool) -> tuple[VideoPipe, "object"]:
    home = _trap_home()
    if tracing:
        home.enable_tracing()
    pipeline = home.deploy_pipeline(_trap_config(duration_s=1.5),
                                    default_device="phone")
    home.run()
    return home, pipeline


def test_observed_module_seconds_from_metrics():
    home, pipeline = _run_trap(tracing=False)
    observed = observed_module_seconds(pipeline)
    # the stage records a metrics stage named after the module
    assert "stage" in observed
    assert observed["stage"] > 0


def test_observed_module_seconds_from_tracer():
    home, pipeline = _run_trap(tracing=True)
    observed = observed_module_seconds(pipeline, home.tracer)
    assert set(observed) and all(v >= 0 for v in observed.values())
    assert "stage" in observed


# -- OnlineOptimizer ------------------------------------------------------------

def test_online_optimizer_migrates_off_the_slow_replica():
    home = _trap_home()
    optimizer = home.enable_optimizer(OptimizerConfig(
        fps=8.0, replan_interval_s=0.5, replan_threshold_frac=0.05,
    ))
    pipeline = home.deploy_pipeline(
        _trap_config(fps=8.0, duration_s=4.0),
        strategy=COLOCATED, default_device="phone",
    )
    assert pipeline.placement.assignments["stage"] == "alpha"
    home.run(until=5.5)
    optimizer.stop()
    home.run()

    assert optimizer.events, "expected at least one replan"
    event = optimizer.events[0]
    assert event.pipeline == "trap"
    assert event.moves.get("stage") == ("alpha", "zeta")
    assert event.predicted_after_s < event.predicted_before_s
    assert pipeline.placement.assignments["stage"] == "zeta"
    assert pipeline.metrics.counter("replans") >= 1
    assert pipeline.metrics.counter("migrations") >= 1
    # the stream survived the move with exact accounting: every admitted
    # frame settled as completed or dropped (frames_dropped also counts
    # the source's pre-admission credit drops — the slow replica saturates
    # at 8 fps — so the counters can over-cover frames_entered)
    metrics = pipeline.metrics
    assert metrics.counter("frames_completed") > 0
    assert metrics.frames_in_flight == 0
    assert (metrics.counter("frames_entered")
            <= metrics.counter("frames_completed")
            + metrics.counter("frames_dropped"))
    sink = pipeline.module_instance("sink")
    assert sink.frame_ids == sorted(set(sink.frame_ids))


def test_online_optimizer_respects_hysteresis():
    """With the threshold above the achievable gain, nothing moves."""
    home = _trap_home()
    optimizer = home.enable_optimizer(OptimizerConfig(
        fps=8.0, replan_interval_s=0.5, replan_threshold_frac=0.99,
    ))
    pipeline = home.deploy_pipeline(
        _trap_config(fps=8.0, duration_s=3.0),
        strategy=COLOCATED, default_device="phone",
    )
    home.run(until=4.5)
    optimizer.stop()
    home.run()
    assert optimizer.events == []
    assert pipeline.placement.assignments["stage"] == "alpha"
    assert pipeline.metrics.counter("migrations") == 0


def test_enable_optimizer_is_idempotent_and_watches_existing():
    home = _trap_home()
    pipeline = home.deploy_pipeline(_trap_config(duration_s=1.0),
                                    default_device="phone")
    first = home.enable_optimizer()
    second = home.enable_optimizer()
    assert first is second
    assert "trap" in first._pipelines
    assert first._pipelines["trap"] is pipeline
