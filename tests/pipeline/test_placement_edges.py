"""Error paths and degenerate homes for placement and the optimizer."""

from __future__ import annotations

import pytest

from repro.core import VideoPipe
from repro.devices.catalog import make_spec
from repro.errors import ConfigError, PlacementError
from repro.pipeline import OPTIMIZED, OptimizerConfig, plan_optimized
from repro.pipeline.config import ModuleConfig, PipelineConfig
from repro.pipeline.placement import PlacementPlan, plan_colocated
from repro.services.base import FunctionService


def _config(pins: dict[str, str] | None = None,
            services: dict[str, list[str]] | None = None) -> PipelineConfig:
    pins = pins or {}
    services = services or {}
    return PipelineConfig(name="edge", modules=[
        ModuleConfig(name="a", include="./FleetStageModule.js",
                     next_modules=["b"], device=pins.get("a"),
                     services=services.get("a", [])),
        ModuleConfig(name="b", include="./FleetSinkModule.js",
                     device=pins.get("b"), services=services.get("b", [])),
    ])


@pytest.fixture
def home():
    home = VideoPipe(seed=3)
    home.add_device("phone")
    home.add_device("desktop")
    return home


# -- _check_device / device_of --------------------------------------------------

def test_unknown_default_device_message(home):
    with pytest.raises(PlacementError) as err:
        plan_colocated(_config(), home.devices, home.registry, "nas")
    assert "default device: device 'nas' is not in the home" in str(err.value)
    assert "'desktop'" in str(err.value) and "'phone'" in str(err.value)


def test_unknown_pin_message(home):
    with pytest.raises(PlacementError) as err:
        plan_colocated(_config(pins={"b": "toaster"}),
                       home.devices, home.registry, "phone")
    assert "module 'b' pin: device 'toaster' is not in the home" in str(err.value)


def test_device_of_unplaced_module_raises():
    plan = PlacementPlan(pipeline="edge", strategy="colocated",
                         assignments={"a": "phone"})
    assert plan.device_of("a") == "phone"
    with pytest.raises(PlacementError) as err:
        plan.device_of("ghost")
    assert "plan for 'edge' does not place module 'ghost'" in str(err.value)


# -- plan_optimized degenerate homes -------------------------------------------

def test_optimized_single_device_home():
    home = VideoPipe(seed=3)
    home.add_device("phone")
    plan = plan_optimized(_config(), home.devices, home.registry,
                          home.topology, "phone")
    # one device, nothing to search: the co-located fallback, everything on it
    assert plan.strategy == "colocated"
    assert plan.assignments == {"a": "phone", "b": "phone"}


def test_optimized_service_hosted_nowhere(home):
    with pytest.raises(PlacementError) as err:
        plan_optimized(_config(services={"a": ["ghost_svc"]}),
                       home.devices, home.registry, home.topology, "phone")
    assert ("module 'a' needs service 'ghost_svc', which is hosted nowhere"
            in str(err.value))


def test_optimized_no_container_capable_device():
    """A home of sensors only: container services cannot exist, so any
    config needing one is rejected, while a service-free pipeline still
    places (onto the only hardware there is)."""
    home = VideoPipe(seed=3)
    home.add_device("watch")
    home.add_device(make_spec("watch", "watch2"))
    assert not any(d.spec.supports_containers for d in home.devices.values())
    with pytest.raises(PlacementError):
        plan_optimized(_config(services={"a": ["detector"]}),
                       home.devices, home.registry, home.topology, "watch")
    plan = plan_optimized(_config(), home.devices, home.registry,
                          home.topology, "watch")
    assert set(plan.assignments.values()) <= {"watch", "watch2"}


def test_optimized_unknown_default_and_pin(home):
    with pytest.raises(PlacementError):
        plan_optimized(_config(), home.devices, home.registry,
                       home.topology, "nas")
    with pytest.raises(PlacementError):
        plan_optimized(_config(pins={"a": "nas"}), home.devices,
                       home.registry, home.topology, "phone")


def test_optimized_respects_pins(home):
    home.deploy_service(
        FunctionService("detector", lambda p, c: {}, reference_cost_s=0.01),
        "desktop",
    )
    plan = plan_optimized(
        _config(pins={"a": "phone", "b": "phone"},
                services={"a": ["detector"]}),
        home.devices, home.registry, home.topology, "phone",
    )
    assert plan.assignments == {"a": "phone", "b": "phone"}


# -- OptimizerConfig validation -------------------------------------------------

@pytest.mark.parametrize("bad", [
    {"edge_bytes": -1},
    {"fps": 0.0},
    {"fps": -2.0},
    {"capacity_weight_s": -0.1},
    {"memory_weight_s": -0.1},
    {"module_footprint_mb": -1},
    {"max_candidates": 0},
    {"restarts": -1},
    {"replan_interval_s": 0.0},
    {"replan_threshold_frac": -0.01},
    {"replan_threshold_frac": 1.0},
])
def test_optimizer_config_rejects(bad):
    with pytest.raises(ConfigError):
        OptimizerConfig(**bad)


def test_optimizer_config_defaults_are_valid():
    config = OptimizerConfig()
    assert config.fps > 0
    assert 0 <= config.replan_threshold_frac < 1


def test_videopipe_plan_unknown_strategy(home):
    with pytest.raises(ConfigError):
        home.plan(_config(), strategy="psychic")


def test_videopipe_plan_optimized_facade(home):
    plan = home.plan(_config(), strategy=OPTIMIZED, default_device="phone")
    assert set(plan.assignments) == {"a", "b"}
