"""Frozen placement inputs: every ``examples/`` home + its pipelines.

Reuses :data:`repro.audit.scenarios.EXAMPLE_SCENARIOS` — each scenario
builds the example's exact device/service topology and deploys its
pipeline(s) — then recomputes the three placement plans (co-located,
single-host, optimized) for every deployed pipeline's config. The golden
test freezes the resulting assignments; a placement-affecting change must
show up as a reviewed golden diff, never as silent drift.
"""

from __future__ import annotations

from repro.audit.scenarios import EXAMPLE_SCENARIOS
from repro.pipeline import COLOCATED, OPTIMIZED, SINGLE_HOST

#: Strategies frozen in the goldens. ``cost-optimized`` is excluded: its
#: latency model depends on live calibration inputs by design.
GOLDEN_STRATEGIES = (COLOCATED, SINGLE_HOST, OPTIMIZED)

#: The scenario seed. Matches the scenarios' cached model trainers so the
#: expensive training happens once per process across the whole suite.
SEED = 1

EXAMPLE_NAMES = tuple(
    filename.removesuffix(".py") for filename in EXAMPLE_SCENARIOS
)


def example_placements(example: str) -> dict:
    """All strategies' assignments for every pipeline of one example.

    Returns ``{pipeline: {strategy: {"strategy": ..., "assignments": ...}}}``
    — ``strategy`` is the *plan's* tag, so an ``optimized`` entry whose tag
    reads ``colocated`` records that the search fell back to the heuristic.
    """
    scenario = EXAMPLE_SCENARIOS[f"{example}.py"]
    home, _run_fn = scenario(seed=SEED)
    placements: dict[str, dict] = {}
    for pipeline in home.pipelines:
        per_strategy = {}
        for strategy in GOLDEN_STRATEGIES:
            plan = home.plan(pipeline.config, strategy=strategy)
            per_strategy[strategy] = {
                "strategy": plan.strategy,
                "assignments": dict(sorted(plan.assignments.items())),
            }
        placements[pipeline.name] = per_strategy
    return placements
