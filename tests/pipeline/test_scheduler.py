"""Unit tests for the cost-model scheduler (§7 future work)."""

import pytest

from repro.core import VideoPipe
from repro.errors import PlacementError
from repro.pipeline import (
    ModuleConfig,
    PipelineConfig,
    PlacementModel,
    plan_colocated,
    plan_cost_optimized,
)
from repro.services import FunctionService


def simple_config(services=None, pins=None):
    services = services or {}
    pins = pins or {}
    return PipelineConfig(
        name="sched",
        modules=[
            ModuleConfig(name="src", include="./src.js", next_modules=["work"],
                         device=pins.get("src"),
                         services=services.get("src", []),
                         endpoint="bind#tcp://*:6300"),
            ModuleConfig(name="work", include="./work.js", next_modules=["out"],
                         device=pins.get("work"),
                         services=services.get("work", []),
                         endpoint="bind#tcp://*:6301"),
            ModuleConfig(name="out", include="./out.js",
                         device=pins.get("out"),
                         services=services.get("out", []),
                         endpoint="bind#tcp://*:6302"),
        ],
    )


@pytest.fixture
def home():
    home = VideoPipe.paper_testbed(seed=0)
    return home


def deploy_pose_like(home, device, cost=0.050, port=7600):
    home.deploy_service(
        FunctionService("heavy", lambda p, c: p, reference_cost_s=cost,
                        default_port=port),
        device, native=True,
    )


class TestPlacementModel:
    def test_module_cost_scales_with_device_speed(self, home):
        deploy_pose_like(home, "desktop")
        config = simple_config(services={"work": ["heavy"]})
        model = PlacementModel(config, home.devices, home.registry,
                               home.topology)
        fast = model.module_cost(config.module("work"), "desktop")
        slow_caller = model.module_cost(config.module("work"), "phone")
        # on the desktop the call is local; from the phone it pays the trip
        assert fast < slow_caller

    def test_transfer_cost_zero_on_device(self, home):
        config = simple_config()
        model = PlacementModel(config, home.devices, home.registry,
                               home.topology)
        assert model.transfer_cost("phone", "phone") < 0.001
        assert model.transfer_cost("phone", "desktop") > 0.005

    def test_evaluate_prefers_colocation(self, home):
        deploy_pose_like(home, "desktop")
        config = simple_config(services={"work": ["heavy"]},
                               pins={"src": "phone"})
        model = PlacementModel(config, home.devices, home.registry,
                               home.topology)
        colocated = model.evaluate(
            {"src": "phone", "work": "desktop", "out": "desktop"}
        )
        remote = model.evaluate(
            {"src": "phone", "work": "phone", "out": "phone"}
        )
        assert colocated.total < remote.total

    def test_unhosted_service_raises(self, home):
        config = simple_config(services={"work": ["ghost"]})
        model = PlacementModel(config, home.devices, home.registry,
                               home.topology)
        with pytest.raises(PlacementError):
            model.evaluate({"src": "phone", "work": "phone", "out": "phone"})


class TestPlanCostOptimized:
    def test_matches_colocation_on_the_paper_testbed(self, home):
        deploy_pose_like(home, "desktop")
        config = simple_config(services={"work": ["heavy"]},
                               pins={"src": "phone"})
        plan = plan_cost_optimized(config, home.devices, home.registry,
                                   home.topology, default_device="phone")
        assert plan.device_of("work") == "desktop"

    def test_picks_faster_replica_where_heuristic_goes_alphabetical(self):
        """'heavy' hosted on a slow laptop named 'athena' and a fast desktop
        named 'zeus': the heuristic picks alphabetically; the cost model
        picks the fast machine."""
        from repro.devices import DeviceSpec

        home = VideoPipe(seed=0)
        home.add_device(DeviceSpec(name="athena", kind="laptop", cpu_factor=4.0,
                                   cores=4, supports_containers=True))
        home.add_device(DeviceSpec(name="zeus", kind="desktop", cpu_factor=1.0,
                                   cores=8, supports_containers=True))
        home.add_device(DeviceSpec(name="cam", kind="phone", cpu_factor=2.5,
                                   cores=8))
        for device in ("athena", "zeus"):
            home.deploy_service(
                FunctionService("heavy", lambda p, c: p,
                                reference_cost_s=0.050, default_port=7600),
                device,
            )
        config = simple_config(services={"work": ["heavy"]},
                               pins={"src": "cam"})
        heuristic = plan_colocated(config, home.devices, home.registry, "cam")
        optimized = plan_cost_optimized(config, home.devices, home.registry,
                                        home.topology, default_device="cam")
        assert heuristic.device_of("work") == "athena"  # alphabetical
        assert optimized.device_of("work") == "zeus"  # 4x faster service

    def test_respects_pins(self, home):
        deploy_pose_like(home, "desktop")
        config = simple_config(services={"work": ["heavy"]},
                               pins={"src": "phone", "out": "tv"})
        plan = plan_cost_optimized(config, home.devices, home.registry,
                                   home.topology, default_device="phone")
        assert plan.device_of("src") == "phone"
        assert plan.device_of("out") == "tv"

    def test_never_worse_than_heuristic(self, home):
        deploy_pose_like(home, "desktop")
        config = simple_config(services={"work": ["heavy"]},
                               pins={"src": "phone"})
        model = PlacementModel(config, home.devices, home.registry,
                               home.topology)
        heuristic = plan_colocated(config, home.devices, home.registry, "phone")
        optimized = plan_cost_optimized(config, home.devices, home.registry,
                                        home.topology, default_device="phone")
        assert (model.evaluate(optimized.assignments).total
                <= model.evaluate(heuristic.assignments).total + 1e-9)

    def test_large_space_falls_back_to_local_search(self, home):
        deploy_pose_like(home, "desktop")
        config = simple_config(services={"work": ["heavy"]},
                               pins={"src": "phone"})
        plan = plan_cost_optimized(config, home.devices, home.registry,
                                   home.topology, default_device="phone",
                                   max_combinations=1)
        # the refined plan still lands the worker next to its service
        assert plan.device_of("work") == "desktop"

    def test_unknown_default_device_rejected(self, home):
        with pytest.raises(PlacementError):
            plan_cost_optimized(simple_config(), home.devices, home.registry,
                                home.topology, default_device="toaster")

    def test_facade_strategy(self, home):
        deploy_pose_like(home, "desktop")
        config = simple_config(services={"work": ["heavy"]},
                               pins={"src": "phone"})
        plan = home.plan(config, strategy="cost-optimized",
                         default_device="phone")
        assert plan.strategy in ("cost-optimized", "colocated")
        assert plan.device_of("work") == "desktop"
