"""Unit tests for DAG validation."""

import pytest

from repro.errors import ConfigError
from repro.pipeline import (
    ModuleConfig,
    PipelineConfig,
    longest_path,
    sink_modules,
    topological_order,
    validate,
)


def chain(*names, extra_edges=None, endpoints=None):
    extra_edges = extra_edges or {}
    modules = []
    for i, name in enumerate(names):
        nexts = [names[i + 1]] if i + 1 < len(names) else []
        nexts += extra_edges.get(name, [])
        endpoint = (endpoints or {}).get(name, f"bind#tcp://*:{6000 + i}")
        modules.append(
            ModuleConfig(name=name, include=f"./{name}.js",
                         next_modules=nexts, endpoint=endpoint)
        )
    return PipelineConfig(name="p", modules=modules)


class TestValidate:
    def test_valid_chain_passes(self):
        graph = validate(chain("a", "b", "c"))
        assert set(graph.nodes) == {"a", "b", "c"}

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ConfigError, match="no modules"):
            validate(PipelineConfig(name="p"))

    def test_unknown_target_rejected(self):
        config = chain("a", "b", extra_edges={"b": ["ghost"]})
        with pytest.raises(ConfigError, match="unknown module 'ghost'"):
            validate(config)

    def test_cycle_rejected(self):
        config = chain("a", "b", "c", extra_edges={"c": ["a"]})
        with pytest.raises(ConfigError, match="cycle"):
            validate(config)

    def test_self_loop_rejected(self):
        config = chain("a", extra_edges={"a": ["a"]})
        with pytest.raises(ConfigError, match="cycle"):
            validate(config)

    def test_unreachable_module_rejected(self):
        config = PipelineConfig(
            name="p",
            modules=[
                ModuleConfig(name="a", include="./a.js", endpoint="bind#tcp://*:6000"),
                ModuleConfig(name="orphan", include="./o.js",
                             endpoint="bind#tcp://*:6001"),
            ],
        )
        with pytest.raises(ConfigError, match="unreachable"):
            validate(config)

    def test_port_collision_rejected(self):
        config = chain("a", "b", endpoints={
            "a": "bind#tcp://*:6000", "b": "bind#tcp://*:6000"
        })
        with pytest.raises(ConfigError, match="both bind port"):
            validate(config)

    def test_port_zero_never_collides(self):
        config = chain("a", "b", endpoints={
            "a": "bind#tcp://*:0", "b": "bind#tcp://*:0"
        })
        validate(config)

    def test_bad_endpoint_rejected(self):
        config = chain("a", endpoints={"a": "not-an-endpoint"})
        with pytest.raises(ConfigError, match="bad endpoint"):
            validate(config)

    def test_fan_out_and_merge_allowed(self):
        """The fitness DAG: a → {b, c}, b → c."""
        config = PipelineConfig(
            name="p",
            modules=[
                ModuleConfig(name="a", include="./a.js", next_modules=["b", "c"],
                             endpoint="bind#tcp://*:6000"),
                ModuleConfig(name="b", include="./b.js", next_modules=["c"],
                             endpoint="bind#tcp://*:6001"),
                ModuleConfig(name="c", include="./c.js",
                             endpoint="bind#tcp://*:6002"),
            ],
        )
        validate(config)


class TestGraphQueries:
    def test_topological_order(self):
        order = topological_order(chain("a", "b", "c"))
        assert order == ["a", "b", "c"]

    def test_sink_modules(self):
        config = PipelineConfig(
            name="p",
            modules=[
                ModuleConfig(name="a", include="./a.js", next_modules=["b", "c"],
                             endpoint="bind#tcp://*:6000"),
                ModuleConfig(name="b", include="./b.js",
                             endpoint="bind#tcp://*:6001"),
                ModuleConfig(name="c", include="./c.js",
                             endpoint="bind#tcp://*:6002"),
            ],
        )
        assert sink_modules(config) == ["b", "c"]

    def test_longest_path(self):
        assert longest_path(chain("a", "b", "c")) == ["a", "b", "c"]
