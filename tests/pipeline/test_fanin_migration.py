"""Regression tests: draining a fan-in module's mailbox on migrate.

A fan-in module (several upstream producers, one consumer — the scene
fusion DAG's shape) can hold *several* queued events for the same admitted
frame, one per producer, each event copy owning its own frame reference.
The old drain deduplicated per drain *site*: within one mailbox a frame
dropped once (right), but a frame fanned out across two modules — or
settled earlier through a surviving sibling branch — was dropped again at
the next site, over-counting ``frames_dropped`` and mis-settling frames a
sibling had already completed. The fix guards every drain's drop
accounting on ``MetricsCollector.frame_in_flight``: each event still
releases its own refs, but a frame leaves the pipeline exactly once.
"""

import pytest

from repro.audit import InvariantAuditor
from repro.core import VideoPipe
from repro.pipeline import ModuleConfig, PipelineConfig
from repro.runtime import Module, register_module
from repro.runtime.events import DATA, ModuleEvent


@register_module("./FanProducer.js")
class FanProducer(Module):
    def event_received(self, ctx, event):
        pass


@register_module("./FanSink.js")
class FanSink(Module):
    def event_received(self, ctx, event):
        pass


def fanin_config():
    """A diamond: one source fanning out to two producers that both feed
    one sink — the minimal fan-in DAG."""
    return PipelineConfig(
        name="fanin",
        modules=[
            ModuleConfig(name="capture", include="./FanProducer.js",
                         next_modules=["producer_a", "producer_b"],
                         device="phone", endpoint="bind#tcp://*:6599"),
            ModuleConfig(name="producer_a", include="./FanProducer.js",
                         next_modules=["sink"], device="phone",
                         endpoint="bind#tcp://*:6600"),
            ModuleConfig(name="producer_b", include="./FanProducer.js",
                         next_modules=["sink"], device="phone",
                         endpoint="bind#tcp://*:6601"),
            ModuleConfig(name="sink", include="./FanSink.js", device="phone",
                         endpoint="bind#tcp://*:6602"),
        ],
    )


def fanout_config():
    """One producer feeding two consumers — the same frame in two
    mailboxes on one device."""
    return PipelineConfig(
        name="fanout",
        modules=[
            ModuleConfig(name="producer", include="./FanProducer.js",
                         next_modules=["left", "right"], device="phone",
                         endpoint="bind#tcp://*:6610"),
            ModuleConfig(name="left", include="./FanSink.js", device="phone",
                         endpoint="bind#tcp://*:6611"),
            ModuleConfig(name="right", include="./FanSink.js", device="phone",
                         endpoint="bind#tcp://*:6612"),
        ],
    )


def _plant_fanin_events(pipeline, module_name, frame_id, copies):
    """Queue *copies* events for one admitted frame into *module_name*'s
    mailbox — one per upstream producer, each owning its own hold on the
    same stored frame (exactly what the source's fan-out hands a fan-in
    consumer)."""
    deployed = pipeline.module(module_name)
    ctx = deployed.ctx
    ref = ctx.store_frame(b"pixels")
    for _ in range(copies - 1):
        ctx.add_ref(ref)
    ctx.frame_entered(frame_id)
    for producer in range(copies):
        deployed.mailbox.put(ModuleEvent(
            kind=DATA,
            payload={"frame_id": frame_id, "ref": ref,
                     "producer": producer},
        ))
    return ref


@pytest.fixture
def home():
    return VideoPipe.paper_testbed(seed=0)


class TestFanInMigrateDrain:
    def test_two_events_one_frame_drop_once(self, home):
        """The regression: a fan-in mailbox holds two events for the same
        frame. The migrate drain must release both events' refs (the store
        empties) but record ONE drop — pre-fix the per-site dedup happened
        to get this case right while double-dropping across sites, and a
        naive per-event drop here counts two."""
        home.enable_audit()
        pipeline = home.deploy_pipeline(fanin_config(),
                                        default_device="phone")
        _plant_fanin_events(pipeline, "sink", 801, copies=2)
        assert pipeline.metrics.frames_in_flight == 1
        # one stored object held twice — only BOTH events' releases free it
        assert home.device("phone").frame_store.live_count == 1

        home.migrate_module(pipeline, "sink", "desktop")

        assert pipeline.metrics.counter("frames_dropped") == 1
        assert pipeline.metrics.frames_in_flight == 0
        assert home.device("phone").frame_store.live_count == 0
        assert home.check_invariants() == [], home.auditor.report()

    def test_fanout_across_modules_drops_once(self, home):
        """The same admitted frame queued in two sibling consumers'
        mailboxes: migrating both must settle the frame exactly once —
        pre-fix each module's drain kept its own seen-set and dropped it
        twice."""
        home.enable_audit()
        pipeline = home.deploy_pipeline(fanout_config(),
                                        default_device="phone")
        deployed_left = pipeline.module("left")
        deployed_right = pipeline.module("right")
        ctx = deployed_left.ctx
        ref = ctx.store_frame(b"pixels")
        ctx.add_ref(ref)
        ctx.frame_entered(802)
        for deployed in (deployed_left, deployed_right):
            deployed.mailbox.put(ModuleEvent(
                kind=DATA, payload={"frame_id": 802, "ref": ref},
            ))

        home.migrate_module(pipeline, "left", "desktop")
        home.migrate_module(pipeline, "right", "desktop")

        assert pipeline.metrics.counter("frames_dropped") == 1
        assert pipeline.metrics.frames_in_flight == 0
        assert home.device("phone").frame_store.live_count == 0
        assert home.check_invariants() == [], home.auditor.report()

    def test_sibling_completion_wins_over_drain(self, home):
        """A frame already completed through a surviving sibling branch
        must NOT be re-settled as dropped when a stale copy drains — first
        settlement wins."""
        home.enable_audit()
        pipeline = home.deploy_pipeline(fanout_config(),
                                        default_device="phone")
        deployed = pipeline.module("left")
        ctx = deployed.ctx
        ref = ctx.store_frame(b"pixels")
        ctx.frame_entered(803)
        deployed.mailbox.put(ModuleEvent(
            kind=DATA, payload={"frame_id": 803, "ref": ref},
        ))
        # the sibling ("right") finishes the frame first
        pipeline.module("right").ctx.frame_completed(803)

        home.migrate_module(pipeline, "left", "desktop")

        assert pipeline.metrics.counter("frames_completed") == 1
        assert pipeline.metrics.counter("frames_dropped") == 0
        assert pipeline.metrics.frames_in_flight == 0
        assert home.check_invariants() == [], home.auditor.report()


class TestFanInDrainMutation:
    def test_release_once_per_frame_leaks_refs(self, monkeypatch):
        """Re-introduce the bug the other way round: treat the drain as
        per-*frame* instead of per-*event*, releasing refs only for the
        first event that mentions a frame. The second fan-in event's hold
        leaks, and frame-ref conservation flags it at quiesce."""
        import repro.pipeline.deployer as deployer_mod

        # this test *plants* a violation; drop REPRO_AUDIT *before*
        # building the home (the env auditor attaches at construction) and
        # keep the auditor explicit so the sweep doesn't fail for finding
        # exactly that
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        home = VideoPipe.paper_testbed(seed=0)

        real_release_refs = deployer_mod.release_refs
        seen_frames: set[int] = set()

        def release_once_per_frame(payload, store, reason=None):
            frame_ids = deployer_mod.frame_ids_in(payload)
            if frame_ids and all(fid in seen_frames for fid in frame_ids):
                return 0  # the buggy dedup: this event's holds never drop
            seen_frames.update(frame_ids)
            if reason is None:
                return real_release_refs(payload, store)
            return real_release_refs(payload, store, reason=reason)

        monkeypatch.setattr(deployer_mod, "release_refs",
                            release_once_per_frame)
        auditor = InvariantAuditor(home.kernel)
        pipeline = home.deploy_pipeline(fanin_config(),
                                        default_device="phone")
        store = home.device("phone").frame_store
        auditor.watch_store(store)
        auditor.watch_metrics(pipeline.metrics)
        _plant_fanin_events(pipeline, "sink", 804, copies=2)

        home.migrate_module(pipeline, "sink", "desktop")

        assert store.live_count == 1  # the leaked hold
        violations = auditor.check_quiesce()
        assert any(v.invariant == "frame-ref-conservation"
                   for v in violations), auditor.report()
