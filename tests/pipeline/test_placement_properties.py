"""Property-based placement tests over seeded random pipelines.

Three properties, checked over hundreds of generated configurations
(``REPRO_FUZZ_N``, default 200):

* **round-trip** — ``as_dict`` → JSON → ``parse_pipeline_json`` /
  ``config_from_dict`` reproduces the configuration exactly;
* **totality** — every placement strategy either assigns *every* module to
  a device that exists in the home, or raises a typed
  :class:`~repro.errors.PlacementError` (never a bare ``KeyError``);
* **invariants** — deployed fuzz pipelines run to quiesce with zero
  auditor violations (frame-ref conservation, credit accounting, metrics
  cross-checks), under ``REPRO_AUDIT=1`` in the CI audit job and under an
  explicit ``enable_audit()`` here.

Everything is driven by ``random.Random`` with fixed seeds; the last test
pins down that determinism so a failure reproduces from its seed alone.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.errors import PlacementError
from repro.pipeline import (
    COLOCATED,
    COST_OPTIMIZED,
    OPTIMIZED,
    SINGLE_HOST,
    config_from_dict,
    parse_pipeline_json,
)

from .strategies import (
    random_deployable_config,
    random_home,
    random_pipeline_config,
)

FUZZ_N = int(os.environ.get("REPRO_FUZZ_N", "200"))
ALL_STRATEGIES = (COLOCATED, SINGLE_HOST, COST_OPTIMIZED, OPTIMIZED)


def test_parser_round_trip_fuzz():
    rng = random.Random(0xF002)
    for index in range(FUZZ_N):
        config = random_pipeline_config(rng, index)
        data = config.as_dict()
        # through json: what the parser sees is what a config file holds
        text = json.dumps(data)
        assert parse_pipeline_json(text).as_dict() == data, config.name
        assert config_from_dict(json.loads(text)).as_dict() == data, config.name


def test_placement_totality_fuzz():
    """Each strategy yields a total, in-home assignment or a PlacementError."""
    rng = random.Random(0xF003)
    home_rng = random.Random(0xF004)
    outcomes = {strategy: {"planned": 0, "rejected": 0}
                for strategy in ALL_STRATEGIES}
    for index in range(FUZZ_N):
        config = random_pipeline_config(rng, index)
        home, camera = random_home(home_rng, seed=index)
        module_names = {m.name for m in config.modules}
        for strategy in ALL_STRATEGIES:
            try:
                plan = home.plan(config, strategy=strategy,
                                 default_device=camera, host_device=camera)
            except PlacementError:
                outcomes[strategy]["rejected"] += 1
                continue
            outcomes[strategy]["planned"] += 1
            assert set(plan.assignments) == module_names, (strategy, index)
            for module, device in plan.assignments.items():
                assert device in home.devices, (strategy, index, module)
    # the generator must actually exercise both branches for every strategy
    for strategy, counts in outcomes.items():
        assert counts["planned"] > 0, (strategy, counts)
        assert counts["rejected"] > 0, (strategy, counts)


def test_optimized_is_at_least_as_strict_as_colocated():
    """`optimized` degrades to the co-located plan, so anything it places
    must be placeable by `colocated` too. The converse doesn't hold: the
    cost model must price every declared service call, so it rejects a
    *pinned* module whose service is hosted nowhere, which the co-located
    heuristic places without ever consulting services (pin wins)."""
    rng = random.Random(0xF005)
    home_rng = random.Random(0xF006)
    for index in range(FUZZ_N // 2):
        config = random_pipeline_config(rng, index)
        home, camera = random_home(home_rng, seed=index)
        verdicts = {}
        for strategy in (COLOCATED, OPTIMIZED):
            try:
                home.plan(config, strategy=strategy, default_device=camera)
                verdicts[strategy] = "placed"
            except PlacementError:
                verdicts[strategy] = "rejected"
        if verdicts[OPTIMIZED] == "placed":
            assert verdicts[COLOCATED] == "placed", (index, verdicts)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
def test_deployed_fuzz_pipelines_pass_invariants(strategy):
    rng = random.Random(0xF007)
    runs = 6
    for index in range(runs):
        home, camera = random_home(rng, seed=2000 + index)
        home.enable_audit()
        config = random_deployable_config(rng, camera, index=index)
        home.deploy_pipeline(
            config, strategy=strategy,
            default_device=camera, host_device=camera,
        )
        home.run()
        violations = home.check_invariants()
        assert violations == [], (strategy, index, [v.describe() for v in violations])
        metrics = home.pipelines[0].metrics
        assert metrics.counter("frames_completed") > 0, (strategy, index)


def test_generators_are_deterministic():
    first = [random_pipeline_config(random.Random(77), i).as_dict()
             for i in range(40)]
    second = [random_pipeline_config(random.Random(77), i).as_dict()
              for i in range(40)]
    # same seed, same stream — but each call consumes the RNG, so re-seed
    rng_a, rng_b = random.Random(78), random.Random(78)
    streamed_a = [random_pipeline_config(rng_a, i).as_dict() for i in range(40)]
    streamed_b = [random_pipeline_config(rng_b, i).as_dict() for i in range(40)]
    assert first == second
    assert streamed_a == streamed_b

    homes_a = [sorted(random_home(random.Random(79), seed=i)[0].devices)
               for i in range(10)]
    homes_b = [sorted(random_home(random.Random(79), seed=i)[0].devices)
               for i in range(10)]
    assert homes_a == homes_b
