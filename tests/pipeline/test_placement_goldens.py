"""Golden placement tests: frozen assignments for every example home.

Each ``tests/pipeline/goldens/<example>.json`` holds the co-located,
single-host and optimized assignments for that example's pipelines. Any
drift fails with a per-module diff; regenerate deliberately with::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/pipeline/test_placement_goldens.py

and review the golden diff like any other code change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from .example_homes import EXAMPLE_NAMES, example_placements

GOLDEN_DIR = Path(__file__).parent / "goldens"
UPDATE = os.environ.get("REPRO_UPDATE_GOLDENS") == "1"


def _diff(golden: dict, actual: dict) -> list[str]:
    """Human-readable per-module drift between two placement mappings."""
    lines: list[str] = []
    for pipeline in sorted(set(golden) | set(actual)):
        if pipeline not in golden:
            lines.append(f"  pipeline {pipeline!r}: new (not in golden)")
            continue
        if pipeline not in actual:
            lines.append(f"  pipeline {pipeline!r}: missing (in golden only)")
            continue
        g_strats, a_strats = golden[pipeline], actual[pipeline]
        for strategy in sorted(set(g_strats) | set(a_strats)):
            g = g_strats.get(strategy)
            a = a_strats.get(strategy)
            if g is None or a is None:
                lines.append(
                    f"  {pipeline}/{strategy}: "
                    + ("new strategy" if g is None else "strategy removed")
                )
                continue
            if g["strategy"] != a["strategy"]:
                lines.append(
                    f"  {pipeline}/{strategy}: plan tag"
                    f" {g['strategy']!r} -> {a['strategy']!r}"
                )
            g_assign, a_assign = g["assignments"], a["assignments"]
            for module in sorted(set(g_assign) | set(a_assign)):
                was = g_assign.get(module, "<unplaced>")
                now = a_assign.get(module, "<unplaced>")
                if was != now:
                    lines.append(
                        f"  {pipeline}/{strategy}: {module}: {was} -> {now}"
                    )
    return lines


@pytest.mark.parametrize("example", EXAMPLE_NAMES)
def test_example_placements_match_golden(example):
    actual = example_placements(example)
    path = GOLDEN_DIR / f"{example}.json"
    if UPDATE or not path.exists():
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        if not UPDATE:
            pytest.fail(
                f"golden {path.name} did not exist; wrote it — review and"
                " commit, then re-run"
            )
        return
    golden = json.loads(path.read_text(encoding="utf-8"))
    if golden != actual:
        drift = "\n".join(_diff(golden, actual))
        pytest.fail(
            f"placement drift vs {path.name} (set REPRO_UPDATE_GOLDENS=1 to"
            f" regenerate deliberately):\n{drift}"
        )


def test_goldens_cover_every_example():
    """A new example must get a golden (mirrors the determinism coverage
    test): stale or missing files fail here rather than silently skipping."""
    expected = {f"{name}.json" for name in EXAMPLE_NAMES}
    on_disk = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk == expected, (
        f"missing: {sorted(expected - on_disk)},"
        f" stale: {sorted(on_disk - expected)}"
    )
