"""Seeded random generators for property-based pipeline tests.

Plain ``random.Random`` only (no new deps): every generator takes the RNG
as its first argument, so a fixed seed reproduces the exact sequence of
pipelines/homes — the fuzz suite asserts that determinism explicitly.

Two flavours of pipeline come out of here:

* :func:`random_pipeline_config` — arbitrary DAGs (fan-out, random service
  mixes, occasional pins to unknown devices or services hosted nowhere).
  These exercise the parser round-trip and the *totality* property of the
  placement strategies: a total assignment or a typed ``PlacementError``,
  never a stray ``KeyError``.
* :func:`random_deployable_config` — linear camera → stages → sink chains
  built from the fleet workload modules, valid by construction against the
  home :func:`random_home` builds. These actually deploy and run, and must
  pass ``check_invariants()``.
"""

from __future__ import annotations

import random

from repro.core import VideoPipe
from repro.fleet.workload import install_home_services
from repro.pipeline.config import ModuleConfig, PipelineConfig
from repro.services.base import FunctionService

#: Service names arbitrary DAGs may declare; ``svc_ghost`` is never hosted
#: by :func:`random_home`, so declaring it must yield a PlacementError.
SERVICE_POOL = ("fleet_detector", "fleet_classifier", "fleet_alerter",
                "svc_ghost")

#: Devices arbitrary DAGs may pin to; "nas" never exists in a random home.
DEVICE_POOL = ("phone", "hub", "tv", "nas")

#: Includes for arbitrary (non-deployed) DAGs; placement never resolves
#: them, so they only need to be plausible strings.
INCLUDE_POOL = ("./VideoStreamingModule.js", "./FleetStageModule.js",
                "./FleetSinkModule.js")


def random_pipeline_config(
    rng: random.Random, index: int = 0, max_modules: int = 6
) -> PipelineConfig:
    """An arbitrary acyclic pipeline: random fan-out, service mixes, and
    sometimes-invalid pins. Edges only go from lower to higher module
    index (acyclic by construction) and every non-source module has at
    least one predecessor (reachable by construction)."""
    count = rng.randint(2, max_modules)
    next_modules: dict[int, list[int]] = {i: [] for i in range(count)}
    for target in range(1, count):
        next_modules[rng.randrange(target)].append(target)
        for source in range(target):
            if target not in next_modules[source] and rng.random() < 0.15:
                next_modules[source].append(target)
    modules = []
    for i in range(count):
        services: list[str] = []
        if i > 0 and rng.random() < 0.6:
            services = sorted(
                rng.sample(SERVICE_POOL, rng.randint(1, 2))
            )
        device = None
        if rng.random() < 0.25:
            device = rng.choice(DEVICE_POOL)
        modules.append(ModuleConfig(
            name=f"m{i}",
            include=rng.choice(INCLUDE_POOL),
            services=services,
            next_modules=[f"m{t}" for t in next_modules[i]],
            device=device,
            params={"knob": rng.randint(0, 9)} if rng.random() < 0.3 else {},
        ))
    return PipelineConfig(name=f"fuzz{index}", modules=modules)


def random_deployable_config(
    rng: random.Random,
    camera_device: str,
    index: int = 0,
    duration_s: float = 0.6,
) -> PipelineConfig:
    """A linear, valid-by-construction chain over the fleet workload
    modules: camera (pinned to the camera device) → 1–3 service stages →
    sink. Deployable against any home whose services
    :func:`random_home` installed."""
    stage_services = ["fleet_detector", "fleet_classifier", "fleet_alerter"]
    stage_count = rng.randint(1, 3)
    chosen = rng.sample(stage_services, stage_count)
    modules = [ModuleConfig(
        name="camera",
        include="./VideoStreamingModule.js",
        device=camera_device,
        next_modules=["stage0" if stage_count else "sink"],
        params={
            "fps": rng.choice([4.0, 8.0, 12.0]),
            "duration_s": duration_s,
            "credit_timeout_s": 1.0,
        },
    )]
    for position, service in enumerate(chosen):
        is_last = position == stage_count - 1
        modules.append(ModuleConfig(
            name=f"stage{position}",
            include="./FleetStageModule.js",
            services=[service],
            next_modules=["sink" if is_last else f"stage{position + 1}"],
            params={"service": service, "stage": f"stage{position}"},
        ))
    modules.append(ModuleConfig(name="sink", include="./FleetSinkModule.js"))
    return PipelineConfig(name=f"deploy{index}", modules=modules)


def random_home(rng: random.Random, seed: int = 0, kernel=None) -> tuple[VideoPipe, str]:
    """A home with 2–4 devices and the fleet services installed (plus a
    second detector replica on homes that roll one). Returns the home and
    its camera device name."""
    home = VideoPipe(seed=seed, kernel=kernel)
    home.add_device("phone")
    hub_kind = rng.choice(["desktop", "laptop", "tablet"])
    from repro.devices.catalog import make_spec

    home.add_device(make_spec(hub_kind, "hub"))
    if rng.random() < 0.5:
        home.add_device("tv")
    if rng.random() < 0.3:
        home.add_device("fridge")
    install_home_services(home, "hub", "phone")
    if rng.random() < 0.3 and "tv" not in home.devices:
        # a second, slower detector replica on another container device —
        # exactly the situation where search can beat the heuristic
        home.add_device(make_spec("tablet", "tablet"))
        home.deploy_service(
            FunctionService("fleet_detector", lambda p, c: {"objects": 1},
                            reference_cost_s=0.016),
            "tablet", port=7913,
        )
    return home, "phone"
