"""Unit tests for placement planning."""

import pytest

from repro.core import VideoPipe
from repro.errors import PlacementError
from repro.pipeline import (
    ModuleConfig,
    PipelineConfig,
    plan_colocated,
    plan_single_host,
)
from repro.services import FunctionService


@pytest.fixture
def home():
    home = VideoPipe.paper_testbed(seed=0)
    home.deploy_service(FunctionService("pose", lambda p, c: p, default_port=7100),
                        "desktop")
    home.deploy_service(FunctionService("disp", lambda p, c: p, default_port=7101),
                        "tv", native=True)
    return home


def config(pins=None, services=None):
    pins = pins or {}
    services = services or {}
    return PipelineConfig(
        name="p",
        modules=[
            ModuleConfig(name="src", include="./src.js", next_modules=["mid"],
                         device=pins.get("src"), services=services.get("src", []),
                         endpoint="bind#tcp://*:6000"),
            ModuleConfig(name="mid", include="./mid.js", next_modules=["sink"],
                         device=pins.get("mid"), services=services.get("mid", []),
                         endpoint="bind#tcp://*:6001"),
            ModuleConfig(name="sink", include="./sink.js",
                         device=pins.get("sink"), services=services.get("sink", []),
                         endpoint="bind#tcp://*:6002"),
        ],
    )


class TestColocated:
    def test_service_modules_follow_their_services(self, home):
        plan = plan_colocated(
            config(pins={"src": "phone"},
                   services={"mid": ["pose"], "sink": ["disp"]}),
            home.devices, home.registry, default_device="phone",
        )
        assert plan.device_of("src") == "phone"
        assert plan.device_of("mid") == "desktop"
        assert plan.device_of("sink") == "tv"

    def test_service_free_module_inherits_predecessor(self, home):
        plan = plan_colocated(
            config(pins={"src": "phone"}, services={"mid": ["pose"]}),
            home.devices, home.registry, default_device="phone",
        )
        assert plan.device_of("sink") == "desktop"  # follows mid

    def test_source_without_pin_uses_default(self, home):
        plan = plan_colocated(config(), home.devices, home.registry,
                              default_device="tv")
        assert plan.device_of("src") == "tv"

    def test_pin_overrides_services(self, home):
        plan = plan_colocated(
            config(pins={"mid": "phone"}, services={"mid": ["pose"]}),
            home.devices, home.registry, default_device="phone",
        )
        assert plan.device_of("mid") == "phone"

    def test_unhosted_service_rejected(self, home):
        with pytest.raises(PlacementError, match="hosted nowhere"):
            plan_colocated(config(services={"mid": ["ghost"]}),
                           home.devices, home.registry, "phone")

    def test_unknown_pinned_device_rejected(self, home):
        with pytest.raises(PlacementError, match="not in the home"):
            plan_colocated(config(pins={"src": "toaster"}),
                           home.devices, home.registry, "phone")

    def test_predecessor_preferred_among_candidates(self, home):
        # host 'pose' on two devices; mid should stick with src's device
        home.deploy_service(FunctionService("pose2", lambda p, c: p,
                                            default_port=7102), "desktop")
        home2 = VideoPipe.paper_testbed(seed=1)
        home2.add_device("laptop")
        home2.deploy_service(FunctionService("pose", lambda p, c: p,
                                             default_port=7100), "desktop")
        home2.deploy_service(FunctionService("pose", lambda p, c: p,
                                             default_port=7100), "laptop")
        plan = plan_colocated(
            config(pins={"src": "laptop"}, services={"mid": ["pose"]}),
            home2.devices, home2.registry, default_device="laptop",
        )
        assert plan.device_of("mid") == "laptop"

    def test_split_services_use_primary(self, home):
        # mid needs both pose (desktop) and disp (tv): no single host —
        # first-listed service wins
        plan = plan_colocated(
            config(services={"mid": ["pose", "disp"]}),
            home.devices, home.registry, "phone",
        )
        assert plan.device_of("mid") == "desktop"

    def test_describe_mentions_every_module(self, home):
        plan = plan_colocated(config(), home.devices, home.registry, "phone")
        text = plan.describe()
        for name in ("src", "mid", "sink"):
            assert name in text


class TestSingleHost:
    def test_everything_on_host(self, home):
        plan = plan_single_host(config(), home.devices, "phone")
        assert plan.devices_used() == ["phone"]

    def test_pins_still_respected(self, home):
        plan = plan_single_host(config(pins={"sink": "tv"}), home.devices, "phone")
        assert plan.device_of("sink") == "tv"
        assert plan.device_of("src") == "phone"

    def test_unknown_host_rejected(self, home):
        with pytest.raises(PlacementError):
            plan_single_host(config(), home.devices, "toaster")

    def test_plan_missing_module_raises(self, home):
        plan = plan_single_host(config(), home.devices, "phone")
        with pytest.raises(PlacementError):
            plan.device_of("ghost")
