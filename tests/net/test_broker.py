"""Unit tests for the broker-relayed transport baseline."""

import pytest

from repro.errors import NetworkError
from repro.net import (
    Address,
    BrokeredTransport,
    BrokerlessTransport,
    LinkSpec,
    Message,
    Topology,
)
from repro.sim import Kernel, RngStreams


def build_topo(kernel):
    topo = Topology(kernel, RngStreams(seed=1))
    topo.add_wifi("wifi", LinkSpec(latency_s=0.002, jitter_cv=0.0, bandwidth_bps=100e6))
    for device in ["phone", "desktop", "tv"]:
        topo.attach(device, "wifi")
    return topo


def send_one(kernel, transport, payload=b"x" * 1000):
    received = []
    transport.bind(Address("tv", 1), received.append)
    msg = Message(kind="data", dst=Address("tv", 1), payload=payload,
                  src=Address("phone", 1000))
    done = transport.send(msg)
    kernel.run()
    assert done.succeeded
    return received[0]


class TestBrokeredTransport:
    def test_requires_known_broker_device(self):
        kernel = Kernel()
        topo = build_topo(kernel)
        with pytest.raises(NetworkError):
            BrokeredTransport(kernel, topo, "kafka-box")

    def test_delivers_via_broker(self):
        kernel = Kernel()
        topo = build_topo(kernel)
        transport = BrokeredTransport(kernel, topo, "desktop")
        message = send_one(kernel, transport)
        assert message.payload == b"x" * 1000
        assert transport.relayed_count == 1

    def test_broker_path_is_slower_than_direct(self):
        kernel_a = Kernel()
        direct = BrokerlessTransport(kernel_a, build_topo(kernel_a))
        direct_latency = send_one(kernel_a, direct).latency

        kernel_b = Kernel()
        brokered = BrokeredTransport(kernel_b, build_topo(kernel_b), "desktop")
        broker_latency = send_one(kernel_b, brokered).latency

        assert broker_latency > direct_latency
        # broker pays the phone->desktop and desktop->tv legs plus processing
        assert broker_latency >= direct_latency + brokered.processing_s

    def test_broker_processing_queues_under_load(self):
        kernel = Kernel()
        topo = build_topo(kernel)
        transport = BrokeredTransport(kernel, topo, "desktop",
                                      processing_s=0.1, workers=1)
        received = []
        transport.bind(Address("tv", 1), received.append)
        for _ in range(3):
            transport.send(Message(kind="data", dst=Address("tv", 1),
                                   payload=b"x", src=Address("phone", 1000)))
        kernel.run()
        assert len(received) == 3
        # three messages serialized through one 100 ms broker worker
        assert kernel.now >= 0.3

    def test_broker_to_self_still_relays(self):
        kernel = Kernel()
        topo = build_topo(kernel)
        transport = BrokeredTransport(kernel, topo, "desktop")
        received = []
        transport.bind(Address("desktop", 1), received.append)
        transport.send(Message(kind="data", dst=Address("desktop", 1),
                               payload=b"x", src=Address("desktop", 2)))
        kernel.run()
        assert len(received) == 1
