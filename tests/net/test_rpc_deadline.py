"""Deadline-aware retry: retries never outlive the caller's budget.

``RpcClient.call(timeout=...)`` is per-attempt (each retry re-arms it);
``deadline_s`` is the overall budget for the whole call. A retry whose
backoff would start it at or past the deadline is abandoned, and each
attempt's own timer is capped at the budget remaining — so one logical
call can never stretch to ``attempts x timeout`` plus backoff.
"""

import pytest

from repro.net import (
    Address,
    BrokerlessTransport,
    LinkSpec,
    RetryPolicy,
    RpcClient,
    RpcServer,
    Topology,
)
from repro.sim import Kernel, RngStreams


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def net(kernel):
    topo = Topology(kernel, RngStreams(seed=1))
    topo.add_wifi("wifi", LinkSpec(latency_s=0.002, jitter_cv=0.0))
    for device in ["phone", "desktop"]:
        topo.attach(device, "wifi")
    return BrokerlessTransport(kernel, topo)


def slow_server(kernel, net, delay=10.0):
    RpcServer(kernel, net, Address("desktop", 6000),
              lambda p, m: kernel.timeout(delay, "slow"))


class TestDeadline:
    def test_backoff_past_deadline_abandons_the_retry(self, kernel, net):
        slow_server(kernel, net)
        client = RpcClient(
            kernel, net, "phone",
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.5, jitter=0.0))
        result = client.call(Address("desktop", 6000), None,
                             timeout=0.2, deadline_s=0.3)
        failed_at = {}
        result.wait(lambda value, exc: failed_at.setdefault("t", kernel.now))
        kernel.run()
        assert result.failed
        assert client.retries == 0
        assert client.retries_abandoned == 1
        # the call fails at the first attempt's timeout; the 0.5 s backoff
        # plus second attempt never runs
        assert failed_at["t"] == pytest.approx(0.2, abs=0.05)

    def test_attempt_timer_is_capped_at_remaining_budget(self, kernel, net):
        slow_server(kernel, net)
        client = RpcClient(kernel, net, "phone", retry=None)
        result = client.call(Address("desktop", 6000), None,
                             timeout=5.0, deadline_s=0.4)
        failed_at = {}
        result.wait(lambda value, exc: failed_at.setdefault("t", kernel.now))
        kernel.run()
        assert result.failed
        # the per-attempt timeout (5 s) was clipped to the 0.4 s budget
        assert client.timeouts == 1
        assert failed_at["t"] == pytest.approx(0.4, abs=0.05)

    def test_deadline_with_room_still_retries(self, kernel, net):
        calls = {"n": 0}

        def handler(payload, msg):
            calls["n"] += 1
            if calls["n"] == 1:
                return kernel.timeout(5.0, "slow")
            return "fast"

        RpcServer(kernel, net, Address("desktop", 6000), handler)
        client = RpcClient(
            kernel, net, "phone",
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.05, jitter=0.0))
        result = client.call(Address("desktop", 6000), None,
                             timeout=0.3, deadline_s=2.0)
        kernel.run()
        assert result.value == "fast"
        assert client.retries == 1
        assert client.retries_abandoned == 0

    def test_no_deadline_keeps_per_attempt_semantics(self, kernel, net):
        slow_server(kernel, net)
        client = RpcClient(
            kernel, net, "phone",
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.1, jitter=0.0))
        result = client.call(Address("desktop", 6000), None, timeout=0.3)
        kernel.run()
        assert result.failed
        assert client.retries == 1  # both attempts ran their full timer
        assert client.timeouts == 2
        assert client.retries_abandoned == 0


class TestServiceStubDeadline:
    def test_remote_stub_budgets_the_whole_call(self):
        """The stub passes its derived timeout as the overall deadline, so
        a retried service call cannot stretch to attempts x timeout."""
        from repro.core.videopipe import VideoPipe
        from repro.services import FunctionService
        from repro.services.stubs import RemoteServiceStub

        home = VideoPipe.paper_testbed(seed=3)
        service = FunctionService("echo", lambda p, c: p,
                                  reference_cost_s=0.001, default_port=6100)
        host = home.deploy_service(service, "desktop")
        stub = RemoteServiceStub(home.kernel, home.transport,
                                 home.device("phone"), host)
        kernel = home.kernel

        captured = {}
        original = stub._client.call

        def spy(address, payload, **kwargs):
            captured.update(kwargs)
            return original(address, payload, **kwargs)

        stub._client.call = spy
        stub.call({"ping": 1})
        kernel.run()
        assert captured["deadline_s"] == stub.timeout_s
        assert captured["timeout"] == stub.timeout_s
