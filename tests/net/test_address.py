"""Unit tests for endpoint parsing and addresses."""

import pytest

from repro.errors import AddressError
from repro.net import Address, parse_address, parse_endpoint


class TestParseEndpoint:
    def test_parses_paper_listing_syntax(self):
        spec = parse_endpoint("bind#tcp://*:5861")
        assert spec.mode == "bind"
        assert spec.proto == "tcp"
        assert spec.host == "*"
        assert spec.port == 5861

    def test_parses_connect_with_host(self):
        spec = parse_endpoint("connect#tcp://desktop:5862")
        assert spec.mode == "connect"
        assert spec.host == "desktop"
        assert spec.port == 5862

    def test_parses_inproc(self):
        assert parse_endpoint("bind#inproc://*:100").proto == "inproc"

    def test_whitespace_tolerated(self):
        assert parse_endpoint("  bind#tcp://*:5861 ").port == 5861

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "tcp://*:5861",
            "listen#tcp://*:5861",
            "bind#udp://*:5861",
            "bind#tcp://*:port",
            "bind#tcp://*",
            "bind#tcp://*:99999",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            parse_endpoint(bad)

    def test_port_zero_means_auto_assign(self):
        assert parse_endpoint("bind#tcp://*:0").port == 0

    def test_roundtrip_str(self):
        text = "connect#tcp://tv:7000"
        assert str(parse_endpoint(text)) == text


class TestResolve:
    def test_bind_star_resolves_to_local_device(self):
        spec = parse_endpoint("bind#tcp://*:5861")
        assert spec.resolve("phone") == Address("phone", 5861)

    def test_bind_explicit_host_kept(self):
        spec = parse_endpoint("bind#tcp://desktop:5861")
        assert spec.resolve("phone") == Address("desktop", 5861)

    def test_connect_resolves_to_named_host(self):
        spec = parse_endpoint("connect#tcp://tv:5863")
        assert spec.resolve("phone") == Address("tv", 5863)

    def test_connect_star_rejected(self):
        spec = parse_endpoint("connect#tcp://*:5863")
        # constructed via regex; '*' is a valid host char but cannot resolve
        with pytest.raises(AddressError):
            spec.resolve("phone")


class TestAddress:
    def test_str_form(self):
        assert str(Address("tv", 5863)) == "tv:5863"

    def test_parse_address_roundtrip(self):
        assert parse_address("tv:5863") == Address("tv", 5863)

    def test_parse_address_rejects_garbage(self):
        with pytest.raises(AddressError):
            parse_address("no-port")
        with pytest.raises(AddressError):
            parse_address("tv:notaport")

    def test_empty_device_rejected(self):
        with pytest.raises(AddressError):
            Address("", 80)

    def test_bad_port_rejected(self):
        with pytest.raises(AddressError):
            Address("tv", 0)
        with pytest.raises(AddressError):
            Address("tv", 70000)

    def test_hashable_and_comparable(self):
        assert len({Address("a", 1), Address("a", 1), Address("b", 1)}) == 2
