"""Unit tests for the brokerless transport."""

import pytest

from repro.errors import DeliveryError, NetworkError
from repro.net import Address, BrokerlessTransport, LinkSpec, Message, Topology
from repro.sim import Kernel, RngStreams


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def net(kernel):
    topo = Topology(kernel, RngStreams(seed=1))
    topo.add_wifi("wifi", LinkSpec(latency_s=0.002, jitter_cv=0.0, bandwidth_bps=100e6))
    for device in ["phone", "desktop", "tv"]:
        topo.attach(device, "wifi")
    return BrokerlessTransport(kernel, topo)


class TestBinding:
    def test_bind_and_check(self, net):
        addr = Address("desktop", 5861)
        net.bind(addr, lambda m: None)
        assert net.is_bound(addr)

    def test_double_bind_rejected(self, net):
        addr = Address("desktop", 5861)
        net.bind(addr, lambda m: None)
        with pytest.raises(NetworkError):
            net.bind(addr, lambda m: None)

    def test_bind_unknown_device_rejected(self, net):
        with pytest.raises(NetworkError):
            net.bind(Address("toaster", 1), lambda m: None)

    def test_unbind_allows_rebind(self, net):
        addr = Address("desktop", 5861)
        net.bind(addr, lambda m: None)
        net.unbind(addr)
        assert not net.is_bound(addr)
        net.bind(addr, lambda m: None)

    def test_ephemeral_ports_unique_per_device(self, net):
        ports = {net.ephemeral_port("phone") for _ in range(10)}
        assert len(ports) == 10


class TestSend:
    def test_delivers_payload_and_stamps_times(self, kernel, net):
        received = []
        net.bind(Address("desktop", 5861), received.append)
        msg = Message(kind="data", dst=Address("desktop", 5861),
                      payload={"x": 1}, src=Address("phone", 1000))
        done = net.send(msg)
        kernel.run()
        assert done.succeeded
        assert len(received) == 1
        assert received[0].payload == {"x": 1}
        assert received[0].sent_at == 0.0
        assert received[0].delivered_at > 0.0
        assert received[0].latency > 0.0

    def test_send_without_src_rejected(self, net):
        msg = Message(kind="data", dst=Address("desktop", 5861))
        with pytest.raises(NetworkError):
            net.send(msg)

    def test_send_to_unbound_address_fails_signal(self, kernel, net):
        msg = Message(kind="data", dst=Address("desktop", 9999),
                      src=Address("phone", 1000))
        done = net.send(msg)
        kernel.run()
        assert done.failed
        assert isinstance(done.exception, DeliveryError)
        assert net.failed_count == 1

    def test_larger_messages_take_longer(self, kernel, net):
        times = {}
        net.bind(Address("desktop", 1), lambda m: times.__setitem__("small", m.latency))
        net.bind(Address("desktop", 2), lambda m: times.__setitem__("big", m.latency))
        src = Address("phone", 1000)
        small_frame = b"x" * 100
        big_frame = b"x" * 400000
        net.send(Message(kind="data", dst=Address("desktop", 1), payload=small_frame, src=src))
        net.send(Message(kind="data", dst=Address("desktop", 2), payload=big_frame, src=src))
        kernel.run()
        assert times["big"] > times["small"]

    def test_same_device_delivery_is_cheap(self, kernel, net):
        latencies = []
        net.bind(Address("phone", 1), lambda m: latencies.append(m.latency))
        net.send(Message(kind="data", dst=Address("phone", 1),
                         payload=b"x" * 1000, src=Address("phone", 1000)))
        kernel.run()
        assert latencies[0] < 0.001

    def test_delivery_counter(self, kernel, net):
        net.bind(Address("desktop", 1), lambda m: None)
        for _ in range(3):
            net.send(Message(kind="data", dst=Address("desktop", 1),
                             src=Address("phone", 1000)))
        kernel.run()
        assert net.delivered_count == 3

    def test_message_size_includes_payload_and_envelope(self):
        msg = Message(kind="data", dst=Address("desktop", 1), payload=b"x" * 1000)
        assert msg.size_bytes > 1000


class TestFailureSurface:
    def test_send_from_down_device_fails_fast(self, kernel, net):
        net.bind(Address("desktop", 1), lambda m: None)
        net.topology.set_device_up("phone", False)
        done = net.send(Message(kind="data", dst=Address("desktop", 1),
                                src=Address("phone", 1000)))
        kernel.run()
        assert done.failed
        assert isinstance(done.exception, DeliveryError)

    def test_delivery_to_down_device_fails(self, kernel, net):
        received = []
        net.bind(Address("desktop", 1), received.append)
        done = net.send(Message(kind="data", dst=Address("desktop", 1),
                                src=Address("phone", 1000)))
        # the destination dies while the message is on the wire
        net.topology.set_device_up("desktop", False)
        kernel.run()
        assert done.failed and not received
        assert "down" in str(done.exception)

    def test_partitioned_device_is_unreachable_until_healed(self, kernel, net):
        received = []
        net.bind(Address("desktop", 1), received.append)
        net.topology.partition("desktop")
        done = net.send(Message(kind="data", dst=Address("desktop", 1),
                                src=Address("phone", 1000)))
        kernel.run()
        assert done.failed and not received
        net.topology.heal("desktop")
        done = net.send(Message(kind="data", dst=Address("desktop", 1),
                                src=Address("phone", 1000)))
        kernel.run()
        assert done.succeeded and len(received) == 1


class TestClose:
    def test_close_is_idempotent_and_fails_pending_sends(self, kernel, net):
        net.bind(Address("desktop", 1), lambda m: None)
        done = net.send(Message(kind="data", dst=Address("desktop", 1),
                                payload=b"x" * 400000, src=Address("phone", 1000)))
        net.close()
        net.close()
        assert net.closed
        kernel.run()
        assert done.failed
        assert isinstance(done.exception, DeliveryError)

    def test_closed_transport_refuses_bind_and_send(self, net):
        net.close()
        with pytest.raises(NetworkError):
            net.bind(Address("desktop", 2), lambda m: None)
        done = net.send(Message(kind="data", dst=Address("desktop", 1),
                                src=Address("phone", 1000)))
        assert done.failed
