"""Property-based tests for the network substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import LinkSpec, Topology
from repro.net.wire import WireFormatError, decode, encode
from repro.sim import Kernel, RngStreams


@given(data=st.binary(min_size=0, max_size=200))
@settings(max_examples=200)
def test_decode_never_crashes_on_garbage(data):
    """Arbitrary bytes either decode (if they happen to be valid) or raise
    exactly WireFormatError — never any other exception."""
    try:
        decode(data)
    except WireFormatError:
        pass


@given(data=st.binary(min_size=1, max_size=100), cut=st.integers(0, 99))
@settings(max_examples=100)
def test_truncated_valid_messages_rejected_cleanly(data, cut):
    wire = encode(data)
    truncated = wire[: min(cut, len(wire) - 1)]
    try:
        value = decode(truncated)
    except WireFormatError:
        return
    # the only way truncation can 'succeed' is the degenerate empty prefix
    # case, which cannot equal the original payload
    assert value != data or truncated == wire


@given(
    n_devices=st.integers(2, 6),
    nbytes=st.integers(100, 200_000),
    latency_ms=st.floats(0.1, 10.0),
    bandwidth_mbps=st.floats(10.0, 500.0),
)
@settings(max_examples=50, deadline=None)
def test_star_transfer_time_matches_closed_form(n_devices, nbytes, latency_ms,
                                                bandwidth_mbps):
    """Uncontended star-topology transfers take exactly
    2 * (latency + bytes/bandwidth) — the two-hop relay through the AP."""
    kernel = Kernel()
    spec = LinkSpec(latency_s=latency_ms / 1e3, jitter_cv=0.0,
                    bandwidth_bps=bandwidth_mbps * 1e6)
    topo = Topology(kernel, RngStreams(seed=1))
    topo.add_wifi("wifi", spec)
    names = [f"d{i}" for i in range(n_devices)]
    for name in names:
        topo.attach(name, "wifi")
    done = topo.transfer(names[0], names[-1], nbytes)
    kernel.run()
    expected = 2 * (latency_ms / 1e3 + nbytes * 8 / (bandwidth_mbps * 1e6))
    assert abs(done.value - expected) < 1e-9
    assert abs(topo.expected_delay(names[0], names[-1], nbytes) - expected) < 1e-9


@given(
    transfers=st.lists(st.integers(1_000, 100_000), min_size=1, max_size=10),
)
@settings(max_examples=40, deadline=None)
def test_shared_medium_serializes_total_airtime(transfers):
    """On a zero-latency shared medium, total completion time is exactly
    the sum of all hops' transmission times (perfect serialization)."""
    kernel = Kernel()
    spec = LinkSpec(latency_s=0.0, jitter_cv=0.0, bandwidth_bps=50e6)
    topo = Topology(kernel, RngStreams(seed=1))
    topo.add_wifi("wifi", spec)
    for name in ("a", "b", "c"):
        topo.attach(name, "wifi")
    signals = [topo.transfer("a", "b", n) for n in transfers]
    kernel.run()
    total_airtime = sum(2 * n * 8 / 50e6 for n in transfers)
    assert max(s.value for s in signals) <= total_airtime + 1e-9
    # and it cannot beat the serialized bound either
    assert abs(max(s.value for s in signals) - total_airtime) < 1e-6


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_jittered_transfers_replay_identically(seed):
    """Same seed, same topology build order => identical arrival times."""

    def run():
        kernel = Kernel()
        topo = Topology(kernel, RngStreams(seed=seed))
        topo.add_wifi("wifi", LinkSpec(latency_s=0.002, jitter_cv=0.3))
        for name in ("a", "b"):
            topo.attach(name, "wifi")
        arrivals = [topo.transfer("a", "b", 10_000) for _ in range(5)]
        kernel.run()
        return [s.value for s in arrivals]

    assert run() == run()
