"""Unit tests for the topology and routing."""

import pytest

from repro.errors import LinkDown, NetworkError
from repro.net import LinkSpec, Topology
from repro.sim import Kernel, RngStreams


@pytest.fixture
def kernel():
    return Kernel()


def star(kernel):
    """The paper's testbed: phone, desktop and TV on one Wi-Fi network."""
    topo = Topology(kernel, RngStreams(seed=1))
    topo.add_wifi("wifi", LinkSpec(latency_s=0.002, jitter_cv=0.0, bandwidth_bps=100e6))
    for device in ["phone", "desktop", "tv"]:
        topo.attach(device, "wifi")
    return topo


class TestConstruction:
    def test_devices_listed(self, kernel):
        topo = star(kernel)
        assert sorted(topo.devices()) == ["desktop", "phone", "tv"]
        assert topo.has_device("phone")
        assert not topo.has_device("wifi")  # the AP is not a device

    def test_duplicate_wifi_rejected(self, kernel):
        topo = star(kernel)
        with pytest.raises(NetworkError):
            topo.add_wifi("wifi")

    def test_attach_to_unknown_ap_rejected(self, kernel):
        topo = Topology(kernel)
        with pytest.raises(NetworkError):
            topo.attach("phone", "nowhere")

    def test_wired_link(self, kernel):
        topo = Topology(kernel, RngStreams(seed=1))
        topo.add_wired("a", "b", LinkSpec(jitter_cv=0.0))
        assert len(topo.path_links("a", "b")) == 1


class TestRouting:
    def test_same_device_uses_loopback(self, kernel):
        topo = star(kernel)
        links = topo.path_links("phone", "phone")
        assert len(links) == 1
        assert "loopback" in links[0].name

    def test_loopback_is_cached(self, kernel):
        topo = star(kernel)
        assert topo.path_links("tv", "tv")[0] is topo.path_links("tv", "tv")[0]

    def test_cross_device_is_two_hops_via_ap(self, kernel):
        topo = star(kernel)
        links = topo.path_links("phone", "desktop")
        assert len(links) == 2

    def test_unknown_device_raises(self, kernel):
        topo = star(kernel)
        with pytest.raises(LinkDown):
            topo.path_links("phone", "fridge")

    def test_partitioned_devices_raise(self, kernel):
        topo = Topology(kernel, RngStreams(seed=1))
        topo.add_device("a")
        topo.add_device("b")
        with pytest.raises(LinkDown):
            topo.path_links("a", "b")


class TestTransfer:
    def test_two_hop_delay_sums_hops(self, kernel):
        topo = star(kernel)
        done = topo.transfer("phone", "desktop", 45000)
        kernel.run()
        # each hop: 2 ms latency + 3.6 ms airtime
        assert done.value == pytest.approx(2 * (0.002 + 0.0036))

    def test_loopback_is_fast(self, kernel):
        topo = star(kernel)
        done = topo.transfer("phone", "phone", 45000)
        kernel.run()
        assert done.value < 0.001

    def test_shared_wifi_medium_contends_across_devices(self, kernel):
        topo = Topology(kernel, RngStreams(seed=1))
        topo.add_wifi("wifi", LinkSpec(latency_s=0.0, jitter_cv=0.0, bandwidth_bps=1e6))
        for device in ["a", "b", "c", "d"]:
            topo.attach(device, "wifi")
        # two concurrent transfers, each needs 2 hops of 1 s airtime
        first = topo.transfer("a", "b", 125000)
        second = topo.transfer("c", "d", 125000)
        kernel.run()
        # 4 one-second airtime slots on one shared medium = 4 s total
        assert max(first.value, second.value) == pytest.approx(4.0)

    def test_expected_delay_matches_deterministic_transfer(self, kernel):
        topo = star(kernel)
        expected = topo.expected_delay("phone", "tv", 45000)
        done = topo.transfer("phone", "tv", 45000)
        kernel.run()
        assert done.value == pytest.approx(expected)
