"""Unit tests for the RPC layer."""

import pytest

from repro.errors import RpcError
from repro.net import (
    Address,
    BrokerlessTransport,
    LinkSpec,
    RpcClient,
    RpcServer,
    Topology,
)
from repro.sim import Kernel, RngStreams


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def net(kernel):
    topo = Topology(kernel, RngStreams(seed=1))
    topo.add_wifi("wifi", LinkSpec(latency_s=0.002, jitter_cv=0.0))
    for device in ["phone", "desktop"]:
        topo.attach(device, "wifi")
    return BrokerlessTransport(kernel, topo)


class TestRequestReply:
    def test_sync_handler_roundtrip(self, kernel, net):
        RpcServer(kernel, net, Address("desktop", 6000),
                  lambda payload, msg: {"doubled": payload["x"] * 2})
        client = RpcClient(kernel, net, "phone")
        result = client.call(Address("desktop", 6000), {"x": 21})
        kernel.run()
        assert result.value == {"doubled": 42}

    def test_async_handler_via_signal(self, kernel, net):
        def handler(payload, msg):
            return kernel.timeout(0.050, f"late-{payload}")

        server = RpcServer(kernel, net, Address("desktop", 6000), handler)
        client = RpcClient(kernel, net, "phone")
        result = client.call(Address("desktop", 6000), "req")
        kernel.run()
        assert result.value == "late-req"
        assert kernel.now > 0.050
        assert server.requests_served == 1

    def test_handler_exception_becomes_remote_error(self, kernel, net):
        def handler(payload, msg):
            raise ValueError("bad input")

        server = RpcServer(kernel, net, Address("desktop", 6000), handler)
        client = RpcClient(kernel, net, "phone")
        result = client.call(Address("desktop", 6000), None)
        kernel.run()
        assert result.failed
        error = result.exception
        assert isinstance(error, RpcError)
        assert error.remote
        assert "bad input" in str(error)
        assert server.requests_failed == 1

    def test_failed_async_signal_becomes_remote_error(self, kernel, net):
        def handler(payload, msg):
            sig = kernel.signal()
            kernel.schedule(0.01, sig.fail, RuntimeError("async boom"))
            return sig

        RpcServer(kernel, net, Address("desktop", 6000), handler)
        client = RpcClient(kernel, net, "phone")
        result = client.call(Address("desktop", 6000), None)
        kernel.run()
        assert result.failed
        assert "async boom" in str(result.exception)

    def test_concurrent_calls_correlate_correctly(self, kernel, net):
        def handler(payload, msg):
            # later requests answer sooner: replies arrive out of order
            return kernel.timeout(0.1 / (payload + 1), payload * 10)

        RpcServer(kernel, net, Address("desktop", 6000), handler)
        client = RpcClient(kernel, net, "phone")
        results = [client.call(Address("desktop", 6000), i) for i in range(5)]
        kernel.run()
        assert [r.value for r in results] == [0, 10, 20, 30, 40]

    def test_call_to_unbound_service_fails(self, kernel, net):
        client = RpcClient(kernel, net, "phone")
        result = client.call(Address("desktop", 7777), None)
        kernel.run()
        assert result.failed
        assert isinstance(result.exception, RpcError)

    def test_timeout_fires_before_slow_reply(self, kernel, net):
        RpcServer(kernel, net, Address("desktop", 6000),
                  lambda p, m: kernel.timeout(10.0, "slow"))
        client = RpcClient(kernel, net, "phone")
        result = client.call(Address("desktop", 6000), None, timeout=0.5)
        kernel.run()
        assert result.failed
        assert "timed out" in str(result.exception)

    def test_late_reply_after_timeout_is_discarded(self, kernel, net):
        RpcServer(kernel, net, Address("desktop", 6000),
                  lambda p, m: kernel.timeout(1.0, "slow"))
        client = RpcClient(kernel, net, "phone")
        result = client.call(Address("desktop", 6000), None, timeout=0.5)
        kernel.run()  # runs past the late reply; must not explode
        assert result.failed

    def test_two_clients_do_not_cross_talk(self, kernel, net):
        RpcServer(kernel, net, Address("desktop", 6000), lambda p, m: p)
        client_a = RpcClient(kernel, net, "phone")
        client_b = RpcClient(kernel, net, "phone")
        res_a = client_a.call(Address("desktop", 6000), "a")
        res_b = client_b.call(Address("desktop", 6000), "b")
        kernel.run()
        assert res_a.value == "a"
        assert res_b.value == "b"

    def test_rpc_pays_network_latency_both_ways(self, kernel, net):
        RpcServer(kernel, net, Address("desktop", 6000), lambda p, m: p)
        client = RpcClient(kernel, net, "phone")
        result = client.call(Address("desktop", 6000), "x")
        kernel.run_until_resolved(result)
        # 2 hops out + 2 hops back at 2 ms latency each = >= 8 ms
        assert kernel.now >= 0.008

    def test_close_unbinds_reply_address(self, kernel, net):
        client = RpcClient(kernel, net, "phone")
        addr = client.reply_address
        assert net.is_bound(addr)
        client.close()
        assert not net.is_bound(addr)
