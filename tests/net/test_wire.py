"""Unit and property tests for the binary wire codec and size model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.wire import (
    ENVELOPE_OVERHEAD,
    WireFormatError,
    decode,
    encode,
    payload_size,
)


SAMPLES = [
    None,
    True,
    False,
    0,
    -1,
    2**40,
    3.14159,
    float("inf"),
    "",
    "hello",
    "ünïcødé ☃",
    b"",
    b"\x00\xff raw",
    [],
    [1, "two", 3.0, None],
    (1, 2),
    {},
    {"nested": {"list": [1, [2, [3]]]}, "flag": True},
]


class TestRoundtrip:
    @pytest.mark.parametrize("value", SAMPLES, ids=repr)
    def test_scalar_and_container_roundtrip(self, value):
        assert decode(encode(value)) == value

    def test_tuple_preserved_as_tuple(self):
        assert decode(encode((1, 2))) == (1, 2)
        assert isinstance(decode(encode((1, 2))), tuple)

    @pytest.mark.parametrize("dtype", ["uint8", "int32", "float32", "float64"])
    def test_ndarray_roundtrip(self, dtype):
        array = (np.arange(24).reshape(2, 3, 4) % 7).astype(dtype)
        result = decode(encode(array))
        assert result.dtype == array.dtype
        assert result.shape == array.shape
        np.testing.assert_array_equal(result, array)

    def test_zero_dim_array_roundtrip(self):
        array = np.array(5.0)
        result = decode(encode(array))
        assert result.shape == ()
        assert float(result) == 5.0

    def test_numpy_scalars_become_python_scalars(self):
        assert decode(encode(np.int64(7))) == 7
        assert decode(encode(np.float32(0.5))) == pytest.approx(0.5)

    def test_noncontiguous_array_roundtrip(self):
        array = np.arange(20).reshape(4, 5)[:, ::2]
        np.testing.assert_array_equal(decode(encode(array)), array)


class TestErrors:
    def test_unsupported_type_rejected(self):
        with pytest.raises(WireFormatError):
            encode(object())

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(WireFormatError):
            encode({1: "x"})

    def test_bad_magic_rejected(self):
        with pytest.raises(WireFormatError):
            decode(b"XX\x01\x00")

    def test_truncated_data_rejected(self):
        data = encode([1, 2, 3])
        with pytest.raises(WireFormatError):
            decode(data[:-2])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(WireFormatError):
            decode(encode(1) + b"extra")

    def test_unknown_tag_rejected(self):
        with pytest.raises(WireFormatError):
            decode(b"VP\x01\xfe")


class TestSizeModel:
    @pytest.mark.parametrize("value", SAMPLES, ids=repr)
    def test_size_matches_actual_encoding(self, value):
        if value == float("inf"):
            pytest.skip("inf equality quirk irrelevant here")
        expected = ENVELOPE_OVERHEAD + len(encode(value))
        assert payload_size(value) == expected

    def test_size_of_array_dominated_by_data(self):
        frame = np.zeros((480, 640, 3), dtype=np.uint8)
        size = payload_size(frame)
        assert size > frame.nbytes
        assert size < frame.nbytes + 200

    def test_wire_size_hint_honored(self):
        class Encoded:
            wire_size = 45000

        assert payload_size(Encoded()) == ENVELOPE_OVERHEAD + 3 + 45000


json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**62), max_value=2**62)
    | st.floats(allow_nan=False)
    | st.text(max_size=30)
    | st.binary(max_size=30),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=10), children, max_size=5),
    max_leaves=20,
)


@given(value=json_like)
@settings(max_examples=150)
def test_property_roundtrip(value):
    assert decode(encode(value)) == value


@given(value=json_like)
@settings(max_examples=150)
def test_property_size_model_is_exact(value):
    assert payload_size(value) == ENVELOPE_OVERHEAD + len(encode(value))
