"""Unit tests for the link model."""

import pytest

from repro.net import Link, LinkSpec
from repro.sim import Kernel, Resource, RngStreams


@pytest.fixture
def kernel():
    return Kernel()


def rng():
    return RngStreams(seed=1).stream("test-link")


class TestLinkSpec:
    def test_transmission_time(self):
        spec = LinkSpec(bandwidth_bps=100e6)
        # 45 KB at 100 Mbit/s = 3.6 ms
        assert spec.transmission_time(45000) == pytest.approx(0.0036)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(latency_s=-1)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_bps=0)
        with pytest.raises(ValueError):
            LinkSpec(loss_prob=1.5)


class TestLinkTransfer:
    def test_deterministic_delay_without_jitter(self, kernel):
        spec = LinkSpec(latency_s=0.002, jitter_cv=0.0, bandwidth_bps=100e6)
        link = Link(kernel, spec, rng())
        done = link.transfer(45000)
        kernel.run()
        assert done.value == pytest.approx(0.002 + 0.0036)

    def test_transfers_serialize_on_medium(self, kernel):
        spec = LinkSpec(latency_s=0.0, jitter_cv=0.0, bandwidth_bps=1e6)
        link = Link(kernel, spec, rng())
        first = link.transfer(125000)  # 1 second of airtime
        second = link.transfer(125000)
        kernel.run()
        assert first.value == pytest.approx(1.0)
        assert second.value == pytest.approx(2.0)

    def test_shared_medium_couples_two_links(self, kernel):
        spec = LinkSpec(latency_s=0.0, jitter_cv=0.0, bandwidth_bps=1e6)
        medium = Resource(kernel, 1, "shared")
        link_a = Link(kernel, spec, rng(), medium=medium)
        link_b = Link(kernel, spec, rng(), medium=medium)
        first = link_a.transfer(125000)
        second = link_b.transfer(125000)  # must wait for link_a's airtime
        kernel.run()
        assert first.value == pytest.approx(1.0)
        assert second.value == pytest.approx(2.0)

    def test_private_media_do_not_couple(self, kernel):
        spec = LinkSpec(latency_s=0.0, jitter_cv=0.0, bandwidth_bps=1e6)
        link_a = Link(kernel, spec, rng())
        link_b = Link(kernel, spec, rng())
        first = link_a.transfer(125000)
        second = link_b.transfer(125000)
        kernel.run()
        assert first.value == pytest.approx(1.0)
        assert second.value == pytest.approx(1.0)

    def test_loss_adds_retransmit_penalty(self, kernel):
        spec = LinkSpec(
            latency_s=0.0, jitter_cv=0.0, bandwidth_bps=1e9,
            loss_prob=0.999999, retransmit_penalty_s=0.5,
        )
        link = Link(kernel, spec, rng())
        done = link.transfer(1000)
        kernel.run()
        assert done.value >= 0.5
        assert link.retransmits == 1

    def test_counters(self, kernel):
        link = Link(kernel, LinkSpec(jitter_cv=0.0), rng())
        link.transfer(100)
        link.transfer(200)
        kernel.run()
        assert link.messages_sent == 2
        assert link.bytes_sent == 300

    def test_expected_delay(self):
        spec = LinkSpec(latency_s=0.002, jitter_cv=0.3, bandwidth_bps=100e6)
        link = Link(Kernel(), spec, rng())
        assert link.expected_delay(45000) == pytest.approx(0.0056)

    def test_jitter_produces_variation_with_correct_mean(self, kernel):
        spec = LinkSpec(latency_s=0.010, jitter_cv=0.3, bandwidth_bps=1e12)
        link = Link(kernel, spec, rng())
        signals = [link.transfer(1) for _ in range(400)]
        kernel.run()
        # arrival deltas ~ latency draws; mean should be near 10 ms
        arrivals = sorted(sig.value for sig in signals)
        assert min(arrivals) != max(arrivals)
        mean = sum(arrivals) / len(arrivals)
        assert mean == pytest.approx(0.010, rel=0.15)
