"""Unit tests for ZeroMQ-style socket patterns."""

import pytest

from repro.errors import NetworkError
from repro.net import (
    Address,
    BrokerlessTransport,
    LinkSpec,
    PubSocket,
    PullSocket,
    PushSocket,
    SubSocket,
    Topology,
)
from repro.sim import Kernel, RngStreams


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def net(kernel):
    topo = Topology(kernel, RngStreams(seed=1))
    topo.add_wifi("wifi", LinkSpec(jitter_cv=0.0))
    for device in ["phone", "desktop", "tv"]:
        topo.attach(device, "wifi")
    return BrokerlessTransport(kernel, topo)


class TestPushPull:
    def test_payload_flows_end_to_end(self, kernel, net):
        got = []
        PullSocket(net, Address("desktop", 5861), lambda p, m: got.append(p))
        push = PushSocket(net, Address("phone", 1000))
        push.connect(Address("desktop", 5861))
        push.send({"frame": 1})
        kernel.run()
        assert got == [{"frame": 1}]
        assert push.sent_count == 1

    def test_send_with_no_peers_rejected(self, net):
        push = PushSocket(net, Address("phone", 1000))
        with pytest.raises(NetworkError):
            push.send("x")

    def test_round_robin_across_peers(self, kernel, net):
        got_a, got_b = [], []
        PullSocket(net, Address("desktop", 1), lambda p, m: got_a.append(p))
        PullSocket(net, Address("tv", 2), lambda p, m: got_b.append(p))
        push = PushSocket(net, Address("phone", 1000))
        push.connect(Address("desktop", 1))
        push.connect(Address("tv", 2))
        for i in range(4):
            push.send(i)
        kernel.run()
        assert got_a == [0, 2]
        assert got_b == [1, 3]

    def test_duplicate_connect_rejected(self, net):
        push = PushSocket(net, Address("phone", 1000))
        push.connect(Address("desktop", 1))
        with pytest.raises(NetworkError):
            push.connect(Address("desktop", 1))

    def test_disconnect_removes_peer(self, kernel, net):
        got = []
        PullSocket(net, Address("desktop", 1), lambda p, m: got.append(p))
        PullSocket(net, Address("tv", 2), lambda p, m: got.append(("tv", p)))
        push = PushSocket(net, Address("phone", 1000))
        push.connect(Address("desktop", 1))
        push.connect(Address("tv", 2))
        push.disconnect(Address("tv", 2))
        push.send("only-desktop")
        kernel.run()
        assert got == ["only-desktop"]

    def test_send_to_targets_specific_peer(self, kernel, net):
        got = []
        PullSocket(net, Address("tv", 2), lambda p, m: got.append(p))
        push = PushSocket(net, Address("phone", 1000))
        push.send_to(Address("tv", 2), "direct")
        kernel.run()
        assert got == ["direct"]

    def test_pull_close_stops_delivery(self, kernel, net):
        got = []
        pull = PullSocket(net, Address("desktop", 1), lambda p, m: got.append(p))
        pull.close()
        push = PushSocket(net, Address("phone", 1000))
        push.connect(Address("desktop", 1))
        done = push.send("x")
        kernel.run()
        assert got == []
        assert done.failed

    def test_headers_travel_with_payload(self, kernel, net):
        seen = []
        PullSocket(net, Address("desktop", 1), lambda p, m: seen.append(m.headers))
        push = PushSocket(net, Address("phone", 1000))
        push.connect(Address("desktop", 1))
        push.send("x", headers={"frame_id": 7})
        kernel.run()
        assert seen[0]["frame_id"] == 7


class TestPubSub:
    def test_topic_prefix_filtering(self, kernel, net):
        lights, all_events = [], []
        sub_lights = SubSocket(net, Address("tv", 1),
                               lambda t, p, m: lights.append((t, p)),
                               topics=("iot/light",))
        sub_all = SubSocket(net, Address("desktop", 2),
                            lambda t, p, m: all_events.append((t, p)), topics=("",))
        pub = PubSocket(net, Address("phone", 1000))
        pub.add_subscriber(sub_lights)
        pub.add_subscriber(sub_all)
        pub.publish("iot/light/livingroom", "toggle")
        pub.publish("iot/doorbell", "ring")
        kernel.run()
        assert lights == [("iot/light/livingroom", "toggle")]
        assert all_events == [
            ("iot/light/livingroom", "toggle"),
            ("iot/doorbell", "ring"),
        ]

    def test_publish_without_subscribers_is_noop(self, kernel, net):
        pub = PubSocket(net, Address("phone", 1000))
        assert pub.publish("topic", "x") == []
        kernel.run()

    def test_remove_subscriber(self, kernel, net):
        got = []
        sub = SubSocket(net, Address("tv", 1), lambda t, p, m: got.append(p))
        pub = PubSocket(net, Address("phone", 1000))
        pub.add_subscriber(sub)
        pub.remove_subscriber(sub)
        pub.publish("t", "x")
        kernel.run()
        assert got == []

    def test_duplicate_add_subscriber_is_idempotent(self, kernel, net):
        got = []
        sub = SubSocket(net, Address("tv", 1), lambda t, p, m: got.append(p))
        pub = PubSocket(net, Address("phone", 1000))
        pub.add_subscriber(sub)
        pub.add_subscriber(sub)
        pub.publish("t", "x")
        kernel.run()
        assert got == ["x"]
