"""Unit tests for retry/backoff, circuit breaking, and the resilient client.

Everything here is deterministic: the backoff schedule is exact without an
RNG and bounded with a seeded one, and the breaker is a pure state machine
driven with explicit clock values.
"""

import numpy as np
import pytest

from repro.errors import CircuitOpenError, RpcError
from repro.net import (
    Address,
    BrokerlessTransport,
    CircuitBreaker,
    CircuitBreakerPolicy,
    LinkSpec,
    RetryPolicy,
    RpcClient,
    RpcServer,
    Topology,
)
from repro.net.resilience import CLOSED, HALF_OPEN, OPEN
from repro.sim import Kernel, RngStreams


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def net(kernel):
    topo = Topology(kernel, RngStreams(seed=1))
    topo.add_wifi("wifi", LinkSpec(latency_s=0.002, jitter_cv=0.0))
    for device in ["phone", "desktop"]:
        topo.attach(device, "wifi")
    return BrokerlessTransport(kernel, topo)


class TestRetryPolicy:
    def test_exact_schedule_without_jitter(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.1, multiplier=2.0,
                             max_delay_s=10.0, jitter=0.0)
        assert [policy.backoff_s(a) for a in (1, 2, 3, 4)] == [
            0.1, 0.2, 0.4, 0.8]

    def test_delay_is_capped(self):
        policy = RetryPolicy(max_attempts=10, base_delay_s=1.0, multiplier=3.0,
                             max_delay_s=5.0, jitter=0.0)
        assert policy.backoff_s(1) == 1.0
        assert policy.backoff_s(2) == 3.0
        assert policy.backoff_s(3) == 5.0  # 9.0 capped
        assert policy.backoff_s(8) == 5.0

    def test_jitter_stays_within_relative_bounds(self):
        policy = RetryPolicy(base_delay_s=0.2, multiplier=2.0, jitter=0.25)
        rng = np.random.default_rng(7)
        for attempt in (1, 2, 3):
            nominal = 0.2 * 2.0 ** (attempt - 1)
            for _ in range(50):
                delay = policy.backoff_s(attempt, rng)
                assert nominal * 0.75 <= delay <= nominal * 1.25

    def test_jittered_schedule_is_reproducible_per_seed(self):
        policy = RetryPolicy(jitter=0.3)
        a = [policy.backoff_s(i, np.random.default_rng(3)) for i in (1, 2, 3)]
        b = [policy.backoff_s(i, np.random.default_rng(3)) for i in (1, 2, 3)]
        assert a == b

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(base_delay_s=0.5, jitter=0.4)
        assert policy.backoff_s(1) == 0.5

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay_s": -0.1},
        {"multiplier": 0.5},
        {"jitter": 1.0},
        {"jitter": -0.1},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(0)


class TestCircuitBreaker:
    def make(self, threshold=3, reset=2.0):
        return CircuitBreaker(
            CircuitBreakerPolicy(failure_threshold=threshold,
                                 reset_timeout_s=reset))

    def test_trips_open_at_threshold(self):
        breaker = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure(now=0.0)
            assert breaker.state == CLOSED
        breaker.record_failure(now=0.0)
        assert breaker.state == OPEN
        assert breaker.opens == 1

    def test_rejects_while_open(self):
        breaker = self.make(threshold=1, reset=5.0)
        breaker.record_failure(now=1.0)
        assert not breaker.allow(now=2.0)
        assert not breaker.allow(now=5.9)
        assert breaker.rejections == 2

    def test_half_open_admits_exactly_one_probe(self):
        breaker = self.make(threshold=1, reset=2.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=2.0)  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(now=2.0)  # a second concurrent call
        assert breaker.rejections == 1

    def test_probe_success_closes(self):
        breaker = self.make(threshold=1, reset=2.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=2.5)
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 0
        assert breaker.allow(now=2.5)

    def test_probe_failure_reopens_for_a_full_window(self):
        breaker = self.make(threshold=3, reset=2.0)
        for _ in range(3):
            breaker.record_failure(now=0.0)
        assert breaker.allow(now=2.0)
        breaker.record_failure(now=2.0)  # a single half-open failure re-trips
        assert breaker.state == OPEN
        assert breaker.opens == 2
        assert not breaker.allow(now=3.9)
        assert breaker.allow(now=4.0)

    def test_probe_in_flight_blocks_callers_across_windows(self):
        """Regression guard: a slow probe holds the half-open slot — a
        second caller is rejected even after *another* reset window has
        elapsed with the probe still unresolved."""
        breaker = self.make(threshold=1, reset=2.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=2.0)  # the probe departs, never resolves
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(now=4.5)  # a whole extra window later
        assert not breaker.allow(now=40.0)
        assert breaker.rejections == 2

    def test_half_open_failure_rearms_from_the_failure_time(self):
        """The re-opened window is a full ``reset_timeout_s`` measured from
        when the probe *failed*, not from the original trip (or the probe's
        departure) — a slow-failing probe must not shorten the cooldown."""
        breaker = self.make(threshold=1, reset=2.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=2.0)  # probe departs...
        breaker.record_failure(now=3.5)  # ...and fails 1.5 s later
        assert breaker.state == OPEN
        # 0.0 + 2*reset and 2.0 + reset have both passed; 3.5 + reset has not
        assert not breaker.allow(now=4.0)
        assert not breaker.allow(now=5.4)
        assert breaker.allow(now=5.5)
        assert breaker.state == HALF_OPEN

    def test_success_resets_the_failure_streak(self):
        breaker = self.make(threshold=3)
        breaker.record_failure(now=0.0)
        breaker.record_failure(now=0.0)
        breaker.record_success()
        breaker.record_failure(now=0.0)
        assert breaker.state == CLOSED


class TestClientRetries:
    def test_retry_succeeds_once_server_appears(self, kernel, net):
        """The target is unbound for the first attempts; binding it before
        the last retry turns the call into a success."""
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.1, multiplier=2.0,
                             jitter=0.0)
        client = RpcClient(kernel, net, "phone", retry=policy)
        result = client.call(Address("desktop", 6000), "hello")
        # attempts at ~0 and ~0.1 fail; bind before the ~0.3 attempt
        kernel.schedule(0.2, lambda: RpcServer(
            kernel, net, Address("desktop", 6000), lambda p, m: p.upper()))
        kernel.run()
        assert result.value == "HELLO"
        assert client.retries == 2
        assert client.calls_failed == 0

    def test_retries_exhausted_fails_the_call(self, kernel, net):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.05, jitter=0.0)
        client = RpcClient(kernel, net, "phone", retry=policy)
        result = client.call(Address("desktop", 6000), None)
        kernel.run()
        assert result.failed
        assert isinstance(result.exception, RpcError)
        assert client.retries == 2
        assert client.calls_failed == 1

    def test_remote_errors_are_not_retried(self, kernel, net):
        """A handler that ran and raised proves the target is alive;
        retrying the same input is pointless."""
        served = []

        def handler(payload, msg):
            served.append(payload)
            raise ValueError("bad input")

        RpcServer(kernel, net, Address("desktop", 6000), handler)
        client = RpcClient(kernel, net, "phone",
                           retry=RetryPolicy(max_attempts=4, jitter=0.0))
        result = client.call(Address("desktop", 6000), "x")
        kernel.run()
        assert result.failed and result.exception.remote
        assert len(served) == 1
        assert client.retries == 0

    def test_per_call_retry_override_disables_client_default(self, kernel, net):
        client = RpcClient(
            kernel, net, "phone",
            retry=RetryPolicy(max_attempts=5, base_delay_s=0.05, jitter=0.0))
        result = client.call(Address("desktop", 6000), None, retry=None)
        kernel.run()
        assert result.failed
        assert client.retries == 0

    def test_jittered_retry_schedule_is_seed_deterministic(self, kernel, net):
        def run(seed):
            k = Kernel()
            topo = Topology(k, RngStreams(seed=1))
            topo.add_wifi("wifi", LinkSpec(latency_s=0.002, jitter_cv=0.0))
            topo.attach("phone", "wifi")
            topo.attach("desktop", "wifi")
            transport = BrokerlessTransport(k, topo)
            client = RpcClient(
                k, transport, "phone",
                retry=RetryPolicy(max_attempts=3, base_delay_s=0.1,
                                  jitter=0.3),
                rng=np.random.default_rng(seed))
            result = client.call(Address("desktop", 6000), None)
            k.run()
            assert result.failed
            return k.now

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestTimeoutBookkeeping:
    def test_reply_cancels_the_timeout_timer(self, kernel, net):
        """Satellite fix: with the generous 30 s default timeout, a prompt
        reply must not leave a dead timer event stretching the run."""
        RpcServer(kernel, net, Address("desktop", 6000), lambda p, m: p)
        client = RpcClient(kernel, net, "phone")  # default 30 s timeout
        result = client.call(Address("desktop", 6000), "ping")
        end = kernel.run()
        assert result.value == "ping"
        assert end < 1.0  # the cancelled timer does not hold the clock
        assert client.timeouts == 0

    def test_late_reply_after_timeout_is_counted(self, kernel, net):
        RpcServer(kernel, net, Address("desktop", 6000),
                  lambda p, m: kernel.timeout(1.0, "slow"))
        client = RpcClient(kernel, net, "phone")
        result = client.call(Address("desktop", 6000), None, timeout=0.2)
        kernel.run()
        assert result.failed
        assert "timed out" in str(result.exception)
        assert client.timeouts == 1
        assert client.late_replies == 1

    def test_timeout_is_retryable(self, kernel, net):
        """A timed-out attempt retries; the retry hits a now-fast server."""
        calls = {"n": 0}

        def handler(payload, msg):
            calls["n"] += 1
            if calls["n"] == 1:
                return kernel.timeout(5.0, "slow")  # first reply never lands
            return "fast"

        RpcServer(kernel, net, Address("desktop", 6000), handler)
        client = RpcClient(
            kernel, net, "phone",
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.05, jitter=0.0))
        result = client.call(Address("desktop", 6000), None, timeout=0.3)
        kernel.run()
        assert result.value == "fast"
        assert client.retries == 1
        assert client.timeouts == 1


class TestClientCircuitBreaking:
    POLICY = CircuitBreakerPolicy(failure_threshold=2, reset_timeout_s=1.0)

    def test_circuit_opens_and_rejects_fast(self, kernel, net):
        client = RpcClient(kernel, net, "phone", breaker=self.POLICY)
        target = Address("desktop", 6000)
        for _ in range(2):
            client.call(target, None)
            kernel.run()
        assert client.circuit_opens == 1
        rejected = client.call(target, None)
        kernel.run()
        assert isinstance(rejected.exception, CircuitOpenError)
        assert client.circuit_rejections == 1
        assert client.calls_sent == 2  # the rejected call never hit the wire

    def test_half_open_probe_recovers_the_target(self, kernel, net):
        client = RpcClient(kernel, net, "phone", breaker=self.POLICY)
        target = Address("desktop", 6000)
        for _ in range(2):
            client.call(target, None)
            kernel.run()
        assert client.breaker_for(target).state == OPEN
        RpcServer(kernel, net, target, lambda p, m: "back")
        kernel.run(until=kernel.now + 1.1)  # past reset_timeout_s
        probe = client.call(target, None)
        kernel.run()
        assert probe.value == "back"
        assert client.breaker_for(target).state == CLOSED

    def test_breakers_are_per_target(self, kernel, net):
        RpcServer(kernel, net, Address("desktop", 6001), lambda p, m: "ok")
        client = RpcClient(kernel, net, "phone", breaker=self.POLICY)
        for _ in range(2):
            client.call(Address("desktop", 6000), None)
            kernel.run()
        healthy = client.call(Address("desktop", 6001), None)
        kernel.run()
        assert healthy.value == "ok"  # the dead port's breaker is not shared

    def test_remote_errors_count_as_liveness(self, kernel, net):
        def handler(payload, msg):
            raise ValueError("flaky input")

        target = Address("desktop", 6000)
        RpcServer(kernel, net, target, handler)
        client = RpcClient(kernel, net, "phone", breaker=self.POLICY)
        for _ in range(5):
            client.call(target, None)
            kernel.run()
        assert client.circuit_opens == 0
        assert client.breaker_for(target).state == CLOSED


class TestClientClose:
    def test_close_is_idempotent_and_fails_inflight(self, kernel, net):
        RpcServer(kernel, net, Address("desktop", 6000),
                  lambda p, m: kernel.timeout(1.0, "slow"))
        client = RpcClient(kernel, net, "phone")
        result = client.call(Address("desktop", 6000), None)
        kernel.run(until=0.1)
        client.close()
        client.close()
        end = kernel.run()  # delivers the scheduled failure callback
        assert result.failed
        assert "closed" in str(result.exception)
        assert end < 2.0  # the pending timeout timer was cancelled

    def test_call_after_close_fails_immediately(self, kernel, net):
        client = RpcClient(kernel, net, "phone")
        client.close()
        result = client.call(Address("desktop", 6000), None)
        kernel.run()
        assert result.failed
        assert "closed" in str(result.exception)
