"""Root test fixtures: the determinism helper and the REPRO_AUDIT gate.

``REPRO_AUDIT=1 pytest`` runs the whole suite with every ``VideoPipe``
auto-enabling the invariant auditor (see ``docs/AUDIT.md``); the autouse
gate below then fails any test whose env-enabled auditor recorded a
violation, turning the entire suite into a conservation-law sweep without
editing a single test.
"""

from __future__ import annotations

import os

import pytest

from repro.audit import live_auditors


@pytest.fixture
def assert_deterministic():
    """Run a ``scenario(seed) -> (home, run_fn)`` twice and fail with the
    first event-stream divergence if the runs differ."""
    from repro.audit.determinism import check_determinism

    def check(scenario, seed=7, name=None):
        report = check_determinism(scenario, seed=seed, name=name)
        assert report.ok, report.describe()
        return report

    return check


@pytest.fixture(autouse=True)
def _repro_audit_gate():
    """When REPRO_AUDIT is set, sweep auditors the env var created during
    this test and fail on any violation.

    Only ``source == "env"`` auditors participate: tests that construct an
    auditor explicitly (e.g. the mutation tests, which *want* violations)
    are exempt. Quiesce-only invariants are checked only when the kernel
    actually drained — a run stopped at a time limit legitimately has
    frames in flight.
    """
    if not os.environ.get("REPRO_AUDIT"):
        yield
        return
    before = set(live_auditors())
    yield
    failures = []
    for auditor in live_auditors():
        if auditor in before or auditor.source != "env":
            continue
        if auditor.kernel.pending_events == 0:
            auditor.check_quiesce()
        else:
            auditor.check_now()
        if auditor.violations:
            failures.append(auditor.report())
    assert not failures, (
        "REPRO_AUDIT: invariant violations detected:\n"
        + "\n".join(failures)
    )
