"""Sharded fleet execution: merge equivalence, assignment stability,
worker-failure reporting."""

from __future__ import annotations

import pytest

from repro.errors import FleetShardError
from repro.fleet import (
    Fleet,
    FleetConfig,
    FleetShardRunner,
    FleetReport,
    run_fleet,
    shard_assignment,
)
from repro.fleet.shard import FAIL_SHARD_ENV

#: Provenance fields the merge is allowed to differ on.
PROVENANCE = ("shards", "shard_homes")


def _cfg(**overrides) -> FleetConfig:
    defaults = dict(homes=12, seed=11, duration_s=1.0, tail_s=0.5)
    defaults.update(overrides)
    return FleetConfig(**defaults)


def _comparable(report: FleetReport) -> dict:
    data = report.as_dict()
    for key in PROVENANCE:
        data.pop(key)
    return data


def test_shard_assignment_round_robin():
    assignment = shard_assignment(homes=10, shards=4)
    assert assignment == {
        0: [0, 4, 8], 1: [1, 5, 9], 2: [2, 6], 3: [3, 7],
    }
    # growing the fleet never moves an existing home to another shard
    grown = shard_assignment(homes=14, shards=4)
    for shard, indices in assignment.items():
        assert grown[shard][: len(indices)] == indices
    # more shards than homes leaves the excess shards empty
    sparse = shard_assignment(homes=2, shards=4)
    assert sparse == {0: [0], 1: [1], 2: [], 3: []}


def test_sharded_report_matches_single_kernel():
    # the tentpole claim: shard count never changes any home's results
    single = run_fleet(_cfg(shards=1))
    by_shards = {n: run_fleet(_cfg(shards=n)) for n in (2, 4)}
    for n, sharded in by_shards.items():
        assert _comparable(sharded) == _comparable(single)
        assert sharded.shards == n
        assert sum(sharded.shard_homes.values()) == 12
        for a, b in zip(single.results, sharded.results):
            assert a.index == b.index
            assert a.latencies == b.latencies  # bit-identical, not approx
            assert a.sink_frame_ids == b.sink_frame_ids
            assert a.devices == b.devices
            assert a.strategy == b.strategy
            assert b.shard == b.index % n


def test_single_shard_runner_matches_in_process_fleet():
    cfg = _cfg(homes=4)
    fleet = Fleet(cfg)
    fleet.run()
    direct = fleet.report()
    via_runner = FleetShardRunner(cfg).run()
    assert _comparable(via_runner) == _comparable(direct)


def test_subset_build_reproduces_full_fleet_home():
    # a worker building only home 3 gets the exact home the full fleet has
    cfg = _cfg(homes=6)
    full = Fleet(cfg)
    subset = Fleet(cfg, home_indices=[3])
    assert subset.home_seeds == [full.home_seeds[3]]
    assert sorted(subset.homes[0].devices) == sorted(full.homes[3].devices)
    assert subset.pipelines[0].name == "home3"


def test_crashed_shard_names_the_shard(monkeypatch):
    monkeypatch.setenv(FAIL_SHARD_ENV, "1")
    with pytest.raises(FleetShardError, match="shard 1") as excinfo:
        run_fleet(_cfg(homes=8, shards=2, duration_s=0.5))
    assert excinfo.value.shard == 1


def test_sharded_run_is_deterministic():
    first = run_fleet(_cfg(shards=3))
    second = run_fleet(_cfg(shards=3))
    assert first.as_dict() == second.as_dict()
