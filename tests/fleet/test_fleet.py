"""Fleet harness basics: shape, determinism, validation, graceful fallback."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.fleet import Fleet, FleetConfig, run_fleet
from repro.pipeline import COLOCATED, OPTIMIZED, SINGLE_HOST


def _small(strategy=COLOCATED, **overrides) -> FleetConfig:
    defaults = dict(homes=5, seed=7, strategy=strategy,
                    duration_s=1.5, tail_s=1.0)
    defaults.update(overrides)
    return FleetConfig(**defaults)


def test_fleet_report_shape():
    report = run_fleet(_small())
    assert report.homes == 5
    assert len(report.results) == 5
    assert report.completed > 0
    assert report.dropped == 0
    assert report.drop_rate == 0.0
    assert report.latency.mean > 0
    assert report.latency.p50 <= report.latency.p99
    for result in report.results:
        assert result.completed == len(result.latencies)
        assert result.completed == len(result.sink_frame_ids)
        # §2.3 credit protocol: one frame in flight, so sink ids are
        # strictly increasing
        assert result.sink_frame_ids == sorted(set(result.sink_frame_ids))
        assert len(result.devices) >= 2
    as_dict = report.as_dict()
    assert as_dict["homes"] == 5
    assert as_dict["latency"]["mean"] == report.latency.mean
    assert report.strategy in report.describe()


def test_fleet_homes_are_heterogeneous():
    fleet = Fleet(_small(homes=8))
    mixes = {tuple(sorted(home.devices)) for home in fleet.homes}
    assert len(mixes) > 1
    for home in fleet.homes:
        assert "phone" in home.devices


def test_fleet_is_deterministic_under_seed():
    first = run_fleet(_small(strategy=OPTIMIZED))
    second = run_fleet(_small(strategy=OPTIMIZED))
    assert first.as_dict() == second.as_dict()
    for a, b in zip(first.results, second.results):
        assert a.latencies == b.latencies
        assert a.sink_frame_ids == b.sink_frame_ids
        assert a.strategy == b.strategy


def test_fleet_seed_changes_outcome():
    base = run_fleet(_small())
    other = run_fleet(_small(seed=8))
    assert base.as_dict() != other.as_dict()


def test_optimized_fleet_falls_back_gracefully():
    report = run_fleet(_small(strategy=OPTIMIZED))
    # per-home plans are either genuinely optimized or the co-located
    # fallback — never anything else, and never an error
    assert {r.strategy for r in report.results} <= {OPTIMIZED, COLOCATED}


def test_single_host_is_slower_than_colocated():
    single = run_fleet(_small(strategy=SINGLE_HOST, duration_s=2.0))
    colocated = run_fleet(_small(strategy=COLOCATED, duration_s=2.0))
    assert colocated.latency.mean < single.latency.mean


def test_fleet_config_validation():
    with pytest.raises(ConfigError):
        FleetConfig(homes=0)
    with pytest.raises(ConfigError):
        FleetConfig(strategy="bogus")
    with pytest.raises(ConfigError):
        FleetConfig(fps_choices=())
    with pytest.raises(ConfigError):
        FleetConfig(fps_choices=(4.0, -1.0))
    with pytest.raises(ConfigError):
        FleetConfig(duration_s=0.0)
    with pytest.raises(ConfigError):
        FleetConfig(tail_s=-1.0)


def test_fleet_shares_one_kernel():
    fleet = Fleet(_small(homes=3))
    kernels = {home.kernel for home in fleet.homes}
    assert kernels == {fleet.kernel}
    fleet.run()
    report = fleet.report()
    assert report.completed > 0
