"""Fleet harness basics: shape, determinism, validation, graceful fallback."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.fleet import Fleet, FleetConfig, home_seed, run_fleet
from repro.pipeline import COLOCATED, OPTIMIZED, SINGLE_HOST


def _small(strategy=COLOCATED, **overrides) -> FleetConfig:
    defaults = dict(homes=5, seed=7, strategy=strategy,
                    duration_s=1.5, tail_s=1.0)
    defaults.update(overrides)
    return FleetConfig(**defaults)


def test_fleet_report_shape():
    report = run_fleet(_small())
    assert report.homes == 5
    assert len(report.results) == 5
    assert report.completed > 0
    assert report.dropped == 0
    assert report.drop_rate == 0.0
    assert report.latency.mean > 0
    assert report.latency.p50 <= report.latency.p99
    for result in report.results:
        assert result.completed == len(result.latencies)
        assert result.completed == len(result.sink_frame_ids)
        # §2.3 credit protocol: one frame in flight, so sink ids are
        # strictly increasing
        assert result.sink_frame_ids == sorted(set(result.sink_frame_ids))
        assert len(result.devices) >= 2
    as_dict = report.as_dict()
    assert as_dict["homes"] == 5
    assert as_dict["latency"]["mean"] == report.latency.mean
    assert report.strategy in report.describe()


def test_fleet_homes_are_heterogeneous():
    fleet = Fleet(_small(homes=8))
    mixes = {tuple(sorted(home.devices)) for home in fleet.homes}
    assert len(mixes) > 1
    for home in fleet.homes:
        assert "phone" in home.devices


def test_fleet_is_deterministic_under_seed():
    first = run_fleet(_small(strategy=OPTIMIZED))
    second = run_fleet(_small(strategy=OPTIMIZED))
    assert first.as_dict() == second.as_dict()
    for a, b in zip(first.results, second.results):
        assert a.latencies == b.latencies
        assert a.sink_frame_ids == b.sink_frame_ids
        assert a.strategy == b.strategy


def test_fleet_seed_changes_outcome():
    base = run_fleet(_small())
    other = run_fleet(_small(seed=8))
    assert base.as_dict() != other.as_dict()


def test_optimized_fleet_falls_back_gracefully():
    report = run_fleet(_small(strategy=OPTIMIZED))
    # per-home plans are either genuinely optimized or the co-located
    # fallback — never anything else, and never an error
    assert {r.strategy for r in report.results} <= {OPTIMIZED, COLOCATED}


def test_single_host_is_slower_than_colocated():
    single = run_fleet(_small(strategy=SINGLE_HOST, duration_s=2.0))
    colocated = run_fleet(_small(strategy=COLOCATED, duration_s=2.0))
    assert colocated.latency.mean < single.latency.mean


def test_home_seeds_do_not_collide_across_master_seeds():
    # regression: the old affine derivation (seed + 101 * index) made home
    # i under master seed s bit-identical to home i-1 under seed s + 101,
    # so fleet-level seed-sensitivity comparisons silently reused homes
    f_a = Fleet(_small(seed=0, homes=3))
    f_b = Fleet(_small(seed=101, homes=3))
    assert f_a.home_seeds[1] != f_b.home_seeds[0]
    assert f_a.home_seeds[2] != f_b.home_seeds[1]
    # and no collisions anywhere on a seed x index grid
    grid = {home_seed(s, i) for s in range(20) for i in range(50)}
    assert len(grid) == 20 * 50


def test_run_honors_explicit_horizon():
    # regression: run(until=...) ran the kernel to the horizon, then the
    # unbounded drain call ran everything scheduled *after* it anyway
    cfg = _small(duration_s=2.0, tail_s=1.0)
    short = Fleet(cfg)
    short.run(until=0.5)
    assert short.kernel.now == pytest.approx(0.5)
    partial = short.report()
    full = run_fleet(cfg)
    assert 0 < partial.completed < full.completed
    # the default run still drains past the capture horizon
    assert full.completed == sum(len(r.sink_frame_ids) for r in full.results)


def test_report_surfaces_plan_fallbacks():
    report = run_fleet(_small(strategy=OPTIMIZED))
    fell_back = sum(1 for r in report.results if r.strategy == COLOCATED)
    assert report.plans_fell_back == fell_back
    assert report.as_dict()["plans_fell_back"] == fell_back
    # only an optimized request can "fall back"; colocated is just colocated
    assert run_fleet(_small(strategy=COLOCATED)).plans_fell_back == 0


def test_fleet_config_validation():
    with pytest.raises(ConfigError):
        FleetConfig(homes=0)
    with pytest.raises(ConfigError):
        FleetConfig(strategy="bogus")
    with pytest.raises(ConfigError):
        FleetConfig(fps_choices=())
    with pytest.raises(ConfigError):
        FleetConfig(fps_choices=(4.0, -1.0))
    with pytest.raises(ConfigError):
        FleetConfig(duration_s=0.0)
    with pytest.raises(ConfigError):
        FleetConfig(tail_s=-1.0)
    with pytest.raises(ConfigError):
        FleetConfig(shards=0)
    with pytest.raises(ConfigError):
        Fleet(FleetConfig(homes=3), home_indices=[0, 5])


def test_fleet_shares_one_kernel():
    fleet = Fleet(_small(homes=3))
    kernels = {home.kernel for home in fleet.homes}
    assert kernels == {fleet.kernel}
    fleet.run()
    report = fleet.report()
    assert report.completed > 0
