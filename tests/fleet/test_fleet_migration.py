"""Live migration under load, at fleet scale.

The hard part of ``Deployer.migrate`` is not the happy path but migrating
*mid-stream*: a frame may be in flight inside the migrated module, queued
events must be drained, their frame refs released and the frames accounted
as dropped, and the §2.3 credit watchdog must revive the stream. These
tests run migrations in a live fleet and then hold the auditor to the
usual quiesce bar: no frame-ref leaks, conserved frame accounting, and
strictly increasing frame ids at every sink.
"""

from __future__ import annotations

from repro.fleet import Fleet, FleetConfig
from repro.pipeline import OPTIMIZED, SINGLE_HOST


def _hub_of(home) -> str:
    # every fleet home hosts the detector on its (container-capable) hub
    return home.registry.devices_hosting("fleet_detector")[0]


def _assert_home_clean(home, pipeline) -> None:
    violations = home.check_invariants()
    assert violations == [], [v.describe() for v in violations]
    metrics = pipeline.metrics
    entered = metrics.counter("frames_entered")
    completed = metrics.counter("frames_completed")
    dropped = metrics.counter("frames_dropped")
    # no message loss: every admitted frame is either completed or
    # explicitly accounted as dropped (e.g. in flight during the migration)
    assert entered == completed + dropped, (entered, completed, dropped)
    sink = pipeline.module_instance("sink")
    assert sink.frame_ids == sorted(set(sink.frame_ids))


def test_migrate_mid_stream_under_load():
    fleet = Fleet(FleetConfig(homes=4, seed=11, strategy=SINGLE_HOST,
                              duration_s=3.0, tail_s=2.0, audit=True))
    fleet.kernel.run(until=1.0)
    frames_at_migration = []
    for home, pipeline in zip(fleet.homes, fleet.pipelines):
        sink = pipeline.module_instance("sink")
        frames_at_migration.append(len(sink.frame_ids))
        home.migrate_module(pipeline, "detect", _hub_of(home))
    fleet.run()

    report = fleet.report()
    assert report.migrations == 4
    assert report.completed > 0
    for home, pipeline, before in zip(fleet.homes, fleet.pipelines,
                                      frames_at_migration):
        _assert_home_clean(home, pipeline)
        assert pipeline.metrics.counter("migrations") == 1
        # the stream survived the migration: more frames reached the sink
        # after the cutover than before it
        sink = pipeline.module_instance("sink")
        assert len(sink.frame_ids) > before, (pipeline.name, before)


def test_migrate_there_and_back_stays_conserved():
    """Two migrations of the same module; accounting must stay exact even
    when a frame is in flight at each cutover."""
    fleet = Fleet(FleetConfig(homes=2, seed=13, strategy=SINGLE_HOST,
                              duration_s=3.0, tail_s=2.0, audit=True))
    fleet.kernel.run(until=0.8)
    for home, pipeline in zip(fleet.homes, fleet.pipelines):
        home.migrate_module(pipeline, "classify", _hub_of(home))
    fleet.kernel.run(until=1.6)
    for home, pipeline in zip(fleet.homes, fleet.pipelines):
        home.migrate_module(pipeline, "classify", "phone")
    fleet.run()

    for home, pipeline in zip(fleet.homes, fleet.pipelines):
        _assert_home_clean(home, pipeline)
        assert pipeline.metrics.counter("migrations") == 2


def test_migrate_in_optimized_fleet_with_tracing():
    """Migration composes with the optimized strategy and passive tracing:
    the observers must not perturb accounting, and the plan's placement is
    free to differ from the migration target."""
    fleet = Fleet(FleetConfig(homes=3, seed=17, strategy=OPTIMIZED,
                              duration_s=3.0, tail_s=2.0,
                              audit=True, tracing=True))
    fleet.kernel.run(until=1.2)
    for home, pipeline in zip(fleet.homes, fleet.pipelines):
        home.migrate_module(pipeline, "alert", _hub_of(home))
    fleet.run()

    report = fleet.report()
    assert report.migrations == 3
    assert report.drop_rate <= 0.1
    for home, pipeline in zip(fleet.homes, fleet.pipelines):
        _assert_home_clean(home, pipeline)
