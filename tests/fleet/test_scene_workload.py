"""Fleet *scene* workload: the multi-camera fan-in DAG at fleet scale.

Each home runs a two-camera scene-fusion pipeline (rig → per-camera track
branches → fusion sink) instead of the linear stage DAG. The claims under
test: the workload completes frames without drops, per-home results are
shard-invariant exactly like the stage workload's, and a scene fleet is
bit-deterministic under its seed.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.fleet import Fleet, FleetConfig, FleetReport, run_fleet

#: Provenance fields the shard merge is allowed to differ on.
PROVENANCE = ("shards", "shard_homes")


def _cfg(**overrides) -> FleetConfig:
    defaults = dict(homes=6, seed=11, duration_s=1.5, tail_s=1.0,
                    workload="scene")
    defaults.update(overrides)
    return FleetConfig(**defaults)


def _comparable(report: FleetReport) -> dict:
    data = report.as_dict()
    for key in PROVENANCE:
        data.pop(key)
    return data


def test_unknown_workload_rejected():
    with pytest.raises(ConfigError, match="workload"):
        FleetConfig(workload="tracking")


def test_scene_fleet_completes_frames():
    fleet = Fleet(_cfg(homes=3))
    fleet.run()
    report = fleet.report()
    assert report.dropped == 0
    assert report.completed > 0
    for result, pipeline in zip(report.results, fleet.pipelines):
        # the fusion module doubles as the sink: every completed frame's
        # id reached it through the fan-in
        assert len(result.sink_frame_ids) == result.completed
        assert result.completed > 0
        fusion = pipeline.module_instance("sink")
        # cross-camera fusion actually happened: some fused track cites
        # both of the home's cameras in its provenance
        tracks = fusion.core.tracks()
        assert any(
            len({camera for camera, _ in track.provenance}) == 2
            for track in tracks
        ), [track.provenance for track in tracks]


def test_scene_fleet_shard_merge_equivalence():
    single = run_fleet(_cfg(shards=1))
    sharded = run_fleet(_cfg(shards=2))
    assert _comparable(sharded) == _comparable(single)
    for a, b in zip(single.results, sharded.results):
        assert a.index == b.index
        assert a.latencies == b.latencies  # bit-identical, not approx
        assert a.sink_frame_ids == b.sink_frame_ids
        assert a.devices == b.devices


def test_scene_fleet_is_deterministic(assert_deterministic):
    def scenario(seed):
        fleet = Fleet(_cfg(homes=3, seed=seed))

        def run_fn():
            fleet.run()
            return _comparable(fleet.report())

        return fleet, run_fn

    report = assert_deterministic(scenario, seed=13, name="fleet-scene")
    assert report.event_count > 500
