"""The shared cloud tier: WAN attachment, egress metering, pricing,
and the optimizer's cloud bias."""

from __future__ import annotations

import pytest

from repro.core import VideoPipe
from repro.errors import ConfigError, DeviceError, NetworkError
from repro.fleet import Fleet, FleetConfig, home_pipeline_config, run_fleet
from repro.net import WAN_METRO, WAN_REGIONAL
from repro.pipeline import CloudPricing, CostModel, OptimizerConfig


def _cloud_cfg(**overrides) -> FleetConfig:
    defaults = dict(homes=6, seed=7, duration_s=1.0, tail_s=0.5, cloud=True)
    defaults.update(overrides)
    return FleetConfig(**defaults)


def test_add_cloud_device_attaches_behind_wan():
    home = VideoPipe(seed=3)
    home.add_device("phone")
    home.add_cloud_device("cloud")
    assert home.topology.is_cloud("cloud")
    assert not home.topology.is_cloud("phone")
    assert home.topology.cloud_devices() == ["cloud"]
    assert home.topology.wan_egress_bytes() == 0  # metered, nothing sent yet
    with pytest.raises(DeviceError):
        home.add_cloud_device("cloud")
    with pytest.raises(NetworkError):
        home.topology.add_cloud("phone")  # already attached as an edge device


def test_cloud_fleet_reports_egress_and_cost():
    edge = run_fleet(_cloud_cfg(cloud=False))
    cloud = run_fleet(_cloud_cfg())
    assert cloud.cloud_calls > 0
    assert cloud.cloud_egress_bytes > 0
    assert edge.cloud_calls == 0 and edge.cloud_egress_bytes == 0
    # cloud compute and egress are billed on top of the edge amortization
    assert cloud.cost_per_home > edge.cost_per_home > 0
    # offloading the heavy stages over a metro WAN beats weak local hubs
    assert cloud.latency.mean < edge.latency.mean
    data = cloud.as_dict()
    assert data["cloud_egress_bytes"] == cloud.cloud_egress_bytes
    assert data["cloud_calls"] == cloud.cloud_calls
    assert data["cost_per_home"] == pytest.approx(cloud.cost_per_home)


def test_cloud_report_totals_match_topology_meters():
    fleet = Fleet(_cloud_cfg())
    fleet.run()
    report = fleet.report()
    metered = sum(h.topology.wan_egress_bytes() for h in fleet.homes)
    assert report.cloud_egress_bytes == metered
    assert report.cloud_egress_bytes == sum(
        r.cloud_egress_bytes for r in report.results
    )


def test_regional_wan_makes_cloud_less_attractive():
    metro = run_fleet(_cloud_cfg())
    regional = run_fleet(_cloud_cfg(wan=WAN_REGIONAL))
    assert metro.cloud_calls > 0
    # a 20 ms uplink prices more calls back onto the home's own devices
    # than the 5 ms metro edge does
    assert regional.cloud_calls <= metro.cloud_calls
    assert WAN_REGIONAL.latency_s > WAN_METRO.latency_s


def test_cloud_fleet_is_deterministic_and_shardable():
    first = run_fleet(_cloud_cfg())
    second = run_fleet(_cloud_cfg())
    assert first.as_dict() == second.as_dict()
    sharded = run_fleet(_cloud_cfg(shards=2))
    plain, merged = first.as_dict(), sharded.as_dict()
    for key in ("shards", "shard_homes"):
        plain.pop(key), merged.pop(key)
    assert plain == merged


def test_cloud_pricing_math():
    pricing = CloudPricing(
        edge_device_per_hour=0.01, cloud_cpu_per_hour=0.36, egress_per_gb=0.1
    )
    # 3 edge devices, 2 compute-seconds and 1e8 bytes over a 60 s window:
    # scale 60x to the hour -> 120 cpu-s = 1/30 cpu-h, 6 GB egress
    cost = pricing.home_hourly_cost(
        edge_devices=3, cloud_compute_s=2.0, egress_bytes=int(1e8),
        window_s=60.0,
    )
    assert cost == pytest.approx(0.03 + 0.36 / 30.0 + 0.6)
    assert pricing.home_hourly_cost(3, 0.0, 0, 60.0) == pytest.approx(0.03)
    with pytest.raises(ConfigError):
        pricing.home_hourly_cost(3, 1.0, 0, 0.0)


def test_custom_pricing_flows_into_report():
    free_cloud = CloudPricing(
        edge_device_per_hour=0.0, cloud_cpu_per_hour=0.0, egress_per_gb=0.0
    )
    report = run_fleet(_cloud_cfg(pricing=free_cloud))
    assert report.cloud_calls > 0
    assert report.cost_per_home == 0.0


def test_cloud_bias_penalizes_cloud_routed_calls():
    with pytest.raises(ConfigError):
        OptimizerConfig(cloud_bias_s=-0.001)
    fleet = Fleet(_cloud_cfg(homes=1))
    home = fleet.homes[0]
    config = home_pipeline_config("bias_probe", "phone")
    on_cloud = {
        "camera": "phone", "detect": "cloud", "classify": "cloud",
        "alert": "phone", "sink": "phone",
    }
    plain = CostModel(
        config, home.devices, home.registry, home.topology,
        optimizer=OptimizerConfig(),
    )
    biased = CostModel(
        config, home.devices, home.registry, home.topology,
        optimizer=OptimizerConfig(cloud_bias_s=0.004),
    )
    assert plain.cloud_penalty(on_cloud) == 0.0
    # detect and classify resolve to cloud-hosted replicas; alert's only
    # host is the phone, so exactly two calls carry the bias
    assert biased.cloud_penalty(on_cloud) == pytest.approx(0.008)
    assert biased.score(on_cloud).total == pytest.approx(
        plain.score(on_cloud).total + 0.008
    )
    # the bias follows call *routing*, not module placement: a module on an
    # edge device still carries it when the cheapest replica is the cloud
    # one (that is where the cost-aware balancer will send its calls)
    all_edge = dict(on_cloud, detect="phone", classify="phone")
    routed_to_cloud = sum(
        1 for service in ("fleet_detector", "fleet_classifier")
        if home.topology.is_cloud(
            biased._best_remote_host(service, "phone").device.name
        )
    )
    assert biased.cloud_penalty(all_edge) == pytest.approx(
        0.004 * routed_to_cloud
    )
