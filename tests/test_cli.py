"""Tests for the command-line interface and the public package surface."""

import pytest

import repro
from repro.cli import build_parser, main


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_star_import_matches_all(self):
        namespace = {}
        exec("from repro import *", namespace)
        for name in repro.__all__:
            assert name in namespace


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "device catalog" in out
        assert "phone" in out and "desktop" in out and "tv" in out
        assert "./PoseDetectorModule.js" in out

    def test_demo_quick(self, capsys):
        assert main(["demo", "--duration", "6", "--fps", "10"]) == 0
        out = capsys.readouterr().out
        assert "end-to-end:" in out
        assert "pose_detection" in out
        assert "reps=" in out

    def test_fig6_quick(self, capsys):
        assert main(["fig6", "--duration", "6"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out
        assert "total_duration" in out

    def test_table2_quick(self, capsys):
        assert main(["table2", "--duration", "4"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Source FPS" in out
