"""Unit tests for the metrics package."""

import pytest

from repro.metrics import (
    MetricsCollector,
    RateMeter,
    format_comparison,
    format_table,
    summarize,
)


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == pytest.approx(2.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_percentiles_ordered(self):
        summary = summarize(range(100))
        assert summary.p50 <= summary.p90 <= summary.p99 <= summary.maximum

    def test_scaled(self):
        ms = summarize([0.5]).scaled(1e3)
        assert ms.mean == 500.0
        assert ms.count == 1

    def test_as_dict_keys(self):
        d = summarize([1.0]).as_dict()
        assert set(d) == {"count", "mean", "std", "min", "p50", "p90", "p99", "max"}


class TestRateMeter:
    def test_rate_over_window(self):
        meter = RateMeter()
        for t in [0.5, 1.0, 1.5, 2.0]:
            meter.tick(t)
        assert meter.rate(end_time=2.0) == pytest.approx(2.0)
        assert meter.count == 4

    def test_warmup_excluded(self):
        meter = RateMeter()
        for t in [0.1, 0.2, 1.5, 2.0]:
            meter.tick(t)
        assert meter.rate(end_time=2.0, warmup_s=1.0) == pytest.approx(2.0)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            RateMeter().rate(end_time=1.0, warmup_s=1.0)

    def test_ticks_after_end_time_excluded(self):
        """Regression: ticks past ``end_time`` (a meter read mid-run, or a
        meter reused across windows) must not inflate the rate."""
        meter = RateMeter()
        for t in [0.5, 1.0, 1.5, 2.0, 2.5, 7.0]:
            meter.tick(t)
        assert meter.rate(end_time=2.0) == pytest.approx(2.0)
        assert meter.rate(end_time=2.0, warmup_s=1.0) == pytest.approx(3.0)
        # the full window still sees everything
        assert meter.rate(end_time=7.0) == pytest.approx(6.0 / 7.0)

    def test_window_edges_are_inclusive(self):
        meter = RateMeter()
        meter.tick(1.0)
        meter.tick(2.0)
        assert meter.rate(end_time=2.0, warmup_s=1.0) == pytest.approx(2.0)


class TestMetricsCollector:
    def test_stage_recording(self):
        collector = MetricsCollector("p")
        collector.record_stage("pose", 0.05)
        collector.record_stage("pose", 0.07)
        assert collector.stage_names() == ["pose"]
        assert collector.stage_summary("pose").mean == pytest.approx(0.06)
        assert collector.stage_means_ms()["pose"] == pytest.approx(60.0)

    def test_frame_lifecycle(self):
        collector = MetricsCollector("p")
        collector.frame_entered(1, 0.0)
        collector.frame_entered(2, 0.1)
        collector.frame_completed(1, 0.09)
        collector.frame_completed(2, 0.21)
        assert collector.counter("frames_entered") == 2
        assert collector.counter("frames_completed") == 2
        latency = collector.total_latency_summary()
        assert latency.count == 2
        assert latency.mean == pytest.approx(0.10)

    def test_completion_without_entry_still_counts(self):
        collector = MetricsCollector("p")
        collector.frame_completed(99, 1.0)
        assert collector.counter("frames_completed") == 1
        assert collector.total_latencies == []

    def test_throughput(self):
        collector = MetricsCollector("p")
        for i in range(10):
            collector.frame_completed(i, 0.1 * (i + 1))
        assert collector.throughput_fps(end_time=1.0) == pytest.approx(10.0)

    def test_counters(self):
        collector = MetricsCollector("p")
        collector.increment("drops")
        collector.increment("drops", 4)
        assert collector.counter("drops") == 5
        assert collector.counter("missing") == 0
        assert collector.counters() == {"drops": 5}

    def test_frame_dropped_prunes_start_entry(self):
        """Regression: a frame dropped mid-flight used to leak its
        ``_frame_started`` slot for the rest of the run."""
        collector = MetricsCollector("p")
        collector.frame_entered(1, 0.0)
        collector.frame_entered(2, 0.1)
        assert collector.frames_in_flight == 2
        collector.frame_dropped(1, 0.5)
        assert collector.frames_in_flight == 1
        assert collector.counter("frames_dropped") == 1
        # a late completion of the dropped frame records no bogus latency
        collector.frame_completed(1, 9.0)
        assert collector.total_latencies == []
        collector.frame_completed(2, 0.3)
        assert collector.total_latencies == [pytest.approx(0.2)]

    def test_frame_dropped_before_admission_is_safe(self):
        """The source drops frames it never admitted (no credit); those
        still count, without a start entry to prune."""
        collector = MetricsCollector("p")
        collector.frame_dropped(42, 1.0)
        assert collector.counter("frames_dropped") == 1
        assert collector.frames_in_flight == 0

    def test_empty_summaries_do_not_raise(self):
        """Regression: ``stage_summary``/``total_latency_summary`` raised
        ValueError (and ``stage_summary`` grew a phantom stage via the
        defaultdict) when nothing was recorded."""
        collector = MetricsCollector("p")
        summary = collector.stage_summary("never_recorded")
        assert summary.count == 0
        assert summary.mean == 0.0
        assert collector.stage_names() == []  # no defaultdict side effect
        latency = collector.total_latency_summary()
        assert latency.count == 0
        assert collector.stage_means_ms() == {}


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(
            ["Source FPS", "VideoPipe", "Baseline"],
            [[5, 4.53, 4.52], [10, 8.21, 7.79]],
            title="Table 2",
        )
        lines = text.splitlines()
        assert lines[0] == "Table 2"
        assert "Source FPS" in lines[1]
        assert "4.53" in text
        # all data rows share the header's width
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_format_comparison(self):
        line = format_comparison("fps", 11.0, 10.2, note="saturation")
        assert "paper=11.0" in line
        assert "measured=10.2" in line
        assert "saturation" in line
