"""A2 — §5.2.2 / §7: scaling the shared pose service.

Paper: "It also implies that we should scale the services at this point,
which is convenient in our design as the services are stateless. [...] For
future work, we aim to [...] scale up services automatically based on
workload." Both halves are measured here: static replicas and the
autoscaler.
"""

from repro.metrics import format_table
from repro.services import ScalingPolicy

from .conftest import FAST, run_shared


def test_scaling_restores_shared_throughput(benchmark, fitness_recognizer,
                                            gesture_recognizer):
    results = {}

    def run():
        # saturating source rate, one shared pose worker
        results["1 replica"] = run_shared(
            fitness_recognizer, gesture_recognizer, fps=30.0, pose_replicas=1
        )[:2]
        # statically provisioned second replica
        results["2 replicas"] = run_shared(
            fitness_recognizer, gesture_recognizer, fps=30.0, pose_replicas=2
        )[:2]
        # the autoscaler discovers the same answer from queue pressure
        f_fit, f_gest, home = run_shared(
            fitness_recognizer, gesture_recognizer, fps=30.0, pose_replicas=1,
            autoscale_policy=ScalingPolicy(
                check_interval_s=0.25, queue_threshold=0.75, window=4,
                max_replicas=2,
            ),
        )
        results["autoscaled"] = (f_fit, f_gest)
        results["events"] = list(home.autoscaler.events)
        results["final_replicas"] = home.registry.any_host("pose_detector").replicas
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["configuration", "fitness FPS", "gesture FPS"],
        [[name, fps[0], fps[1]]
         for name, fps in results.items()
         if name in ("1 replica", "2 replicas", "autoscaled")],
        title="§7 ablation — pose service scaling at a 30 FPS source",
    ))
    for event in results["events"]:
        print(f"  autoscaler: {event.service} {event.from_replicas}->"
              f"{event.to_replicas} replicas at t={event.at:.2f}s"
              f" (avg queue {event.avg_queue:.1f})")

    benchmark.extra_info["one_replica_fitness_fps"] = round(results["1 replica"][0], 2)
    benchmark.extra_info["two_replicas_fitness_fps"] = round(results["2 replicas"][0], 2)
    benchmark.extra_info["autoscaled_fitness_fps"] = round(results["autoscaled"][0], 2)

    one, two, auto = (results["1 replica"], results["2 replicas"],
                      results["autoscaled"])
    if FAST:
        return  # smoke mode: shape assertions need the full window
    # a second replica lifts both pipelines
    assert two[0] > one[0] + 0.5
    assert two[1] > one[1] + 0.5
    # the autoscaler actually fired and closed most of the gap
    assert results["events"], "autoscaler never scaled"
    assert results["final_replicas"] == 2
    assert auto[0] > one[0]
