"""E4 — §4.1.2: activity recognition accuracy on a withheld test set.

Paper: "The algorithm is trained on all available labelled data except for a
withheld test set. The test accuracy on a withheld test set was above 90%.
This is higher than generally reported in the literature because our system
has a standardized viewing distance and standardized viewing angle."
"""

from repro.metrics import format_table
from repro.vision import ActivityRecognizer, generate_activity_dataset
from repro.vision.pose_estimator import PoseNoiseModel

from .conftest import FAST

ACTIVITIES = ("squat", "jumping_jack", "lunge", "lateral_raise", "stand")


def test_activity_accuracy_above_90(benchmark):
    results = {}

    def run():
        dataset = generate_activity_dataset(
            activities=ACTIVITIES, train_subjects=6, test_subjects=3,
            duration_s=8.0, seed=17,
        )
        recognizer = ActivityRecognizer(k=5).fit(
            dataset.train_windows, dataset.train_labels
        )
        results["accuracy"] = recognizer.accuracy(
            dataset.test_windows, dataset.test_labels
        )
        results["train"] = len(dataset.train_windows)
        results["test"] = len(dataset.test_windows)
        # robustness: double the estimator noise and re-evaluate
        noisy = generate_activity_dataset(
            activities=ACTIVITIES, train_subjects=6, test_subjects=3,
            duration_s=8.0, seed=17,
            noise=PoseNoiseModel(sigma_frac=0.016, dropout_prob=0.02),
        )
        noisy_rec = ActivityRecognizer(k=5).fit(
            noisy.train_windows, noisy.train_labels
        )
        results["accuracy_2x_noise"] = noisy_rec.accuracy(
            noisy.test_windows, noisy.test_labels
        )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["metric", "measured", "paper"],
        [["withheld-subject accuracy", results["accuracy"], "> 0.90"],
         ["accuracy at 2x estimator noise", results["accuracy_2x_noise"], "-"],
         ["train windows", results["train"], "-"],
         ["test windows", results["test"], "-"]],
        title="§4.1.2 — kNN activity recognition on 15-frame pose windows",
        float_format="{:.3f}",
    ))
    benchmark.extra_info["accuracy"] = round(results["accuracy"], 4)
    benchmark.extra_info["accuracy_2x_noise"] = round(
        results["accuracy_2x_noise"], 4)

    if FAST:
        return  # smoke mode: shape assertions need the full window
    assert results["accuracy"] > 0.90  # the paper's bar
