"""Fleet-scale placement ablation: 50 homes, one kernel, three strategies.

The paper's deployment claim (co-location beats the single-host baseline,
§5.1/Fig. 6) is measured on one home; the ROADMAP's north star is fleet
scale. This benchmark instantiates 50 heterogeneous homes in a single
simulation kernel (``repro.fleet``) and compares end-to-end latency under
``single-host`` (EdgeEye baseline), ``colocated`` (the paper's heuristic),
and ``optimized`` (the capacity-aware cost-model search, which degrades to
the co-located plan whenever the heuristic is already optimal).

Set ``REPRO_FLEET_OUT`` to persist the fleet reports as a JSON artifact
(CI uploads it).
"""

import json
import os

from repro.fleet import FleetConfig, run_fleet
from repro.metrics import format_table
from repro.pipeline import COLOCATED, OPTIMIZED, SINGLE_HOST

from .conftest import FAST

HOMES = 50
DURATION_S = 2.0 if FAST else 6.0
STRATEGIES = (SINGLE_HOST, COLOCATED, OPTIMIZED)


def test_fleet_scale_placement_ablation(benchmark, tmp_path):
    reports = {}

    def run():
        for strategy in STRATEGIES:
            reports[strategy] = run_fleet(FleetConfig(
                homes=HOMES, seed=23, strategy=strategy,
                duration_s=DURATION_S,
            ))
        return reports

    benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["strategy", "frames", "drop %", "mean (ms)", "p50 (ms)",
         "p99 (ms)", "migrations"],
        [[strategy,
          reports[strategy].completed,
          reports[strategy].drop_rate * 100,
          reports[strategy].latency.mean * 1e3,
          reports[strategy].latency.p50 * 1e3,
          reports[strategy].latency.p99 * 1e3,
          reports[strategy].migrations]
         for strategy in STRATEGIES],
        title=f"Fleet-scale ablation — {HOMES} homes, one kernel",
        float_format="{:.1f}",
    ))

    for strategy in STRATEGIES:
        report = reports[strategy]
        assert report.homes == HOMES
        assert report.completed > 0, strategy
        benchmark.extra_info[f"{strategy}_mean_ms"] = round(
            report.latency.mean * 1e3, 2)
        benchmark.extra_info[f"{strategy}_p99_ms"] = round(
            report.latency.p99 * 1e3, 2)
        benchmark.extra_info[f"{strategy}_drop_rate"] = round(
            report.drop_rate, 4)

    artifact = os.environ.get("REPRO_FLEET_OUT",
                              str(tmp_path / "fleet_scale.json"))
    os.makedirs(os.path.dirname(os.path.abspath(artifact)), exist_ok=True)
    with open(artifact, "w", encoding="utf-8") as fh:
        json.dump({s: reports[s].as_dict() for s in STRATEGIES}, fh, indent=2)
    print(f"fleet reports written to {artifact}")

    # the acceptance criterion: optimized placement never loses to the
    # single-host baseline on mean end-to-end latency (smoke mode included —
    # the comparison is stable even over a short window)
    assert (reports[OPTIMIZED].latency.mean
            <= reports[SINGLE_HOST].latency.mean)
    if FAST:
        return  # smoke mode: the tighter shape assertions need more frames
    # co-location is the mechanism optimized placement generalizes, so it
    # must also beat the baseline, and nothing should be dropping frames in
    # a fault-free fleet
    assert reports[COLOCATED].latency.mean < reports[SINGLE_HOST].latency.mean
    for strategy in STRATEGIES:
        assert reports[strategy].drop_rate == 0.0, strategy


def test_fleet_metro_scale_cloud_assist(benchmark, tmp_path):
    """Metro scale: a 1000-home fleet spread over 4 worker-process kernels
    (60 homes / 2 shards in smoke mode), edge-only vs cloud-assist.

    The cloud arm attaches a metro-WAN cloud tier to every home with
    cost-aware call routing; the report carries fleet-wide p50/p99 from the
    merged latency samples plus the metered ``cloud_egress_bytes`` and
    ``cost_per_home``. Set ``REPRO_FLEET_METRO_OUT`` to persist both arms'
    reports as a JSON artifact (CI uploads it)."""
    homes = 60 if FAST else 1000
    shards = 2 if FAST else 4
    duration_s = 1.0 if FAST else 1.2
    arms = {"edge_only": False, "cloud_assist": True}
    reports = {}

    def run():
        for arm, cloud in arms.items():
            reports[arm] = run_fleet(FleetConfig(
                homes=homes, seed=23, shards=shards, cloud=cloud,
                duration_s=duration_s, tail_s=1.0,
            ))
        return reports

    benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["arm", "frames", "p50 (ms)", "p99 (ms)", "cloud calls",
         "egress (MB)", "$/home-hr"],
        [[arm,
          reports[arm].completed,
          reports[arm].latency.p50 * 1e3,
          reports[arm].latency.p99 * 1e3,
          reports[arm].cloud_calls,
          reports[arm].cloud_egress_bytes / 1e6,
          reports[arm].cost_per_home]
         for arm in arms],
        title=f"Metro fleet — {homes} homes, {shards} shards",
        float_format="{:.3f}",
    ))

    for arm in arms:
        report = reports[arm]
        assert report.homes == homes
        assert report.completed > 0, arm
        assert report.shards == shards
        assert sum(report.shard_homes.values()) == homes
        benchmark.extra_info[f"{arm}_p50_ms"] = round(
            report.latency.p50 * 1e3, 2)
        benchmark.extra_info[f"{arm}_p99_ms"] = round(
            report.latency.p99 * 1e3, 2)
        benchmark.extra_info[f"{arm}_cost_per_home"] = round(
            report.cost_per_home, 5)
    benchmark.extra_info["cloud_egress_bytes"] = (
        reports["cloud_assist"].cloud_egress_bytes)

    edge, cloud = reports["edge_only"], reports["cloud_assist"]
    # the cloud tier is used, metered, and billed ...
    assert cloud.cloud_calls > 0
    assert cloud.cloud_egress_bytes > 0
    assert cloud.cost_per_home > edge.cost_per_home
    assert edge.cloud_egress_bytes == 0
    # ... and offloading heavy stages from weak hubs pays in tail latency
    assert cloud.latency.p99 <= edge.latency.p99

    artifact = os.environ.get("REPRO_FLEET_METRO_OUT",
                              str(tmp_path / "fleet_metro.json"))
    os.makedirs(os.path.dirname(os.path.abspath(artifact)), exist_ok=True)
    with open(artifact, "w", encoding="utf-8") as fh:
        json.dump(
            {"fast_mode": FAST, "homes": homes, "shards": shards,
             **{arm: reports[arm].as_dict() for arm in arms}},
            fh, indent=2,
        )
    print(f"metro fleet reports written to {artifact}")


def test_fleet_online_optimizer_smoke(benchmark):
    """The online loop at fleet scale: tracing + audit + live re-placement
    enabled for a smaller fleet; the run must stay healthy (no drops, sane
    replan accounting) whether or not any home actually migrates."""
    homes = 6 if FAST else 12
    out = {}

    def run():
        out["report"] = run_fleet(FleetConfig(
            homes=homes, seed=31, strategy=OPTIMIZED,
            duration_s=DURATION_S, online=True, tracing=True, audit=True,
        ))
        return out["report"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    report = out["report"]
    print()
    print(report.describe())
    assert report.completed > 0
    assert report.drop_rate <= 0.05
    # every sink saw strictly increasing frame ids (credit protocol held)
    for result in report.results:
        assert result.sink_frame_ids == sorted(set(result.sink_frame_ids))
    benchmark.extra_info["replans"] = report.replans
    benchmark.extra_info["migrations"] = report.migrations
