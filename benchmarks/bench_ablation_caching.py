"""A4 — ablation: the service-layer fast path (dedup / cache / batching).

Three questions, one table each:

* How much of the static-scene win comes from frame dedup alone vs the
  result cache on top? (Frozen 60 FPS feed, feature ladder.)
* Does micro-batching form real batches under queued shared load, and what
  does the dispatch-size distribution look like? (Fitness in push mode plus
  the gesture pipeline, sharing one pose service.)
* Is the fast path *safely* off by default? (An all-features-off PerfConfig
  must reproduce the untouched home bit-for-bit.)
"""

from repro.metrics import format_histogram, format_table, weighted_mean
from repro.pipeline import PerfConfig

from .conftest import FAST, run_fitness, run_shared

LADDER = (
    ("off", None),
    ("dedup", PerfConfig(frame_dedup=True, result_cache=False,
                         batching=False)),
    ("dedup+cache", PerfConfig(frame_dedup=True, result_cache=True,
                               batching=False)),
)

BATCHING_ONLY = PerfConfig(frame_dedup=False, result_cache=False,
                           batching=True, max_batch=4, max_wait_s=0.008)

ALL_OFF = PerfConfig(frame_dedup=False, result_cache=False, batching=False)


def test_caching_ablation_static_scene(benchmark, fitness_recognizer):
    results = {}

    def run():
        for label, perf in LADDER:
            fps, _, home = run_fitness(fitness_recognizer, "videopipe",
                                       fps=60.0, static_scene=True, perf=perf)
            results[label] = (fps, home.perf_stats())
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    base_fps = results["off"][0]
    print()
    print(format_table(
        ["Fast path", "FPS", "speedup", "dedup ratio", "cache hit rate"],
        [[label, fps, fps / base_fps,
          stats["dedup"]["ratio"], stats["cache"]["hit_rate"]]
         for label, (fps, stats) in results.items()],
        title="Static scene, 60 FPS source — feature ladder",
        float_format="{:.2f}",
    ))
    for label, (fps, _) in results.items():
        benchmark.extra_info[f"fps_{label.replace('+', '_')}"] = round(fps, 2)

    dedup_stats = results["dedup"][1]
    full_fps, full_stats = results["dedup+cache"]
    # dedup alone collapses the frozen feed to ~one stored frame
    assert dedup_stats["dedup"]["ratio"] > 0.9
    assert dedup_stats["dedup"]["bytes_saved"] > 0
    if FAST:
        return  # smoke mode: shape assertions need the full window
    # the cache is where the throughput win comes from
    assert full_stats["cache"]["hit_rate"] > 0.5
    assert full_fps >= 2.0 * base_fps
    assert full_fps > results["dedup"][0]


def test_batching_forms_batches_under_shared_load(benchmark,
                                                  fitness_recognizer,
                                                  gesture_recognizer):
    """Fitness (push mode: frames queue at the pose stage) plus gesture,
    sharing one single-worker pose service. With batching on, queued
    requests coalesce and the dispatch-size histogram shows real batches."""
    results = {}

    def run():
        f0, g0, _ = run_shared(fitness_recognizer, gesture_recognizer,
                               fps=20.0, fitness_mode="push")
        f1, g1, home = run_shared(fitness_recognizer, gesture_recognizer,
                                  fps=20.0, fitness_mode="push",
                                  perf=BATCHING_ONLY)
        results["off"] = (f0, g0)
        results["on"] = (f1, g1)
        results["stats"] = home.perf_stats()["batching"]
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    stats = results["stats"]
    sizes = {int(k): v for k, v in stats["size_counts"].items()}
    print()
    print(format_table(
        ["Batching", "fitness FPS", "gesture FPS"],
        [["off", *results["off"]], ["on", *results["on"]]],
        title="Shared pose service, fitness in push mode",
        float_format="{:.2f}",
    ))
    print(f"  dispatch sizes: {format_histogram(sizes)}"
          f"  (mean {weighted_mean(sizes):.2f})")
    benchmark.extra_info["avg_batch_size"] = round(weighted_mean(sizes), 2)
    benchmark.extra_info["fitness_fps_on"] = round(results["on"][0], 2)

    if FAST:
        return  # smoke mode: shape assertions need the full window
    # real batches formed: the queued pipeline amortizes pose compute
    assert max(sizes) >= 2
    assert sizes.get(2, 0) > 10
    # and the queued pipeline gets faster for it
    assert results["on"][0] > results["off"][0] * 1.1


def test_all_features_off_is_bit_for_bit_the_seed(benchmark,
                                                  fitness_recognizer):
    """enable_fast_path(all off) must be indistinguishable from never
    calling it: identical frame counts and identical latency floats."""
    results = {}

    def run():
        for label, perf in (("seed", None), ("gated", ALL_OFF)):
            fps, metrics, _ = run_fitness(fitness_recognizer, "videopipe",
                                          fps=20.0, perf=perf)
            results[label] = (
                fps,
                metrics.counter("frames_completed"),
                tuple(metrics.total_latencies),
            )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(f"  seed : fps={results['seed'][0]:.4f}"
          f" frames={results['seed'][1]}")
    print(f"  gated: fps={results['gated'][0]:.4f}"
          f" frames={results['gated'][1]}")
    # exact float equality, not approx: the gate must not perturb a single
    # RNG draw or event ordering
    assert results["seed"] == results["gated"]
