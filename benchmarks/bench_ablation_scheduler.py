"""A5 — §7 ablation: heuristic co-location vs cost-model scheduling.

The paper's deployment follows services by name. When a service runs on
*several* devices of different speeds, that heuristic can land on a slow
replica; the §7 "scheduling" component implemented in
``repro.pipeline.scheduler`` searches placements against a latency model
instead. This benchmark measures the end-to-end difference on a home where
the pose detector is replicated on a slow laptop ("athena") and a fast
desktop ("zeus").
"""

from repro import Module, VideoPipe, register_module
from repro.devices import DeviceSpec
from repro.metrics import format_table
from repro.pipeline import ModuleConfig, PipelineConfig
from repro.services import PoseDetectorService

from .conftest import FAST

DURATION_S = 6.0 if FAST else 20.0
WARMUP_S = 2.0


@register_module("./SchedBenchSink.js")
class SinkModule(Module):
    """Terminal module: account the frame, free it, refill the credit."""

    def event_received(self, ctx, event):
        payload = event.payload
        if "frame" in payload:
            ctx.release(payload["frame"])
        ctx.metrics.frame_completed(payload["frame_id"], ctx.now)
        ctx.signal_source()


def pipeline_config() -> PipelineConfig:
    return PipelineConfig(
        name="sched-bench",
        modules=[
            ModuleConfig(name="cam_module", include="./VideoStreamingModule.js",
                         endpoint="bind#tcp://*:6400", device="cam",
                         next_modules=["pose_module"],
                         params={"fps": 30.0, "duration_s": DURATION_S}),
            ModuleConfig(name="pose_module", include="./PoseDetectorModule.js",
                         services=["pose_detector"],
                         endpoint="bind#tcp://*:6401",
                         next_modules=["sink_module"]),
            ModuleConfig(name="sink_module", include="./SchedBenchSink.js",
                         endpoint="bind#tcp://*:6402", device="cam",
                         next_modules=[]),
        ],
        source="cam_module",
    )


def build_home(seed=29) -> VideoPipe:
    home = VideoPipe(seed=seed)
    home.add_device(DeviceSpec(name="athena", kind="laptop", cpu_factor=4.0,
                               cores=4, supports_containers=True))
    home.add_device(DeviceSpec(name="zeus", kind="desktop", cpu_factor=1.0,
                               cores=8, supports_containers=True))
    home.add_device(DeviceSpec(name="cam", kind="phone", cpu_factor=2.5,
                               cores=8))
    for device in ("athena", "zeus"):
        home.deploy_service(PoseDetectorService(), device)
    return home


def edge_bytes(src_device: str, dst_device: str) -> int:
    """Payload hint for the scheduler: only the camera's out-edge carries
    full frames; downstream edges carry keypoints."""
    return 42_000 if src_device == "cam" else 600


def run_with_strategy(strategy: str):
    home = build_home()
    placement = None
    if strategy == "cost-optimized":
        from repro.pipeline import plan_cost_optimized

        placement = plan_cost_optimized(
            pipeline_config(), home.devices, home.registry, home.topology,
            default_device="cam", edge_bytes=edge_bytes,
        )
    pipeline = home.deploy_pipeline(pipeline_config(), strategy=strategy,
                                    default_device="cam", placement=placement)
    home.run(until=DURATION_S + 1.0)
    return {
        "pose_device": pipeline.device_of("pose_module"),
        "fps": pipeline.metrics.throughput_fps(DURATION_S + 1.0, WARMUP_S),
        "latency_ms": pipeline.metrics.total_latency_summary().mean * 1e3,
    }


def test_cost_scheduler_beats_heuristic_on_replicated_services(benchmark):
    results = {}

    def run():
        results["heuristic (colocated)"] = run_with_strategy("colocated")
        results["cost-optimized"] = run_with_strategy("cost-optimized")
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["placement", "pose module on", "FPS", "latency (ms)"],
        [[name, r["pose_device"], r["fps"], r["latency_ms"]]
         for name, r in results.items()],
        title="§7 ablation — placement strategy with a replicated pose service",
    ))
    heuristic = results["heuristic (colocated)"]
    optimized = results["cost-optimized"]
    benchmark.extra_info["heuristic_fps"] = round(heuristic["fps"], 2)
    benchmark.extra_info["optimized_fps"] = round(optimized["fps"], 2)

    if FAST:
        return  # smoke mode: shape assertions need the full window
    # the heuristic lands on the alphabetical (slow) replica
    assert heuristic["pose_device"] == "athena"
    assert optimized["pose_device"] == "zeus"
    # the scheduled placement is materially faster end-to-end
    assert optimized["fps"] > heuristic["fps"] * 1.5
    assert optimized["latency_ms"] < heuristic["latency_ms"] * 0.7
