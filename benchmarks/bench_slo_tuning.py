"""SLO guardian under a load ramp: static vs closed-loop control.

The fitness pipeline runs alone, then three gesture "guest" pipelines land
on the same testbed at 1.5x the base frame rate — roughly a 3x compute
ramp on the shared desktop. The **static** variant has no controller and
no autoscaler: its p99 blows through the SLO for the whole ramp. The
**controller** variant runs the autoscaler plus the
:class:`~repro.slo.controller.SLOController`, which walks the degradation
ladder (replica scale-up, then resolution) until the SLO holds, and
reverts every rung after the guests leave.

A third leg exercises admission control: with a utilization threshold set
just above the steady-state load, a late guest is rejected at deploy time
(:class:`~repro.errors.AdmissionError`) instead of being allowed to sink
the pipelines already holding an SLO.

Set ``REPRO_SLO_OUT`` to persist the attainment numbers as a JSON
artifact (CI uploads it).
"""

import json
import os

from repro.core.videopipe import VideoPipe
from repro.apps.fitness import (
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.apps.gesture import gesture_pipeline_config
from repro.errors import AdmissionError
from repro.metrics import format_table
from repro.slo import SLO, SLOConfig
from repro.slo.spec import attainment

from .conftest import FAST, fitness_recognizer, gesture_recognizer  # noqa: F401

#: The pipeline's objective: tight enough that the 3-guest ramp breaks it
#: on an uncontrolled testbed, loose enough that the degraded ladder
#: configuration holds it.
SLO_TARGET = SLO(p99_latency_s=0.15, min_fps=4.0, window_s=2.0)

#: Controller knobs tuned for a bench-scale run: a 0.25 s check interval
#: and sub-second hysteresis so the ladder settles within ~2 s of the
#: ramp. ``use_optimizer=False`` keeps the replan rung out of the ladder —
#: this scenario stresses the knob rungs, not placement.
CONTROLLER_CONFIG = SLOConfig(
    check_interval_s=0.25,
    hysteresis_s=0.75,
    recovery_hold_s=1.0,
    use_optimizer=False,
)

BASE_FPS = 10.0
GUEST_FPS = 15.0
GUESTS = 3
RAMP_START_S = 8.0
RAMP_END_S = 14.0 if FAST else 20.0
#: Seconds after the ramp start before attainment is scored: the ladder
#: needs a couple of hysteresis periods to walk down to a configuration
#: that holds.
STABILIZE_S = 4.0
END_S = RAMP_END_S + 10.0


def guest_config(index: int, fps: float = GUEST_FPS):
    """One gesture pipeline with module names made unique per guest (module
    names are per-device unique; three copies of the same app must not
    collide on the shared hosts)."""
    config = gesture_pipeline_config(
        name=f"guest{index}", fps=fps,
        base_port=6000 + 20 * index, source_device="tv",
    )
    for module in config.modules:
        module.name = f"g{index}_{module.name}"
        module.next_modules = [f"g{index}_{n}" for n in module.next_modules]
    config.source = f"g{index}_gesture_video_module"
    return config


def build_home(fitness_recognizer, gesture_recognizer):
    from repro.apps.gesture import install_gesture_services

    home = VideoPipe.paper_testbed(seed=7)
    install_fitness_services(home, recognizer=fitness_recognizer)
    install_gesture_services(home, recognizer=gesture_recognizer)
    return home


def run_ramp(home, *, controlled: bool):
    """Deploy fitness, ramp the guests in and out, return (home, pipeline)."""
    if controlled:
        home.enable_autoscaling()
        home.enable_slo(config=CONTROLLER_CONFIG)
    pipeline = home.deploy_pipeline(
        fitness_pipeline_config(fps=BASE_FPS), slo=SLO_TARGET,
        admission="bypass",
    )

    def guests_arrive():
        for index in range(GUESTS):
            home.deploy_pipeline(guest_config(index), admission="bypass")

    def guests_leave():
        for candidate in home.pipelines:
            if candidate.config.name.startswith("guest"):
                candidate.stop()

    home.kernel.schedule(RAMP_START_S, guests_arrive)
    home.kernel.schedule(RAMP_END_S, guests_leave)
    home.run_for(END_S)
    return pipeline


def ramp_attainment(pipeline) -> float:
    return attainment(
        SLO_TARGET, pipeline.metrics.latency_events(),
        start=RAMP_START_S + STABILIZE_S, end=RAMP_END_S,
    )


def test_slo_guardian_ramp(benchmark, tmp_path,
                           fitness_recognizer, gesture_recognizer):
    results = {}

    def run():
        static_pipe = run_ramp(
            build_home(fitness_recognizer, gesture_recognizer),
            controlled=False,
        )
        controlled_home = build_home(fitness_recognizer, gesture_recognizer)
        controlled_pipe = run_ramp(controlled_home, controlled=True)
        results["static"] = {
            "ramp_attainment": ramp_attainment(static_pipe),
            "actions": 0,
        }
        results["controller"] = {
            "ramp_attainment": ramp_attainment(controlled_pipe),
            "actions": len(controlled_home.slo.actions),
        }
        results["_home"] = controlled_home
        results["_pipe"] = controlled_pipe
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    static = results["static"]["ramp_attainment"]
    controlled = results["controller"]["ramp_attainment"]
    actions = results["controller"]["actions"]

    print()
    print(format_table(
        ["variant", "ramp attainment %", "ladder actions"],
        [["static", static * 100, 0],
         ["controller", controlled * 100, actions]],
        title=(f"SLO guardian — {GUESTS} guests at {GUEST_FPS:g} fps over"
               f" [{RAMP_START_S:g}, {RAMP_END_S:g}] s"),
        float_format="{:.1f}",
    ))

    artifact = os.environ.get(
        "REPRO_SLO_OUT", str(tmp_path / "slo_tuning.json")
    )
    os.makedirs(os.path.dirname(os.path.abspath(artifact)), exist_ok=True)
    with open(artifact, "w") as fh:
        json.dump({
            "slo": SLO_TARGET.as_dict(),
            "guests": GUESTS,
            "guest_fps": GUEST_FPS,
            "ramp_s": [RAMP_START_S, RAMP_END_S],
            "static_attainment": static,
            "controller_attainment": controlled,
            "ladder_actions": actions,
            "fast": FAST,
        }, fh, indent=2)

    benchmark.extra_info["static_attainment"] = static
    benchmark.extra_info["controller_attainment"] = controlled
    benchmark.extra_info["ladder_actions"] = actions

    home, pipeline = results["_home"], results["_pipe"]
    assert actions > 0, "controller never acted on the ramp"
    # the ladder is fully reverted after the guests leave: full fidelity
    from repro.slo.ladder import find_source

    enrollment = home.slo.enrollment(pipeline.name)
    source = find_source(pipeline)
    assert enrollment.depth == 0
    assert not source.paused
    assert source.fps == BASE_FPS
    assert (source.camera.width, source.camera.height) == (640, 480)
    for host in home.registry.hosts_of("pose_detector"):
        assert host.service.reference_cost_s == 0.053

    if FAST:
        return  # smoke mode: a shorter ramp; skip the attainment gates
    assert static < 0.50, f"static baseline held {static:.1%}; ramp too weak"
    assert controlled >= 0.90, f"controller held only {controlled:.1%}"


def test_slo_admission_gate(benchmark, fitness_recognizer,
                            gesture_recognizer):
    """With a utilization threshold, a guest that would sink the testbed is
    rejected at deploy time and the decision is auditable."""
    outcome = {}

    def run():
        home = build_home(fitness_recognizer, gesture_recognizer)
        home.enable_slo(config=SLOConfig(admission_threshold=0.25))
        home.deploy_pipeline(
            fitness_pipeline_config(fps=BASE_FPS), slo=SLO_TARGET,
        )
        admitted = home.deploy_pipeline(guest_config(0, fps=12.0))
        rejected = None
        try:
            home.deploy_pipeline(guest_config(1, fps=15.0))
        except AdmissionError as exc:
            rejected = exc.decision
        home.run_for(4.0)
        outcome["admitted"] = admitted is not None
        outcome["rejected"] = rejected
        outcome["status"] = home.slo_status()["admission"]
        return outcome

    benchmark.pedantic(run, rounds=1, iterations=1)

    rejected = outcome["rejected"]
    status = outcome["status"]
    print()
    print(format_table(
        ["metric", "value"],
        [["requested", status["requested"]],
         ["rejected", status["rejected"]],
         ["worst utilization", rejected.worst_utilization if rejected else 0],
         ["threshold", status["threshold"]]],
        title="Admission gate — threshold 0.25",
        float_format="{:.3f}",
    ))

    benchmark.extra_info["deploys_rejected"] = status["rejected"]

    assert outcome["admitted"]
    assert rejected is not None, "overloading guest was admitted"
    assert rejected.worst_utilization > rejected.threshold
    assert status["rejected"] >= 1
    assert status["requested"] == status["deployed"] + status["rejected"]
