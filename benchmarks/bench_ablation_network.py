"""A6 — §1 ablation: sensitivity to home-network quality.

The paper motivates in-home processing with "latency requirements for
interactive applications, bandwidth limitations and privacy restrictions"
(§1). This benchmark sweeps the Wi-Fi from poor (20 Mbit/s, 8 ms) to
excellent (300 Mbit/s, 0.5 ms) and measures both architectures: the
baseline ships every frame across the network **twice per frame** (pose
request + display request), so it degrades faster as the network worsens.
"""

from repro.apps import FitnessApp, fitness_pipeline_config, install_fitness_services
from repro.core import VideoPipe
from repro.metrics import format_table
from repro.net import LinkSpec

from .conftest import FAST

DURATION_S = 6.0 if FAST else 20.0

NETWORKS = {
    "poor (20 Mbps, 8 ms)": LinkSpec(latency_s=0.008, jitter_cv=0.25,
                                     bandwidth_bps=20e6, loss_prob=0.02),
    "paper-like (120 Mbps, 1.2 ms)": LinkSpec(latency_s=0.0012, jitter_cv=0.25,
                                              bandwidth_bps=120e6,
                                              loss_prob=0.005),
    "excellent (300 Mbps, 0.5 ms)": LinkSpec(latency_s=0.0005, jitter_cv=0.15,
                                             bandwidth_bps=300e6),
}


def run(recognizer, architecture, wifi):
    home = VideoPipe.paper_testbed(seed=11, wifi=wifi)
    services = install_fitness_services(
        home, recognizer=recognizer,
        baseline_layout=(architecture == "baseline"),
    )
    app = FitnessApp(home, services, architecture=architecture)
    pipeline = app.deploy(fitness_pipeline_config(fps=30.0,
                                                  duration_s=DURATION_S))
    home.run(until=DURATION_S + 1.0)
    return pipeline.metrics.throughput_fps(DURATION_S + 1.0, warmup_s=2.0)


def test_baseline_degrades_faster_on_poor_networks(benchmark,
                                                   fitness_recognizer):
    results = {}

    def sweep():
        for name, wifi in NETWORKS.items():
            results[name] = {
                arch: run(fitness_recognizer, arch, wifi)
                for arch in ("videopipe", "baseline")
            }
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print(format_table(
        ["network", "VideoPipe", "Baseline", "advantage"],
        [[name, r["videopipe"], r["baseline"],
          r["videopipe"] / r["baseline"]]
         for name, r in results.items()],
        title="§1 ablation — architecture vs home-network quality (30 FPS source)",
    ))
    for name, r in results.items():
        key = name.split(" ")[0]
        benchmark.extra_info[f"{key}_videopipe"] = round(r["videopipe"], 2)
        benchmark.extra_info[f"{key}_baseline"] = round(r["baseline"], 2)

    poor = results["poor (20 Mbps, 8 ms)"]
    good = results["excellent (300 Mbps, 0.5 ms)"]
    if FAST:
        return  # smoke mode: shape assertions need the full window
    # VideoPipe wins everywhere ...
    for r in results.values():
        assert r["videopipe"] > r["baseline"]
    # ... and its advantage *grows* as the network degrades, because the
    # baseline crosses the network with the frame twice per frame
    poor_advantage = poor["videopipe"] / poor["baseline"]
    good_advantage = good["videopipe"] / good["baseline"]
    assert poor_advantage > good_advantage * 1.02
    # both remain usable on the good network
    assert good["videopipe"] > 10.0
    assert good["baseline"] > 8.0
