"""R1 — fault injection: MTTR and the throughput dip under a device crash.

Not a paper table — the robustness counterpart to E2: the desktop hosting
the pose/activity services crashes mid-run and the §7 loop (heartbeat
detection → evacuation → standby laptop) brings the stream back. Reported
per detection period: time-to-detect, MTTR as the detector measured it, and
throughput pre-fault / during the outage / post-recovery.
"""

from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.core import VideoPipe
from repro.faults import FaultPlan
from repro.metrics import RecoveryTracker, format_table
from repro.services import ActivityClassifierService, PoseDetectorService

from .conftest import FAST

CRASH_AT = 5.0
DOWN_FOR = 6.0
DURATION_S = 16.0 if FAST else 25.0
DETECTION_PERIODS = (0.25, 0.5, 1.0)


def run_crash_scenario(recognizer, period_s, seed=11, fps=10.0):
    """One crash/recover run; returns the RecoveryTracker report plus
    throughput in the pre/during/post windows and the time-to-detect."""
    home = VideoPipe.paper_testbed(seed=seed)
    home.add_device("laptop")
    services = install_fitness_services(home, recognizer=recognizer)
    home.deploy_service(PoseDetectorService(), "laptop")
    home.deploy_service(ActivityClassifierService(recognizer), "laptop")
    config = fitness_pipeline_config(fps=fps, duration_s=DURATION_S)
    config.module("pose_detector_module").device = "desktop"
    config.module("activity_detector_module").device = "desktop"
    config.module("video_streaming_module").params["credit_timeout_s"] = 1.0
    pipeline = FitnessApp(home, services).deploy(config)

    detector = home.enable_failure_detection(
        home_device="tv", period_s=period_s, miss_threshold=2)
    home.enable_self_healing(pipeline, cooldown_s=0.5)
    injector = home.enable_fault_injection(
        FaultPlan().device_crash(CRASH_AT, "desktop", down_for=DOWN_FOR))
    tracker = (RecoveryTracker()
               .watch_detector(detector)
               .watch_injector(injector)
               .watch_pipeline(pipeline))

    def frames():
        return pipeline.metrics.counter("frames_completed")

    home.run(until=CRASH_AT)
    pre = frames()
    home.run(until=CRASH_AT + DOWN_FOR)
    during = frames()
    home.run(until=DURATION_S)
    post = frames()

    down_events = [e for e in detector.events if e.kind == "down"]
    report = tracker.report()
    report["time_to_detect_s"] = (
        down_events[0].at - CRASH_AT if down_events else float("nan"))
    report["pre_fps"] = pre / CRASH_AT
    report["during_fps"] = (during - pre) / DOWN_FOR
    report["post_fps"] = (post - during) / (DURATION_S - CRASH_AT - DOWN_FOR)
    return report


def test_fault_recovery_mttr_and_throughput_dip(benchmark, fitness_recognizer):
    reports = {}

    def run():
        for period in DETECTION_PERIODS:
            reports[period] = run_crash_scenario(fitness_recognizer, period)
        return reports

    benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["Probe period (s)", "Detect (s)", "MTTR (s)", "Pre FPS",
         "Outage FPS", "Post FPS", "Migrations"],
        [[period,
          reports[period]["time_to_detect_s"],
          reports[period]["mttr_mean_s"],
          reports[period]["pre_fps"],
          reports[period]["during_fps"],
          reports[period]["post_fps"],
          reports[period]["recovery_migrations"]]
         for period in DETECTION_PERIODS],
        title="R1 — crash recovery vs detection period",
    ))

    for period, report in reports.items():
        benchmark.extra_info[f"mttr_{period}s"] = round(
            report["mttr_mean_s"], 2)
        benchmark.extra_info[f"detect_{period}s"] = round(
            report["time_to_detect_s"], 2)
        benchmark.extra_info[f"post_fps_{period}s"] = round(
            report["post_fps"], 2)

    if FAST:
        return  # smoke mode: shape assertions need the full window
    for period, report in reports.items():
        # the loop closed: fault seen, modules evacuated, stream recovered
        assert report["detections"] == 1, period
        assert report["recoveries"] == 1, period
        assert report["recovery_migrations"] == 2, period
        # detection bounded by ~threshold probe periods (+ timeout slack)
        assert report["time_to_detect_s"] < 3 * period + 0.5, period
        # MTTR is dominated by the injected outage length, as it should be
        assert DOWN_FOR - 1.0 < report["mttr_mean_s"] < DOWN_FOR + 2 * period + 1.0, period
        # throughput dips during the outage and recovers to >= 70% after
        assert report["during_fps"] < report["pre_fps"], period
        assert report["post_fps"] >= 0.7 * report["pre_fps"], period
    # a faster probe period detects faster
    assert (reports[0.25]["time_to_detect_s"]
            <= reports[1.0]["time_to_detect_s"])
