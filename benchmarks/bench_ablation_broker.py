"""A1 — §3.2 ablation: brokerless (ZeroMQ) vs broker-relayed transport.

Paper: "While publish subscribe systems such as Kafka or queue based system
RabbitMQ have brokers in their systems, these brokers will incur extra data
communication overheads because the data was first sent to the broker and
then forwarded to the final destination."
"""

from repro.apps import FitnessApp, fitness_pipeline_config, install_fitness_services
from repro.core import VideoPipe
from repro.devices import DeviceSpec
from repro.metrics import format_table

from .conftest import DURATION_S, FAST, WARMUP_S


def run_with_transport(recognizer, transport: str):
    """The fitness pipeline over either transport. The broker runs on a
    dedicated hub machine, as a Kafka/RabbitMQ deployment would."""
    kwargs = {"transport": transport}
    if transport == "broker":
        kwargs["broker_device"] = "hub"
    home = VideoPipe(seed=11, **kwargs)
    if transport == "broker":
        home.add_device(DeviceSpec(name="hub", kind="desktop", cpu_factor=1.0,
                                   cores=8, supports_containers=True))
    for kind in ("phone", "desktop", "tv"):
        home.add_device(kind)
    services = install_fitness_services(home, recognizer=recognizer)
    app = FitnessApp(home, services)
    pipeline = app.deploy(fitness_pipeline_config(fps=20.0, duration_s=DURATION_S))
    home.run(until=DURATION_S + 1.0)
    return {
        "fps": pipeline.metrics.throughput_fps(DURATION_S + 1.0, WARMUP_S),
        "total_ms": pipeline.metrics.stage_means_ms()["total_duration"],
    }


def test_brokerless_beats_brokered(benchmark, fitness_recognizer):
    results = {}

    def run():
        results["zeromq"] = run_with_transport(fitness_recognizer, "zeromq")
        results["broker"] = run_with_transport(fitness_recognizer, "broker")
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["transport", "end-to-end FPS", "total latency (ms)"],
        [["ZeroMQ (brokerless)", results["zeromq"]["fps"],
          results["zeromq"]["total_ms"]],
         ["Kafka/RabbitMQ-style broker", results["broker"]["fps"],
          results["broker"]["total_ms"]]],
        title="§3.2 ablation — transport architecture (20 FPS source)",
    ))
    benchmark.extra_info["zeromq_fps"] = round(results["zeromq"]["fps"], 2)
    benchmark.extra_info["broker_fps"] = round(results["broker"]["fps"], 2)

    if FAST:
        return  # smoke mode: shape assertions need the full window
    # the broker relays every message through an extra device: lower FPS,
    # higher latency
    assert results["zeromq"]["fps"] > results["broker"]["fps"] * 1.05
    assert results["broker"]["total_ms"] > results["zeromq"]["total_ms"] * 1.1
