"""Shared benchmark harness pieces.

Every benchmark regenerates one table/figure of the paper (see DESIGN.md's
experiment index) by running the simulated home and printing the same rows
the paper reports. Wall-time numbers from pytest-benchmark measure the
simulator itself; the *reproduction* quantities live in each benchmark's
printed table and ``extra_info``.
"""

import os

import pytest

from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    gesture_pipeline_config,
    install_fitness_services,
    install_gesture_services,
    train_activity_recognizer,
    train_gesture_recognizer,
)
from repro.core import VideoPipe
from repro.devices import DeviceSpec

#: CI smoke mode (``REPRO_BENCH_FAST=1``): short simulations that exercise
#: every benchmark's code path but skip the paper-shape assertions, whose
#: statistics need the full measurement window.
FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

#: Simulated measurement length per configuration (seconds).
DURATION_S = 6.0 if FAST else 25.0
WARMUP_S = 2.0


@pytest.fixture(scope="session")
def fitness_recognizer():
    return train_activity_recognizer(seed=11)


@pytest.fixture(scope="session")
def gesture_recognizer():
    return train_gesture_recognizer(seed=11)


def gesture_camera_spec():
    return DeviceSpec(name="camera", kind="phone", cpu_factor=2.5, cores=8,
                      supports_containers=False)


def run_fitness(recognizer, architecture, fps, seed=11, duration=DURATION_S,
                transport="zeromq", broker_device=None, pose_replicas=1,
                perf=None, static_scene=False, mode="signal", trace=False):
    """One fitness-pipeline run; returns (throughput_fps, metrics, home)."""
    kwargs = {"transport": transport}
    if broker_device:
        kwargs["broker_device"] = broker_device
    home = VideoPipe.paper_testbed(seed=seed, **kwargs)
    if trace:
        home.enable_tracing()
    if perf is not None:
        home.enable_fast_path(perf)
    services = install_fitness_services(
        home, recognizer=recognizer,
        baseline_layout=(architecture == "baseline"),
        pose_replicas=pose_replicas,
    )
    app = FitnessApp(home, services, architecture=architecture)
    pipeline = app.deploy(fitness_pipeline_config(
        fps=fps, duration_s=duration, static_scene=static_scene, mode=mode
    ))
    home.run(until=duration + 1.0)
    throughput = pipeline.metrics.throughput_fps(duration + 1.0, WARMUP_S)
    return throughput, pipeline.metrics, home


def run_shared(fitness_recognizer, gesture_recognizer, fps, seed=13,
               duration=DURATION_S, pose_replicas=1, autoscale_policy=None,
               perf=None, fitness_mode="signal"):
    """Fitness + gesture pipelines sharing one pose service.

    Returns (fitness_fps, gesture_fps, home).
    """
    home = VideoPipe.paper_testbed(seed=seed)
    home.add_device(gesture_camera_spec())
    if perf is not None:
        home.enable_fast_path(perf)
    fitness = install_fitness_services(home, recognizer=fitness_recognizer,
                                       pose_replicas=pose_replicas)
    install_gesture_services(home, recognizer=gesture_recognizer)
    if autoscale_policy is not None:
        home.enable_autoscaling(autoscale_policy)
    app = FitnessApp(home, fitness)
    p_fit = app.deploy(fitness_pipeline_config(fps=fps, duration_s=duration,
                                               mode=fitness_mode))
    p_gest = home.deploy_pipeline(
        gesture_pipeline_config(fps=fps, duration_s=duration)
    )
    home.run(until=duration + 1.0)
    f_fit = p_fit.metrics.throughput_fps(duration + 1.0, WARMUP_S)
    f_gest = p_gest.metrics.throughput_fps(duration + 1.0, WARMUP_S)
    return f_fit, f_gest, home
