"""A4 — §3 ablation: frame reference-ids vs full-copy hand-off on-device.

Paper: "To minimize data copying between different components, rather than
copying the full image frames to the module, we pass on a reference id that
identifies the frame."

A chain of co-located relay modules forwards frames either by reference
(the VideoPipe design) or by value (each hop JPEG-encodes and re-decodes),
and we measure the per-hop cost difference.
"""

from repro import Module, VideoPipe, register_module
from repro.frames import SyntheticCamera, encode_frame
from repro.metrics import format_table
from repro.motion import Squat
from repro.pipeline import ModuleConfig, PipelineConfig

from .conftest import FAST

HOPS = 6
FRAMES = 100


@register_module("./RefChainSource.js")
class ChainSource(Module):
    """Feeds frames into the relay chain (by ref or by value)."""

    def __init__(self, by_reference=True, frames=FRAMES, interval_s=0.05):
        self.by_reference = by_reference
        self.frames = frames
        self.interval_s = interval_s

    def init(self, ctx):
        camera = SyntheticCamera(ctx.device_name, Squat())

        def feed():
            for i in range(1, self.frames + 1):
                frame = camera.capture(i, ctx.now)
                ctx.metrics.frame_entered(i, ctx.now)
                if self.by_reference:
                    payload = {"frame": ctx.store_frame(frame), "frame_id": i}
                else:
                    encoded = encode_frame(frame)
                    yield ctx._runtime.device.cpu.execute_fixed(
                        encoded.encode_cost_s)
                    payload = {"frame_bytes": encoded, "frame_id": i}
                ctx.call_next(payload)
                yield self.interval_s

        ctx._runtime.kernel.process(feed(), name="chain-feed")

    def event_received(self, ctx, event):
        pass


@register_module("./RefChainRelay.js")
class ChainRelay(Module):
    """One hop: receives the frame and forwards it downstream."""

    def __init__(self, by_reference=True, last=False):
        self.by_reference = by_reference
        self.last = last

    def event_received(self, ctx, event):
        def flow():
            payload = event.payload
            if self.by_reference:
                out = {"frame": payload["frame"], "frame_id": payload["frame_id"]}
            else:
                # by-value hop: the arriving EncodedFrame was decoded by the
                # runtime into the store (under the same payload key);
                # re-encode to hand a full copy onward
                ref = payload["frame_bytes"]
                frame = ctx.get_frame(ref)
                encoded = encode_frame(frame)
                yield ctx._runtime.device.cpu.execute_fixed(encoded.encode_cost_s)
                ctx.release(ref)
                out = {"frame_bytes": encoded, "frame_id": payload["frame_id"]}
            if self.last:
                if self.by_reference:
                    ctx.release(out["frame"])
                ctx.metrics.frame_completed(payload["frame_id"], ctx.now)
            else:
                ctx.call_next(out)

        return flow()


def chain_config(by_reference: bool) -> PipelineConfig:
    mode = "ref" if by_reference else "copy"
    modules = [
        ModuleConfig(
            name=f"{mode}_source", include="./RefChainSource.js",
            endpoint="bind#tcp://*:0",
            next_modules=[f"{mode}_relay_1"],
            params={"by_reference": by_reference},
        )
    ]
    for i in range(1, HOPS + 1):
        last = i == HOPS
        modules.append(
            ModuleConfig(
                name=f"{mode}_relay_{i}", include="./RefChainRelay.js",
                endpoint="bind#tcp://*:0",
                next_modules=[] if last else [f"{mode}_relay_{i + 1}"],
                params={"by_reference": by_reference, "last": last},
            )
        )
    return PipelineConfig(name=f"chain-{mode}", modules=modules)


def run_chain(by_reference: bool):
    home = VideoPipe(seed=23)
    home.add_device("desktop")
    pipeline = home.deploy_pipeline(chain_config(by_reference),
                                    default_device="desktop")
    home.run(until=FRAMES * 0.05 + 2.0)
    metrics = pipeline.metrics
    latency_ms = metrics.total_latency_summary().mean * 1e3
    store = home.device("desktop").frame_store
    return {
        "latency_ms": latency_ms,
        "per_hop_ms": latency_ms / HOPS,
        "frames": metrics.counter("frames_completed"),
        "cpu_busy_s": home.device("desktop").cpu.busy_seconds,
        "peak_store": store.peak_occupancy,
    }


def test_reference_passing_beats_copying(benchmark):
    results = {}

    def run():
        results["reference"] = run_chain(by_reference=True)
        results["copy"] = run_chain(by_reference=False)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    ref, copy = results["reference"], results["copy"]
    print()
    print(format_table(
        ["metric", "reference ids", "full copies"],
        [["chain latency (ms)", ref["latency_ms"], copy["latency_ms"]],
         ["per-hop latency (ms)", ref["per_hop_ms"], copy["per_hop_ms"]],
         ["device CPU busy (s)", ref["cpu_busy_s"], copy["cpu_busy_s"]],
         ["frames completed", ref["frames"], copy["frames"]]],
        title=f"§3 ablation — {HOPS}-hop co-located relay chain",
        float_format="{:.2f}",
    ))
    benchmark.extra_info["ref_per_hop_ms"] = round(ref["per_hop_ms"], 3)
    benchmark.extra_info["copy_per_hop_ms"] = round(copy["per_hop_ms"], 3)

    if FAST:
        return  # smoke mode: shape assertions need the full window
    assert ref["frames"] == FRAMES and copy["frames"] == FRAMES
    # copying pays encode+decode per hop; references are nearly free
    assert copy["per_hop_ms"] > ref["per_hop_ms"] * 3.0
    assert copy["cpu_busy_s"] > ref["cpu_busy_s"] * 2.0
