"""A4 — §3 ablation: frame hand-off cost across three data planes.

Paper: "To minimize data copying between different components, rather than
copying the full image frames to the module, we pass on a reference id that
identifies the frame."

A chain of co-located relay modules forwards frames three ways:

* ``copy`` — each hop JPEG-encodes and re-decodes the full frame;
* ``ref`` — hops pass a :class:`FrameRef` (the seed VideoPipe design),
  which still serializes the reference payload onto the loopback wire;
* ``arena`` — the shared-memory frame plane: hops ship a flat
  ``(arena_id, offset, generation)`` handle envelope and the payload tree
  is never walked.

The test prints the per-hop cost of each and writes a JSON report
(``REPRO_REFPASS_OUT`` chooses where; CI uploads it).
"""

import json
import os

from repro import Module, VideoPipe, register_module
from repro.frames import SyntheticCamera, encode_frame
from repro.metrics import format_table
from repro.motion import Squat
from repro.pipeline import ModuleConfig, PipelineConfig

from .conftest import FAST

HOPS = 6
FRAMES = 100


@register_module("./RefChainSource.js")
class ChainSource(Module):
    """Feeds frames into the relay chain (by ref or by value)."""

    def __init__(self, by_reference=True, frames=FRAMES, interval_s=0.05):
        self.by_reference = by_reference
        self.frames = frames
        self.interval_s = interval_s

    def init(self, ctx):
        camera = SyntheticCamera(ctx.device_name, Squat())

        def feed():
            for i in range(1, self.frames + 1):
                frame = camera.capture(i, ctx.now)
                ctx.metrics.frame_entered(i, ctx.now)
                if self.by_reference:
                    payload = {"frame": ctx.store_frame(frame), "frame_id": i}
                else:
                    encoded = encode_frame(frame)
                    yield ctx._runtime.device.cpu.execute_fixed(
                        encoded.encode_cost_s)
                    payload = {"frame_bytes": encoded, "frame_id": i}
                ctx.call_next(payload)
                yield self.interval_s

        ctx._runtime.kernel.process(feed(), name="chain-feed")

    def event_received(self, ctx, event):
        pass


@register_module("./RefChainRelay.js")
class ChainRelay(Module):
    """One hop: receives the frame and forwards it downstream."""

    def __init__(self, by_reference=True, last=False):
        self.by_reference = by_reference
        self.last = last

    def event_received(self, ctx, event):
        def flow():
            payload = event.payload
            if self.by_reference:
                out = {"frame": payload["frame"], "frame_id": payload["frame_id"]}
            else:
                # by-value hop: the arriving EncodedFrame was decoded by the
                # runtime into the store (under the same payload key);
                # re-encode to hand a full copy onward
                ref = payload["frame_bytes"]
                frame = ctx.get_frame(ref)
                encoded = encode_frame(frame)
                yield ctx._runtime.device.cpu.execute_fixed(encoded.encode_cost_s)
                ctx.release(ref)
                out = {"frame_bytes": encoded, "frame_id": payload["frame_id"]}
            if self.last:
                if self.by_reference:
                    ctx.release(out["frame"])
                ctx.metrics.frame_completed(payload["frame_id"], ctx.now)
            else:
                ctx.call_next(out)

        return flow()


def chain_config(mode: str) -> PipelineConfig:
    by_reference = mode != "copy"
    modules = [
        ModuleConfig(
            name=f"{mode}_source", include="./RefChainSource.js",
            endpoint="bind#tcp://*:0",
            next_modules=[f"{mode}_relay_1"],
            params={"by_reference": by_reference},
        )
    ]
    for i in range(1, HOPS + 1):
        last = i == HOPS
        modules.append(
            ModuleConfig(
                name=f"{mode}_relay_{i}", include="./RefChainRelay.js",
                endpoint="bind#tcp://*:0",
                next_modules=[] if last else [f"{mode}_relay_{i + 1}"],
                params={"by_reference": by_reference, "last": last},
            )
        )
    return PipelineConfig(name=f"chain-{mode}", modules=modules)


MODES = ("copy", "ref", "arena")


def run_chain(mode: str):
    home = VideoPipe(seed=23)
    home.add_device("desktop")
    if mode == "arena":
        home.enable_arena()
    pipeline = home.deploy_pipeline(chain_config(mode),
                                    default_device="desktop")
    home.run(until=FRAMES * 0.05 + 2.0)
    metrics = pipeline.metrics
    latency_ms = metrics.total_latency_summary().mean * 1e3
    store = home.device("desktop").frame_store
    loopback = home.topology.loopback("desktop")
    result = {
        "latency_ms": latency_ms,
        "per_hop_ms": latency_ms / HOPS,
        "frames": metrics.counter("frames_completed"),
        "cpu_busy_s": home.device("desktop").cpu.busy_seconds,
        "peak_store": store.peak_occupancy,
        "wire_bytes": loopback.bytes_sent,
        "bytes_per_hop": loopback.bytes_sent / (FRAMES * HOPS),
    }
    if mode == "arena":
        result["arena"] = home.data_plane_stats()["arena"]
    return result


def test_reference_passing_beats_copying(benchmark, tmp_path):
    results = {}

    def run():
        for mode in MODES:
            results[mode] = run_chain(mode)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    copy, ref, arena = results["copy"], results["ref"], results["arena"]
    print()
    print(format_table(
        ["metric", "full copies", "reference ids", "shm arena"],
        [["chain latency (ms)", copy["latency_ms"], ref["latency_ms"],
          arena["latency_ms"]],
         ["per-hop latency (ms)", copy["per_hop_ms"], ref["per_hop_ms"],
          arena["per_hop_ms"]],
         ["device CPU busy (s)", copy["cpu_busy_s"], ref["cpu_busy_s"],
          arena["cpu_busy_s"]],
         ["wire bytes per hop", copy["bytes_per_hop"], ref["bytes_per_hop"],
          arena["bytes_per_hop"]],
         ["frames completed", copy["frames"], ref["frames"],
          arena["frames"]]],
        title=f"§3 ablation — {HOPS}-hop co-located relay chain",
        float_format="{:.2f}",
    ))
    benchmark.extra_info["copy_per_hop_ms"] = round(copy["per_hop_ms"], 3)
    benchmark.extra_info["ref_per_hop_ms"] = round(ref["per_hop_ms"], 3)
    benchmark.extra_info["arena_per_hop_ms"] = round(arena["per_hop_ms"], 3)
    benchmark.extra_info["arena_bytes_per_hop"] = round(
        arena["bytes_per_hop"], 1)

    artifact = os.environ.get("REPRO_REFPASS_OUT",
                              str(tmp_path / "BENCH_refpassing.json"))
    os.makedirs(os.path.dirname(os.path.abspath(artifact)), exist_ok=True)
    with open(artifact, "w", encoding="utf-8") as fh:
        json.dump({"hops": HOPS, "frames": FRAMES, "fast_mode": FAST,
                   "modes": results}, fh, indent=2, sort_keys=True)
    print(f"ref-passing ablation report written to {artifact}")

    if FAST:
        return  # smoke mode: shape assertions need the full window
    assert all(results[mode]["frames"] == FRAMES for mode in MODES)
    # copying pays encode+decode per hop; references are nearly free
    assert copy["per_hop_ms"] > ref["per_hop_ms"] * 3.0
    assert copy["cpu_busy_s"] > ref["cpu_busy_s"] * 2.0
    # the arena ships a flat handle envelope: fewer bytes than the
    # serialized reference payload, and never slower per hop
    assert arena["bytes_per_hop"] < ref["bytes_per_hop"]
    assert arena["per_hop_ms"] <= ref["per_hop_ms"] * 1.01
    assert arena["arena"]["stale_accesses"] == 0
    assert arena["arena"]["live"] == 0  # every slot was handed back
