"""A3 — §2.3 ablation: no-queue signaling vs a naively queued pipeline.

Paper: "Queuing the images anywhere inside the pipeline will introduce
delays which are undesired in real-time applications and dropping frames
inside the pipeline wastes computation resources … We do not use any queues
in our design. When the final module is done with its current data, it
signals the source to send a new frame into the pipeline."

``mode="push"`` disables the credit gate: every captured frame enters the
pipeline and queues at the bottleneck. Latency then grows without bound
while the signal design keeps it flat and sheds load at the source.
"""

import numpy as np

from repro.apps import FitnessApp, fitness_pipeline_config, install_fitness_services
from repro.core import VideoPipe
from repro.metrics import format_table

from .conftest import FAST

DURATION_S = 20.0


def run_mode(recognizer, mode: str):
    home = VideoPipe.paper_testbed(seed=19)
    services = install_fitness_services(home, recognizer=recognizer)
    app = FitnessApp(home, services)
    pipeline = app.deploy(
        fitness_pipeline_config(fps=20.0, duration_s=DURATION_S, mode=mode)
    )
    home.run(until=DURATION_S + 1.0)
    metrics = pipeline.metrics
    latencies = metrics.total_latencies
    half = len(latencies) // 2
    source = pipeline.module_instance("video_streaming_module").source
    pose_module = pipeline.module("pose_detector_module")
    return {
        "early_latency_ms": float(np.mean(latencies[: max(1, half // 2)])) * 1e3,
        "late_latency_ms": float(np.mean(latencies[half:])) * 1e3,
        "max_mailbox": pose_module.max_mailbox_depth,
        "dropped_at_source": source.dropped_count,
        "fps": metrics.throughput_fps(DURATION_S + 1.0, warmup_s=2.0),
    }


def test_no_queue_design_keeps_latency_flat(benchmark, fitness_recognizer):
    results = {}

    def run():
        results["signal"] = run_mode(fitness_recognizer, "signal")
        results["push"] = run_mode(fitness_recognizer, "push")
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    signal, push = results["signal"], results["push"]
    print()
    print(format_table(
        ["metric", "no-queue (signal)", "queued (push)"],
        [["early frames latency (ms)", signal["early_latency_ms"],
          push["early_latency_ms"]],
         ["late frames latency (ms)", signal["late_latency_ms"],
          push["late_latency_ms"]],
         ["peak pose-module mailbox depth", signal["max_mailbox"],
          push["max_mailbox"]],
         ["frames dropped at source", signal["dropped_at_source"],
          push["dropped_at_source"]],
         ["throughput (fps)", signal["fps"], push["fps"]]],
        title="§2.3 ablation — flow control at a 20 FPS source (capacity ~11)",
        float_format="{:.1f}",
    ))
    benchmark.extra_info["signal_late_latency_ms"] = round(
        signal["late_latency_ms"], 1)
    benchmark.extra_info["push_late_latency_ms"] = round(
        push["late_latency_ms"], 1)

    if FAST:
        return  # smoke mode: shape assertions need the full window
    # no-queue: latency stays flat; overload is shed at the source
    assert signal["late_latency_ms"] < signal["early_latency_ms"] * 2.0
    assert signal["max_mailbox"] <= 2
    assert signal["dropped_at_source"] > 50
    # queued: the backlog grows and so does latency, without bound
    assert push["late_latency_ms"] > push["early_latency_ms"] * 3.0
    assert push["late_latency_ms"] > signal["late_latency_ms"] * 5.0
    assert push["max_mailbox"] > 20
    assert push["dropped_at_source"] == 0
