"""Live operations — hot module upgrade under load, canary-judged.

The uniform runtime (§1) makes a module replaceable on a running pipeline;
this benchmark measures the whole live-ops loop on the fitness pipeline at
8 FPS, with the invariant auditor watching:

* **healthy arm** — v2 of the pose-detector module is deployed beside v1,
  live frames are mirrored to it off the credit path, and the canary
  judge auto-promotes it into v1's address. Zero frame loss, auditor
  verified.
* **slow arm** — v2 with injected per-event overhead cannot keep up with
  the mirrored traffic; the judge auto-rolls it back and v1 keeps
  serving untouched.
* **idle arm** — live-ops enabled but never used is bit-for-bit identical
  to a run without it (lineage/mirroring are passive observers).

Set ``REPRO_LIVEOPS_OUT`` to persist the verdicts and a per-frame lineage
sample as a JSON artifact (CI uploads it; ``tools/bench_compare.py``
guards the healthy arm against drift).
"""

import json
import os

from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.apps.modules import PoseDetectionModule
from repro.core import VideoPipe
from repro.liveops import PROMOTED, ROLLED_BACK, CanaryPolicy
from repro.metrics import format_table

from .conftest import DURATION_S, FAST, WARMUP_S

MODULE = "pose_detector_module"
FPS = 8.0
UPGRADE_AT_S = WARMUP_S + 1.0
END_S = DURATION_S + 1.0


def build_home(recognizer, liveops=True, audit=True):
    home = VideoPipe.paper_testbed(seed=11)
    if audit:
        home.enable_audit()
    if liveops:
        home.enable_liveops()
    services = install_fitness_services(home, recognizer=recognizer)
    app = FitnessApp(home, services)
    pipeline = app.deploy(fitness_pipeline_config(fps=FPS,
                                                  duration_s=DURATION_S))
    return home, pipeline


def run_arm(recognizer, slow_candidate=False):
    home, pipeline = build_home(recognizer)
    home.run(until=UPGRADE_AT_S)
    candidate = None
    if slow_candidate:
        candidate = PoseDetectionModule()
        candidate.event_overhead_s = 0.5  # injected: cannot keep 8 FPS
    upgrade = home.upgrade_module(
        pipeline, MODULE, module_instance=candidate,
        policy=CanaryPolicy(min_mirrored=5, decision_timeout_s=6.0),
    )
    home.run(until=END_S)
    violations = home.check_invariants()
    shadow = upgrade.shadow_metrics
    return {
        "state": upgrade.state,
        "reason": upgrade.reason,
        "decision_latency_s": round(upgrade.decided_at - upgrade.started_at, 3),
        "live_version": pipeline.wiring.version_of(MODULE),
        "mirrored_frames": upgrade.mirrored_frames,
        "mirror_completed": shadow.counter("frames_completed"),
        "mirror_dropped": shadow.counter("frames_dropped"),
        "frames_completed": pipeline.metrics.counter("frames_completed"),
        "frames_dropped": pipeline.metrics.counter("frames_dropped"),
        "fps": pipeline.metrics.throughput_fps(END_S, WARMUP_S),
        "audit_violations": len(violations),
        "_home": home,
        "_pipeline": pipeline,
    }


def fingerprint(pipeline):
    metrics = pipeline.metrics
    return (
        metrics.counter("frames_entered"),
        metrics.counter("frames_completed"),
        metrics.counter("frames_dropped"),
        tuple(metrics.total_latencies),
    )


def test_canary_upgrade(benchmark, tmp_path, fitness_recognizer):
    results = {}

    def run():
        results["healthy"] = run_arm(fitness_recognizer)
        results["slow"] = run_arm(fitness_recognizer, slow_candidate=True)
        # idle arm: liveops on but unused vs entirely off
        home_off, pipe_off = build_home(fitness_recognizer, liveops=False,
                                        audit=False)
        home_off.run(until=END_S)
        home_idle, pipe_idle = build_home(fitness_recognizer, audit=False)
        home_idle.run(until=END_S)
        results["idle_identical"] = (
            fingerprint(pipe_idle) == fingerprint(pipe_off)
        )
        results["_lineage"] = home_idle.liveops.lineage
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    healthy, slow = results["healthy"], results["slow"]
    print()
    print(format_table(
        ["arm", "verdict", "decision (s)", "mirrored", "live FPS",
         "frames lost", "audit"],
        [["healthy v2", healthy["state"], healthy["decision_latency_s"],
          healthy["mirrored_frames"], round(healthy["fps"], 2),
          healthy["frames_dropped"],
          "clean" if not healthy["audit_violations"] else "VIOLATED"],
         ["slow v2 (+500ms/event)", slow["state"],
          slow["decision_latency_s"], slow["mirrored_frames"],
          round(slow["fps"], 2), slow["frames_dropped"],
          "clean" if not slow["audit_violations"] else "VIOLATED"]],
        title=f"Hot upgrade of {MODULE} under {FPS:g} FPS load",
    ))
    print(f"  idle live-ops bit-identical to disabled:"
          f" {results['idle_identical']}")

    lineage = results["_lineage"]
    sample_key = next(iter(lineage._records), None)
    lineage_sample = (
        {"pipeline": sample_key[0], "frame_id": sample_key[1],
         "path": lineage.path_of(*sample_key)}
        if sample_key else None
    )
    artifact = os.environ.get(
        "REPRO_LIVEOPS_OUT", str(tmp_path / "canary_upgrade.json")
    )
    os.makedirs(os.path.dirname(os.path.abspath(artifact)), exist_ok=True)
    payload = {
        "module": MODULE, "fps": FPS, "upgrade_at_s": UPGRADE_AT_S,
        "healthy": {k: v for k, v in healthy.items()
                    if not k.startswith("_")},
        "slow": {k: v for k, v in slow.items() if not k.startswith("_")},
        "idle_identical": results["idle_identical"],
        "lineage_sample": lineage_sample,
        "lineage_frames_recorded": lineage.frame_count,
        "fast_mode": FAST,
    }
    with open(artifact, "w") as fh:
        json.dump(payload, fh, indent=2)

    benchmark.extra_info["healthy_state"] = healthy["state"]
    benchmark.extra_info["slow_state"] = slow["state"]
    benchmark.extra_info["decision_latency_s"] = healthy["decision_latency_s"]

    # verdicts and conservation hold even in smoke mode
    assert healthy["state"] == PROMOTED, healthy["reason"]
    assert healthy["live_version"] == "v2"
    assert slow["state"] == ROLLED_BACK, slow["reason"]
    assert slow["live_version"] == "v1"
    for arm in (healthy, slow):
        assert arm["frames_dropped"] == 0, "live pipeline lost a frame"
        assert arm["audit_violations"] == 0, \
            arm["_home"].auditor.report()
        assert arm["mirrored_frames"] == (
            arm["mirror_completed"] + arm["mirror_dropped"]
        )
    assert results["idle_identical"]
    if FAST:
        return
    # full window: the promoted pipeline sustains the source rate
    assert healthy["fps"] > FPS * 0.9
