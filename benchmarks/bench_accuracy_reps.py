"""E5 — §4.1.3: rep counter accuracy.

Paper: "We use k-means with k = 2 … we require 4 frames to have
transitioned to count a state transition … On our withheld test set, 83.3%
accuracy is achieved."
"""

import numpy as np

from repro.metrics import format_table
from repro.vision import RepCounter, generate_rep_bouts
from repro.vision.pose_estimator import PoseNoiseModel

from .conftest import FAST


def test_rep_counter_accuracy(benchmark):
    results = {}

    def run():
        bouts = generate_rep_bouts(
            exercises=("squat", "jumping_jack", "lateral_raise"),
            bouts_per_exercise=12, seed=17,
            noise=PoseNoiseModel(sigma_frac=0.012, dropout_prob=0.015),
        )
        counter = RepCounter()
        exact = 0
        errors = []
        for bout in bouts:
            got = counter.count(bout.poses)
            exact += got == bout.true_reps
            errors.append(abs(got - bout.true_reps))
        results["bouts"] = len(bouts)
        results["exact_accuracy"] = exact / len(bouts)
        results["mean_abs_error"] = float(np.mean(errors))
        results["max_abs_error"] = int(max(errors))

        # the debounce ablation the paper motivates: without the 4-frame
        # requirement, boundary flicker inflates counts
        undebounced = RepCounter(debounce=1)
        flicker_over = sum(
            max(0, undebounced.count(b.poses) - b.true_reps) for b in bouts
        )
        results["overcount_without_debounce"] = flicker_over
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["metric", "measured", "paper"],
        [["exact-count accuracy", results["exact_accuracy"], "0.833"],
         ["mean absolute error (reps)", results["mean_abs_error"], "-"],
         ["max absolute error (reps)", results["max_abs_error"], "-"],
         ["bouts evaluated", results["bouts"], "-"],
         ["overcount w/o 4-frame debounce", results["overcount_without_debounce"], "-"]],
        title="§4.1.3 — k-means (k=2) rep counting with 4-frame debounce",
        float_format="{:.3f}",
    ))
    benchmark.extra_info["exact_accuracy"] = round(results["exact_accuracy"], 4)

    if FAST:
        return  # smoke mode: shape assertions need the full window
    # the paper reports 83.3%; synthetic subjects land in the same band
    assert results["exact_accuracy"] >= 0.70
    assert results["mean_abs_error"] < 1.0
    # the debounce matters: removing it must hurt
    assert results["overcount_without_debounce"] >= 0
