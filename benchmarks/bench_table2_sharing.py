"""E3 — Table 2 (column 4): two pipelines sharing the pose service.

Paper: "The performance of the fitness pipeline remains almost the same for
frame rates less than 20 … After the frame rate reaches 20, the end-to-end
frame rate is decreasing, which indicates that we may have reached the limit
of the shared pose detector service."
"""

from repro.metrics import format_table

from .conftest import FAST, run_fitness, run_shared

SOURCE_RATES = (5.0, 10.0, 20.0)

PAPER_TWO_PIPELINES = {5: (4.56, 4.56), 10: (7.83, 7.83), 20: (9.44, 9.41)}


def test_table2_service_sharing(benchmark, fitness_recognizer,
                                gesture_recognizer):
    shared = {}
    solo = {}

    def run():
        for fps in SOURCE_RATES:
            f_fit, f_gest, _ = run_shared(fitness_recognizer,
                                          gesture_recognizer, fps=fps)
            shared[int(fps)] = (f_fit, f_gest)
            solo[int(fps)], _, _ = run_fitness(fitness_recognizer, "videopipe",
                                            fps=fps)
        return shared

    benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["Source FPS", "fitness", "gesture", "paper fitness", "paper gesture",
         "fitness solo"],
        [[rate, shared[rate][0], shared[rate][1],
          PAPER_TWO_PIPELINES[rate][0], PAPER_TWO_PIPELINES[rate][1],
          solo[rate]]
         for rate in (5, 10, 20)],
        title="Table 2 (col 4) — two pipelines sharing the pose detector",
    ))

    for rate, (f_fit, f_gest) in shared.items():
        benchmark.extra_info[f"fitness_{rate}fps"] = round(f_fit, 2)
        benchmark.extra_info[f"gesture_{rate}fps"] = round(f_gest, 2)

    if FAST:
        return  # smoke mode: shape assertions need the full window
    # shape criteria:
    # 1. at 5 FPS sharing is free — both pipelines track the source
    assert abs(shared[5][0] - 5.0) < 0.7
    assert abs(shared[5][1] - 5.0) < 0.7
    # 2. at 20 FPS the shared single-worker pose service caps both below
    #    the solo saturation rate ...
    assert shared[20][0] < solo[20] - 0.5
    assert shared[20][1] < solo[20] - 0.5
    # 3. ... but fairly: neither pipeline starves
    assert min(shared[20]) > max(shared[20]) * 0.8
    # 4. combined demand approaches the pose service's capacity
    #    (~1/0.053 ≈ 19 req/s)
    assert 14.0 < shared[20][0] + shared[20][1] < 21.0
