"""Scene-fusion benchmark: MOTA-style accuracy plus placement ablation.

The multi-camera workload's two claims, measured on the paper testbed
home with a three-camera crossing scene:

* **accuracy** — with pose-embedding re-ID the fused tracks survive the
  mid-room crossing with zero identity switches and >=95% association
  precision/recall against ground truth; the degraded arm (re-ID off,
  world-position association only) measurably does worse on the same
  scenario;
* **placement** — end-to-end fan-in latency under ``single-host``
  (EdgeEye baseline), ``colocated`` (the paper's heuristic) and
  ``optimized`` (cost-model search), the same ablation the linear
  pipelines get in ``bench_fleet_scale``.

Set ``REPRO_SCENE_OUT`` to persist both arms' scores and the per-strategy
latency summaries as a JSON artifact (CI uploads it and gates it with
``tools/bench_compare.py``).
"""

import json
import os

from repro.apps import install_scene_services, multi_camera_pipeline_config
from repro.core import VideoPipe
from repro.devices import DeviceSpec
from repro.metrics import format_table
from repro.pipeline import COLOCATED, OPTIMIZED, SINGLE_HOST
from repro.vision import fusion_accuracy

from .conftest import FAST

FPS = 8.0
DURATION_S = 6.0 if FAST else 25.0  # cross_at=3.0 sits inside both windows
CAMERAS = 3
SEED = 7
STRATEGIES = (SINGLE_HOST, COLOCATED, OPTIMIZED)


def _home() -> VideoPipe:
    home = VideoPipe.paper_testbed(seed=SEED)
    home.add_device(DeviceSpec(name="camera", kind="phone", cpu_factor=2.5,
                               cores=8, supports_containers=False))
    install_scene_services(home, "desktop")
    return home


def _run(use_reid: bool = True, strategy: str = COLOCATED) -> dict:
    home = _home()
    pipeline = home.deploy_pipeline(
        multi_camera_pipeline_config(fps=FPS, duration_s=DURATION_S,
                                     cameras=CAMERAS, use_reid=use_reid),
        strategy=strategy,
    )
    home.run(until=DURATION_S + 1.0)
    fusion = pipeline.module_instance("scene_fusion_module")
    metrics = pipeline.metrics
    latency = metrics.total_latency_summary()
    return {
        "accuracy": fusion_accuracy(fusion.history),
        "completed": metrics.counter("frames_completed"),
        "dropped": metrics.counter("frames_dropped"),
        "mean_ms": latency.mean * 1e3,
        "p50_ms": latency.p50 * 1e3,
        "p99_ms": latency.p99 * 1e3,
        "devices": {name: pipeline.device_of(name)
                    for name in pipeline.module_names()},
    }


def test_scene_fusion_accuracy_and_placement(benchmark, tmp_path):
    arms: dict[str, dict] = {}
    by_strategy: dict[str, dict] = {}

    def run():
        # the re-ID arm doubles as the colocated strategy point: the
        # default deploy IS the colocated heuristic
        arms["reid"] = _run(use_reid=True)
        arms["noreid"] = _run(use_reid=False)
        by_strategy[COLOCATED] = arms["reid"]
        for strategy in (SINGLE_HOST, OPTIMIZED):
            by_strategy[strategy] = _run(use_reid=True, strategy=strategy)
        return arms

    benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["arm", "ID switches", "precision", "recall", "frames"],
        [[arm,
          arms[arm]["accuracy"]["id_switches"],
          arms[arm]["accuracy"]["precision"],
          arms[arm]["accuracy"]["recall"],
          arms[arm]["accuracy"]["frames"]]
         for arm in ("reid", "noreid")],
        title=f"Fusion accuracy vs ground truth — {CAMERAS} cameras,"
              f" crossing scene, {DURATION_S:.0f}s @ {FPS:.0f}fps",
        float_format="{:.3f}",
    ))
    print(format_table(
        ["strategy", "mean (ms)", "p50 (ms)", "p99 (ms)", "frames",
         "dropped"],
        [[strategy,
          by_strategy[strategy]["mean_ms"],
          by_strategy[strategy]["p50_ms"],
          by_strategy[strategy]["p99_ms"],
          by_strategy[strategy]["completed"],
          by_strategy[strategy]["dropped"]]
         for strategy in STRATEGIES],
        title="Fan-in end-to-end latency by placement strategy",
        float_format="{:.1f}",
    ))

    reid = arms["reid"]["accuracy"]
    noreid = arms["noreid"]["accuracy"]
    benchmark.extra_info["reid_precision"] = round(reid["precision"], 4)
    benchmark.extra_info["reid_recall"] = round(reid["recall"], 4)
    benchmark.extra_info["reid_id_switches"] = reid["id_switches"]
    benchmark.extra_info["noreid_id_switches"] = noreid["id_switches"]
    for strategy in STRATEGIES:
        benchmark.extra_info[f"{strategy}_mean_ms"] = round(
            by_strategy[strategy]["mean_ms"], 2)

    artifact = os.environ.get("REPRO_SCENE_OUT",
                              str(tmp_path / "scene_fusion.json"))
    os.makedirs(os.path.dirname(os.path.abspath(artifact)), exist_ok=True)
    with open(artifact, "w", encoding="utf-8") as fh:
        json.dump({
            "fast_mode": FAST,
            "fps": FPS,
            "duration_s": DURATION_S,
            "cameras": CAMERAS,
            "seed": SEED,
            "arms": arms,
            "strategies": by_strategy,
        }, fh, indent=2)
    print(f"scene fusion report written to {artifact}")

    # acceptance criteria hold in smoke mode too — the crossing happens
    # at t=3.0s, inside even the 6s window
    total = int(DURATION_S * FPS) * CAMERAS
    for strategy in STRATEGIES:
        result = by_strategy[strategy]
        # every tick fuses whole or drops whole at the source (§2.3)
        assert result["completed"] + result["dropped"] == total, strategy
        assert result["completed"] >= 0.8 * total, strategy
    # the slow single host is busy more often, so the credit gate drops
    # more ticks there — co-location must not be worse on either axis
    assert (by_strategy[COLOCATED]["dropped"]
            <= by_strategy[SINGLE_HOST]["dropped"])
    assert reid["id_switches"] == 0, reid
    assert reid["precision"] >= 0.95, reid
    assert reid["recall"] >= 0.95, reid
    # the degraded arm is provably worse on the identical scenario
    assert noreid["id_switches"] > reid["id_switches"], noreid
    assert noreid["precision"] < reid["precision"], (noreid, reid)
    # fan-in placement matters: the optimizer never loses to the
    # single-host baseline on mean end-to-end latency
    assert (by_strategy[OPTIMIZED]["mean_ms"]
            <= by_strategy[SINGLE_HOST]["mean_ms"])
