"""E1 — Figure 6: per-stage latency, VideoPipe vs baseline.

Paper: "VideoPipe achieves lower latency for loading frames, pose detection,
activity detection, rep counter and the pipeline. Among which, the delay for
the pose detection is much lower than the remote API calls in the baseline."
"""

from repro.metrics import format_table

from .conftest import FAST, run_fitness

STAGES = ("load_frame", "pose_detection", "activity_detection",
          "rep_count", "total_duration")

#: Approximate bar heights read off the paper's Fig. 6 (milliseconds).
PAPER_FIG6 = {
    "videopipe": {"load_frame": 12, "pose_detection": 45,
                  "activity_detection": 15, "rep_count": 8,
                  "total_duration": 105},
    "baseline": {"load_frame": 17, "pose_detection": 85,
                 "activity_detection": 20, "rep_count": 12,
                 "total_duration": 125},
}


def test_fig6_per_stage_latency(benchmark, fitness_recognizer):
    results = {}

    def run():
        for architecture in ("videopipe", "baseline"):
            _, metrics, _ = run_fitness(fitness_recognizer, architecture, fps=10.0)
            results[architecture] = metrics.stage_means_ms()
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["stage", "VideoPipe (ms)", "Baseline (ms)",
         "paper VP (~ms)", "paper base (~ms)"],
        [[stage,
          results["videopipe"][stage],
          results["baseline"][stage],
          PAPER_FIG6["videopipe"][stage],
          PAPER_FIG6["baseline"][stage]]
         for stage in STAGES],
        title="Fig. 6 — per-stage latency at a 10 FPS source",
        float_format="{:.1f}",
    ))

    if FAST:
        return  # smoke mode: shape assertions need the full window
    for stage in STAGES:
        benchmark.extra_info[f"videopipe_{stage}_ms"] = round(
            results["videopipe"][stage], 2)
        benchmark.extra_info[f"baseline_{stage}_ms"] = round(
            results["baseline"][stage], 2)
        # the reproduction criterion: VideoPipe wins every stage
        assert results["videopipe"][stage] < results["baseline"][stage], stage

    # and pose detection contributes the bulk of the improvement
    gaps = {s: results["baseline"][s] - results["videopipe"][s]
            for s in STAGES if s != "total_duration"}
    assert max(gaps, key=gaps.get) == "pose_detection"
