"""E1 — Figure 6: per-stage latency, VideoPipe vs baseline.

Paper: "VideoPipe achieves lower latency for loading frames, pose detection,
activity detection, rep counter and the pipeline. Among which, the delay for
the pose detection is much lower than the remote API calls in the baseline."

The traced variant re-derives the same decomposition from per-frame spans
(``repro.trace``) and writes a ``chrome://tracing`` / Perfetto artifact; set
``REPRO_TRACE_OUT`` to choose where the JSON lands (CI uploads it).
"""

import json
import os

from repro.metrics import format_table
from repro.trace import critical_path, write_chrome_trace

from .conftest import FAST, run_fitness

STAGES = ("load_frame", "pose_detection", "activity_detection",
          "rep_count", "total_duration")

#: Approximate bar heights read off the paper's Fig. 6 (milliseconds).
PAPER_FIG6 = {
    "videopipe": {"load_frame": 12, "pose_detection": 45,
                  "activity_detection": 15, "rep_count": 8,
                  "total_duration": 105},
    "baseline": {"load_frame": 17, "pose_detection": 85,
                 "activity_detection": 20, "rep_count": 12,
                 "total_duration": 125},
}


def test_fig6_per_stage_latency(benchmark, fitness_recognizer):
    results = {}

    def run():
        for architecture in ("videopipe", "baseline"):
            _, metrics, _ = run_fitness(fitness_recognizer, architecture, fps=10.0)
            results[architecture] = metrics.stage_means_ms()
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["stage", "VideoPipe (ms)", "Baseline (ms)",
         "paper VP (~ms)", "paper base (~ms)"],
        [[stage,
          results["videopipe"][stage],
          results["baseline"][stage],
          PAPER_FIG6["videopipe"][stage],
          PAPER_FIG6["baseline"][stage]]
         for stage in STAGES],
        title="Fig. 6 — per-stage latency at a 10 FPS source",
        float_format="{:.1f}",
    ))

    if FAST:
        return  # smoke mode: shape assertions need the full window
    for stage in STAGES:
        benchmark.extra_info[f"videopipe_{stage}_ms"] = round(
            results["videopipe"][stage], 2)
        benchmark.extra_info[f"baseline_{stage}_ms"] = round(
            results["baseline"][stage], 2)
        # the reproduction criterion: VideoPipe wins every stage
        assert results["videopipe"][stage] < results["baseline"][stage], stage

    # and pose detection contributes the bulk of the improvement
    gaps = {s: results["baseline"][s] - results["videopipe"][s]
            for s in STAGES if s != "total_duration"}
    assert max(gaps, key=gaps.get) == "pose_detection"


def test_fig6_traced_decomposition(benchmark, fitness_recognizer, tmp_path):
    """Fig. 6 with tracing on: the span-derived stage means must agree with
    the MetricsCollector (within 1%), and the run leaves a loadable
    Chrome-trace artifact behind."""
    out = {}

    def run():
        _, metrics, home = run_fitness(fitness_recognizer, "videopipe",
                                       fps=10.0, trace=True)
        out["metrics"] = metrics
        out["tracer"] = home.tracer
        return metrics

    benchmark.pedantic(run, rounds=1, iterations=1)

    metrics, tracer = out["metrics"], out["tracer"]
    report = critical_path(tracer, pipeline="fitness")
    assert report.frame_count == metrics.counter("frames_completed")
    collector_means = metrics.stage_means_ms()
    trace_means = report.stage_means_ms()
    for stage in STAGES:
        assert abs(trace_means[stage] - collector_means[stage]) \
            <= 0.01 * collector_means[stage], stage
        benchmark.extra_info[f"traced_{stage}_ms"] = round(
            trace_means[stage], 2)

    print()
    print(format_table(
        ["stage", "collector (ms)", "trace (ms)"],
        [[stage, collector_means[stage], trace_means[stage]]
         for stage in STAGES],
        title="Fig. 6 — trace-derived stage means vs MetricsCollector",
        float_format="{:.2f}",
    ))
    print("critical path (mean ms/frame):",
          {k: round(v, 2) for k, v in report.category_means_ms().items()})

    artifact = os.environ.get("REPRO_TRACE_OUT",
                              str(tmp_path / "fig6_trace.json"))
    os.makedirs(os.path.dirname(os.path.abspath(artifact)), exist_ok=True)
    write_chrome_trace(tracer, artifact)
    with open(artifact, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["traceEvents"], "empty trace artifact"
    benchmark.extra_info["trace_events"] = len(doc["traceEvents"])
    benchmark.extra_info["trace_artifact"] = artifact
    print(f"chrome trace written to {artifact}"
          f" ({len(doc['traceEvents'])} events)")
