"""E1 — Figure 6: per-stage latency, VideoPipe vs baseline.

Paper: "VideoPipe achieves lower latency for loading frames, pose detection,
activity detection, rep counter and the pipeline. Among which, the delay for
the pose detection is much lower than the remote API calls in the baseline."

The traced variant re-derives the same decomposition from per-frame spans
(``repro.trace``) and writes a ``chrome://tracing`` / Perfetto artifact; set
``REPRO_TRACE_OUT`` to choose where the JSON lands (CI uploads it).
"""

import json
import os

from repro.apps import fitness_pipeline_config, install_fitness_services
from repro.core import VideoPipe
from repro.metrics import format_table
from repro.pipeline import COLOCATED
from repro.trace import critical_path, write_chrome_trace

from .conftest import DURATION_S, FAST, WARMUP_S, run_fitness

STAGES = ("load_frame", "pose_detection", "activity_detection",
          "rep_count", "total_duration")

#: Approximate bar heights read off the paper's Fig. 6 (milliseconds).
PAPER_FIG6 = {
    "videopipe": {"load_frame": 12, "pose_detection": 45,
                  "activity_detection": 15, "rep_count": 8,
                  "total_duration": 105},
    "baseline": {"load_frame": 17, "pose_detection": 85,
                 "activity_detection": 20, "rep_count": 12,
                 "total_duration": 125},
}


def test_fig6_per_stage_latency(benchmark, fitness_recognizer):
    results = {}

    def run():
        for architecture in ("videopipe", "baseline"):
            _, metrics, _ = run_fitness(fitness_recognizer, architecture, fps=10.0)
            results[architecture] = metrics.stage_means_ms()
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["stage", "VideoPipe (ms)", "Baseline (ms)",
         "paper VP (~ms)", "paper base (~ms)"],
        [[stage,
          results["videopipe"][stage],
          results["baseline"][stage],
          PAPER_FIG6["videopipe"][stage],
          PAPER_FIG6["baseline"][stage]]
         for stage in STAGES],
        title="Fig. 6 — per-stage latency at a 10 FPS source",
        float_format="{:.1f}",
    ))

    if FAST:
        return  # smoke mode: shape assertions need the full window
    for stage in STAGES:
        benchmark.extra_info[f"videopipe_{stage}_ms"] = round(
            results["videopipe"][stage], 2)
        benchmark.extra_info[f"baseline_{stage}_ms"] = round(
            results["baseline"][stage], 2)
        # the reproduction criterion: VideoPipe wins every stage
        assert results["videopipe"][stage] < results["baseline"][stage], stage

    # and pose detection contributes the bulk of the improvement
    gaps = {s: results["baseline"][s] - results["videopipe"][s]
            for s in STAGES if s != "total_duration"}
    assert max(gaps, key=gaps.get) == "pose_detection"


#: High-fps operating point: three concurrent pipelines at this source rate
#: put ~1.3 erlangs of pose demand on the desktop — more than the one fixed
#: pose replica can serve, less than the pooled cores can.
HIGHFPS_PIPELINES = 3
HIGHFPS_FPS = 8.0


def _prefixed_fitness_config(prefix, fps, duration, base_port):
    """A fitness DAG clone with every module name (and edge) prefixed, so
    several instances can coexist in one home on distinct ports."""
    config = fitness_pipeline_config(
        name=f"fitness-{prefix}", fps=fps, duration_s=duration,
        mode="push", base_port=base_port,
    )
    rename = {m.name: f"{prefix}_{m.name}" for m in config.modules}
    for module in config.modules:
        module.name = rename[module.name]
        module.next_modules = [rename[n] for n in module.next_modules]
    config.source = rename[config.source]
    return config


def run_fitness_highfps(recognizer, data_plane, pipelines=HIGHFPS_PIPELINES,
                        fps=HIGHFPS_FPS, duration=DURATION_S, seed=17):
    """*pipelines* concurrent fitness DAGs sharing one pose service.

    Returns (mean stage means across pipelines, per-pipeline completions,
    home)."""
    home = VideoPipe.paper_testbed(seed=seed)
    if data_plane:
        home.enable_data_plane()
    install_fitness_services(home, recognizer=recognizer)
    deployed = [
        home.deploy_pipeline(
            _prefixed_fitness_config(f"p{i}", fps, duration, 5860 + 40 * i),
            strategy=COLOCATED, default_device="phone",
        )
        for i in range(pipelines)
    ]
    home.run(until=duration + 1.0)
    per_stage = {stage: 0.0 for stage in STAGES}
    for pipeline in deployed:
        means = pipeline.metrics.stage_means_ms()
        for stage in STAGES:
            per_stage[stage] += means[stage] / pipelines
    completed = [p.metrics.counter("frames_completed") for p in deployed]
    return per_stage, completed, home


def test_fig6_highfps_arena_pool(benchmark, fitness_recognizer, tmp_path):
    """The data-plane ablation at the overloaded operating point: with the
    shared-memory arena and pooled replicas off, three 8-FPS pipelines
    queue behind one fixed pose replica; with them on, pose borrows idle
    desktop slots and end-to-end latency must improve >= 2x."""
    results = {}

    def run():
        for arm, data_plane in (("off", False), ("on", True)):
            stage_means, completed, home = run_fitness_highfps(
                fitness_recognizer, data_plane)
            results[arm] = {
                "stage_means_ms": stage_means,
                "frames_completed": completed,
                "data_plane": home.data_plane_stats(),
            }
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    off = results["off"]["stage_means_ms"]
    on = results["on"]["stage_means_ms"]
    ratio = off["total_duration"] / on["total_duration"]
    pool = results["on"]["data_plane"]["pool"]
    arena = results["on"]["data_plane"]["arena"]

    print()
    print(format_table(
        ["stage", "arena+pool off (ms)", "arena+pool on (ms)"],
        [[stage, off[stage], on[stage]] for stage in STAGES],
        title=(f"Fig. 6 at {HIGHFPS_PIPELINES}x{HIGHFPS_FPS:.0f} FPS — "
               "zero-copy arena + replica pool ablation"),
        float_format="{:.1f}",
    ))
    print(f"end-to-end improvement: {ratio:.2f}x | pool grants:"
          f" {pool['grants']} (borrowed {pool['borrowed']}) | arena allocs:"
          f" {arena['allocs']}, stale accesses: {arena['stale_accesses']}")

    benchmark.extra_info["off_total_ms"] = round(off["total_duration"], 2)
    benchmark.extra_info["on_total_ms"] = round(on["total_duration"], 2)
    benchmark.extra_info["latency_improvement"] = round(ratio, 2)
    benchmark.extra_info["pool_borrowed_grants"] = pool["borrowed"]

    artifact = os.environ.get("REPRO_FIG6_HIGHFPS_OUT",
                              str(tmp_path / "fig6_highfps.json"))
    os.makedirs(os.path.dirname(os.path.abspath(artifact)), exist_ok=True)
    with open(artifact, "w", encoding="utf-8") as fh:
        json.dump({
            "pipelines": HIGHFPS_PIPELINES,
            "fps": HIGHFPS_FPS,
            "duration_s": DURATION_S,
            "warmup_s": WARMUP_S,
            "fast_mode": FAST,
            "latency_improvement": ratio,
            "arms": results,
        }, fh, indent=2, sort_keys=True)
    print(f"high-fps ablation report written to {artifact}")

    # the data plane must run clean whatever the window length
    assert arena["stale_accesses"] == 0
    assert all(n > 0 for n in results["on"]["frames_completed"])
    if FAST:
        return  # smoke mode: shape assertions need the full window
    assert arena["allocs"] > 0 and pool["grants"] > 0
    assert pool["borrowed"] > 0  # pose actually borrowed beyond its share
    # the acceptance criterion: >= 2x end-to-end latency at high fps
    assert ratio >= 2.0, f"only {ratio:.2f}x"


def test_fig6_traced_decomposition(benchmark, fitness_recognizer, tmp_path):
    """Fig. 6 with tracing on: the span-derived stage means must agree with
    the MetricsCollector (within 1%), and the run leaves a loadable
    Chrome-trace artifact behind."""
    out = {}

    def run():
        _, metrics, home = run_fitness(fitness_recognizer, "videopipe",
                                       fps=10.0, trace=True)
        out["metrics"] = metrics
        out["tracer"] = home.tracer
        return metrics

    benchmark.pedantic(run, rounds=1, iterations=1)

    metrics, tracer = out["metrics"], out["tracer"]
    report = critical_path(tracer, pipeline="fitness")
    assert report.frame_count == metrics.counter("frames_completed")
    collector_means = metrics.stage_means_ms()
    trace_means = report.stage_means_ms()
    for stage in STAGES:
        assert abs(trace_means[stage] - collector_means[stage]) \
            <= 0.01 * collector_means[stage], stage
        benchmark.extra_info[f"traced_{stage}_ms"] = round(
            trace_means[stage], 2)

    print()
    print(format_table(
        ["stage", "collector (ms)", "trace (ms)"],
        [[stage, collector_means[stage], trace_means[stage]]
         for stage in STAGES],
        title="Fig. 6 — trace-derived stage means vs MetricsCollector",
        float_format="{:.2f}",
    ))
    print("critical path (mean ms/frame):",
          {k: round(v, 2) for k, v in report.category_means_ms().items()})

    artifact = os.environ.get("REPRO_TRACE_OUT",
                              str(tmp_path / "fig6_trace.json"))
    os.makedirs(os.path.dirname(os.path.abspath(artifact)), exist_ok=True)
    write_chrome_trace(tracer, artifact)
    with open(artifact, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["traceEvents"], "empty trace artifact"
    benchmark.extra_info["trace_events"] = len(doc["traceEvents"])
    benchmark.extra_info["trace_artifact"] = artifact
    print(f"chrome trace written to {artifact}"
          f" ({len(doc['traceEvents'])} events)")
