"""E2 — Table 2 (columns 2-3): end-to-end FPS vs source FPS.

Paper row format: Source FPS in {5, 10, 20, 30, 60}; VideoPipe saturates
around 11 FPS (the pose detector is the bottleneck of the one-frame-in-
flight pipeline), the baseline around 8.3 FPS.
"""

from repro.metrics import format_table

from .conftest import FAST, run_fitness

SOURCE_RATES = (5.0, 10.0, 20.0, 30.0, 60.0)

PAPER_TABLE2 = {
    "videopipe": {5: 4.53, 10: 8.21, 20: 11.00, 30: 10.72, 60: 11.03},
    "baseline": {5: 4.52, 10: 7.79, 20: 8.25, 30: 8.33, 60: 8.01},
}


def test_table2_end_to_end_frame_rates(benchmark, fitness_recognizer):
    measured = {"videopipe": {}, "baseline": {}}

    def run():
        for architecture in measured:
            for fps in SOURCE_RATES:
                throughput, _, _ = run_fitness(fitness_recognizer, architecture,
                                            fps=fps)
                measured[architecture][int(fps)] = throughput
        return measured

    benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["Source FPS", "VideoPipe", "paper", "Baseline", "paper"],
        [[rate,
          measured["videopipe"][rate], PAPER_TABLE2["videopipe"][rate],
          measured["baseline"][rate], PAPER_TABLE2["baseline"][rate]]
         for rate in (5, 10, 20, 30, 60)],
        title="Table 2 — end-to-end frame rate (FPS)",
    ))

    for architecture in measured:
        for rate, value in measured[architecture].items():
            benchmark.extra_info[f"{architecture}_{rate}fps"] = round(value, 2)

    vp, base = measured["videopipe"], measured["baseline"]
    if FAST:
        return  # smoke mode: shape assertions need the full window
    # shape criteria from the paper:
    # 1. both track the source at 5 FPS
    assert abs(vp[5] - 5.0) < 0.7 and abs(base[5] - 5.0) < 0.7
    # 2. VideoPipe saturates near 11 FPS; the baseline near 8.3
    assert 9.0 < vp[60] < 12.5
    assert 7.0 < base[60] < 9.5
    # 3. co-location wins clearly once the source outruns the pipeline
    for rate in (20, 30, 60):
        assert vp[rate] > base[rate] * 1.15, rate
    # 4. saturation: more source FPS stops helping
    assert abs(vp[60] - vp[30]) < 1.0
    assert abs(base[60] - base[30]) < 1.0


def test_static_scene_fast_path_doubles_frame_rate(benchmark,
                                                   fitness_recognizer):
    """A frozen scene at a 60 FPS source: content-addressed dedup plus the
    result cache lift the saturation rate by >= 2x, because repeated frames
    skip pose inference entirely."""
    from repro.pipeline import PerfConfig

    results = {}

    def run():
        results["off"], _, _ = run_fitness(
            fitness_recognizer, "videopipe", fps=60.0, static_scene=True)
        results["on"], _, home = run_fitness(
            fitness_recognizer, "videopipe", fps=60.0, static_scene=True,
            perf=PerfConfig(frame_dedup=True, result_cache=True,
                            batching=False))
        results["stats"] = home.perf_stats()
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    stats = results["stats"]
    speedup = results["on"] / results["off"]
    print()
    print(format_table(
        ["Fast path", "FPS", "speedup", "dedup ratio", "cache hit rate"],
        [["off", results["off"], 1.0, 0.0, 0.0],
         ["dedup+cache", results["on"], speedup,
          stats["dedup"]["ratio"], stats["cache"]["hit_rate"]]],
        title="Static scene, 60 FPS source — fast path ablation",
        float_format="{:.2f}",
    ))
    benchmark.extra_info["fps_off"] = round(results["off"], 2)
    benchmark.extra_info["fps_on"] = round(results["on"], 2)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    # the headline criterion: at least 2x on a static scene
    assert speedup >= 2.0, speedup
    assert stats["dedup"]["ratio"] > 0.9
    assert stats["cache"]["hit_rate"] > 0.5
