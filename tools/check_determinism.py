#!/usr/bin/env python3
"""Determinism harness CLI: run example scenarios twice and diff them.

Runs each named scenario (or all of them) twice under the same seed,
record-by-record diffs the two kernel event streams, and compares the
scenario fingerprints. Exits nonzero on the first nondeterministic
scenario, printing where the streams diverge.

With ``REPRO_AUDIT=1`` the second run of each scenario also executes under
the invariant auditor, so CI gets conservation-law checking and the
bit-for-bit audited-vs-unaudited comparison for free: the audited event
stream must equal the unaudited one.

Usage:
    python tools/check_determinism.py                       # all scenarios
    python tools/check_determinism.py quickstart fitness_app
    python tools/check_determinism.py --seed 13 --json out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.audit.determinism import (  # noqa: E402
    check_determinism,
    first_divergence,
    record_scenario,
)
from repro.audit.scenarios import EXAMPLE_SCENARIOS  # noqa: E402


def _canonical(name: str) -> str:
    """Accept 'quickstart', 'quickstart.py', or 'examples/quickstart.py'."""
    base = os.path.basename(name)
    return base if base.endswith(".py") else base + ".py"


def run_one(name: str, seed: int, audit: bool) -> dict:
    scenario = EXAMPLE_SCENARIOS[name]
    report = check_determinism(scenario, seed=seed, name=name)
    result = report.as_dict()
    if report.ok and audit:
        # third run under the auditor: stream must match the unaudited runs
        # bit for bit, and the run must end with zero violations.
        # strip REPRO_AUDIT for the baseline so homes built inside the
        # scenario don't auto-enable auditing — the comparison must be
        # genuinely unaudited vs audited.
        saved = os.environ.pop("REPRO_AUDIT", None)
        try:
            plain = record_scenario(scenario, seed)
        finally:
            if saved is not None:
                os.environ["REPRO_AUDIT"] = saved
        violations: list = []

        def audited_scenario(s: int):
            home, run_fn = scenario(s)
            auditor = home.enable_audit()

            def run_and_check():
                fingerprint = run_fn()
                # quiesce invariants (live_count==0, zero in-flight) only
                # hold when the kernel actually drained; a run stopped at a
                # time limit (e.g. a perpetual heartbeat process) gets the
                # instantaneous conservation checks instead.
                if home.kernel.pending_events == 0:
                    auditor.check_quiesce()
                else:
                    auditor.check_now()
                violations.extend(v.describe() for v in auditor.violations)
                return fingerprint

            return home, run_and_check

        audited = record_scenario(audited_scenario, seed)
        divergence = first_divergence(plain.events, audited.events)
        result["audited_stream_identical"] = divergence is None
        result["audited_fingerprint_identical"] = (
            plain.fingerprint == audited.fingerprint
        )
        result["audit_violations"] = violations
        if divergence is not None:
            result["ok"] = False
            result["divergence"] = (
                "audited run perturbed the event stream:\n"
                + divergence.describe()
            )
        if plain.fingerprint != audited.fingerprint or violations:
            result["ok"] = False
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scenarios", nargs="*",
                        help="scenario names (default: all)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", metavar="PATH",
                        help="write a JSON report for CI artifacts")
    parser.add_argument("--list", action="store_true",
                        help="list available scenarios and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in EXAMPLE_SCENARIOS:
            print(name)
        return 0

    names = [_canonical(n) for n in args.scenarios] or list(EXAMPLE_SCENARIOS)
    unknown = [n for n in names if n not in EXAMPLE_SCENARIOS]
    if unknown:
        parser.error(
            f"unknown scenario(s) {unknown}; choose from"
            f" {sorted(EXAMPLE_SCENARIOS)}"
        )

    audit = bool(os.environ.get("REPRO_AUDIT"))
    results = []
    failed = 0
    for name in names:
        result = run_one(name, args.seed, audit)
        results.append(result)
        status = "PASS" if result["ok"] else "FAIL"
        extra = ""
        if audit and "audited_stream_identical" in result:
            extra = " [audited run bit-identical]" if (
                result["audited_stream_identical"]
                and result["audited_fingerprint_identical"]
            ) else " [AUDIT PERTURBED THE RUN]"
        print(f"{status}  {name}: {result['event_count']} events"
              f" (seed {args.seed}){extra}")
        if not result["ok"]:
            failed += 1
            if result["divergence"]:
                print(result["divergence"])
            for line in result.get("audit_violations", []):
                print(f"  audit violation: {line}")

    if args.json:
        parent = os.path.dirname(args.json)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump({"seed": args.seed, "audit": audit,
                       "results": results}, fh, indent=2)
        print(f"report written to {args.json}")

    if failed:
        print(f"\n{failed}/{len(names)} scenario(s) nondeterministic")
        return 1
    print(f"\nall {len(names)} scenario(s) deterministic")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
