#!/usr/bin/env python3
"""Coverage ratchet: fail CI when coverage drops, tighten when it rises.

Usage (CI runs exactly this)::

    python -m pytest tests --cov=repro --cov-branch --cov-report=json:coverage.json -q
    python tools/coverage_ratchet.py coverage.json

The committed baseline lives in ``tools/coverage_baseline.json``. The check
fails when the measured total (line+branch, coverage.py's
``percent_covered``) falls more than ``tolerance_pts`` (default 0.5) below
the baseline. When the measured total beats the baseline by more than the
tolerance, the check passes but prints the ratchet hint; run with
``--update`` to rewrite the baseline (then commit the diff — raising the
bar is a reviewed change, like a golden).

The baseline's ``seeded`` flag marks a value that was set conservatively
rather than measured (the first commit predates a local coverage
toolchain). ``--update`` clears it with the first real CI measurement.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE_PATH = Path(__file__).parent / "coverage_baseline.json"


def read_measured(report_path: Path) -> float:
    try:
        report = json.loads(report_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        sys.exit(f"coverage report {report_path} not found — run pytest with"
                 " --cov-report=json first")
    try:
        return float(report["totals"]["percent_covered"])
    except (KeyError, TypeError, ValueError) as exc:
        sys.exit(f"malformed coverage report {report_path}: {exc!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path,
                        help="coverage.py JSON report (pytest --cov-report=json:...)")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline to the measured value")
    args = parser.parse_args(argv)

    measured = read_measured(args.report)
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    floor = baseline["percent_covered"] - baseline.get("tolerance_pts", 0.5)

    print(f"coverage: measured {measured:.2f}%,"
          f" baseline {baseline['percent_covered']:.2f}%"
          f" (floor {floor:.2f}%"
          f"{', seeded' if baseline.get('seeded') else ''})")

    if args.update:
        # floor to 0.1 pt so re-measured noise never makes the bar flaky
        new = {
            "percent_covered": int(measured * 10) / 10,
            "tolerance_pts": baseline.get("tolerance_pts", 0.5),
            "seeded": False,
        }
        args.baseline.write_text(json.dumps(new, indent=2) + "\n",
                                 encoding="utf-8")
        print(f"baseline updated to {new['percent_covered']:.1f}% — commit"
              f" {args.baseline}")
        return 0

    if measured < floor:
        print(f"FAIL: coverage dropped {baseline['percent_covered'] - measured:.2f} pts"
              f" below the baseline (allowed: {baseline.get('tolerance_pts', 0.5)})."
              " Add tests for the new/changed code, or — if the drop is a"
              " deliberate trade — update the baseline in the same PR with"
              " tools/coverage_ratchet.py --update and justify it in review.")
        return 1
    if measured > baseline["percent_covered"] + baseline.get("tolerance_pts", 0.5):
        print("coverage beats the baseline — ratchet it up:"
              f" python tools/coverage_ratchet.py {args.report} --update")
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
