#!/usr/bin/env python3
"""Benchmark regression gate: diff bench JSON artifacts against a baseline.

Usage (CI's bench-smoke job runs exactly this after the benchmarks)::

    python tools/bench_compare.py \
        bench-artifacts/fig6_highfps.json \
        bench-artifacts/BENCH_refpassing.json

The committed baseline lives in ``tools/bench_baseline.json``. It maps each
artifact's basename to the dotted metric paths worth guarding, with a
``direction`` per metric: ``lower`` metrics (latencies, bytes) fail when the
measured value rises more than ``tolerance_pct`` (default 10%) above the
baseline; ``higher`` metrics (improvement ratios) fail when it falls more
than the tolerance below. Improvements beyond the tolerance print a ratchet
hint; run with ``--update`` to rewrite the baseline (then commit the diff —
moving the bar is a reviewed change, like a golden).

Baseline numbers are recorded in ``REPRO_BENCH_FAST=1`` mode (the CI
operating point); an artifact whose ``fast_mode`` flag disagrees with the
baseline's is skipped with a warning, because full-window numbers are not
comparable to smoke-window ones.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

BASELINE_PATH = Path(__file__).parent / "bench_baseline.json"
DEFAULT_TOLERANCE_PCT = 10.0


def dig(doc: Any, path: str) -> Any:
    """Resolve a dotted path (``arms.on.stage_means_ms.total_duration``)."""
    node = doc
    for part in path.split("."):
        if isinstance(node, list):
            node = node[int(part)]
        else:
            node = node[part]
    return node


def load_json(path: Path) -> Any:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        sys.exit(f"bench artifact {path} not found — run the benchmarks"
                 " first (REPRO_*_OUT env vars choose where they land)")
    except json.JSONDecodeError as exc:
        sys.exit(f"malformed bench artifact {path}: {exc}")


def compare_artifact(name: str, doc: Any, guards: dict[str, Any],
                     tolerance_pct: float) -> tuple[list[str], list[str],
                                                    dict[str, float]]:
    """Returns (failures, ratchet hints, measured values) for one artifact."""
    failures: list[str] = []
    hints: list[str] = []
    measured: dict[str, float] = {}
    for path, guard in guards.items():
        try:
            value = float(dig(doc, path))
        except (KeyError, IndexError, TypeError, ValueError):
            failures.append(f"{name}:{path}: metric missing from artifact")
            continue
        measured[path] = value
        base = float(guard["value"])
        direction = guard.get("direction", "lower")
        tol = base * tolerance_pct / 100.0
        if direction == "lower":
            regressed, improved = value > base + tol, value < base - tol
            verdict = f"rose {value - base:+.3f} over"
        else:
            regressed, improved = value < base - tol, value > base + tol
            verdict = f"fell {value - base:+.3f} under"
        status = "FAIL" if regressed else "ok"
        print(f"  [{status}] {path}: measured {value:.3f},"
              f" baseline {base:.3f} ({direction} is better)")
        if regressed:
            failures.append(
                f"{name}:{path}: {verdict} the baseline {base:.3f}"
                f" (tolerance {tolerance_pct:.0f}%)")
        elif improved:
            hints.append(f"{name}:{path}: {value:.3f} beats {base:.3f}")
    return failures, hints, measured


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifacts", nargs="+", type=Path,
                        help="bench JSON artifacts (matched to the baseline"
                             " by basename)")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument("--tolerance", type=float, default=None,
                        help="override the baseline's tolerance_pct")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline's values to the measured"
                             " ones")
    args = parser.parse_args(argv)

    baseline = load_json(args.baseline)
    tolerance = (args.tolerance if args.tolerance is not None
                 else baseline.get("tolerance_pct", DEFAULT_TOLERANCE_PCT))

    failures: list[str] = []
    hints: list[str] = []
    for path in args.artifacts:
        name = path.name
        guards = baseline.get("artifacts", {}).get(name)
        if guards is None:
            print(f"{name}: no baseline entry — skipped")
            continue
        doc = load_json(path)
        doc_fast = doc.get("fast_mode")
        base_fast = baseline.get("fast_mode")
        if (doc_fast is not None and base_fast is not None
                and doc_fast != base_fast):
            print(f"{name}: fast_mode={doc_fast} but the baseline holds"
                  f" fast_mode={base_fast} numbers — skipped (windows are"
                  " not comparable)")
            continue
        print(f"{name} vs baseline (tolerance {tolerance:.0f}%):")
        fail, hint, measured = compare_artifact(name, doc, guards, tolerance)
        failures.extend(fail)
        hints.extend(hint)
        if args.update:
            for metric, value in measured.items():
                guards[metric]["value"] = round(value, 3)

    if args.update:
        args.baseline.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"baseline updated — commit {args.baseline}")
        return 0
    for hint in hints:
        print(f"improvement beyond tolerance — consider ratcheting: {hint}")
    if failures:
        print("FAIL: benchmark regression(s) vs the committed baseline:")
        for failure in failures:
            print(f"  - {failure}")
        print("Fix the regression, or — if the slowdown is a deliberate"
              " trade — update the baseline in the same PR with"
              " tools/bench_compare.py --update and justify it in review.")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
